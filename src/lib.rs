//! Umbrella crate for the `dresar` workspace.
//!
//! This crate exists so that the repository root can host runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`) that exercise
//! the public APIs of every member crate together. It re-exports the member
//! crates under short names for convenience.

pub use dresar;
pub use dresar_cache as cache;
pub use dresar_directory as directory;
pub use dresar_engine as engine;
pub use dresar_faults as faults;
pub use dresar_interconnect as interconnect;
pub use dresar_protocol as protocol;
pub use dresar_server as server;
pub use dresar_stats as stats;
pub use dresar_trace_sim as trace_sim;
pub use dresar_types as types;
pub use dresar_workloads as workloads;
