//! Compare the two FFT formulations on the full machine: the per-stage
//! global-exchange Stockham FFT vs the transpose-based six-step FFT
//! (SPLASH-2's communication structure). Both compute the same transform;
//! their ownership-reuse distances — and hence how much a switch
//! directory can capture — differ.
//!
//! Run with: `cargo run --release --example fft_variants`

use dresar::system::{RunOptions, System};
use dresar_types::config::SystemConfig;
use dresar_workloads::scientific;

fn main() {
    let n = 4096;
    for (name, w) in [
        ("stockham (per-stage exchange)", scientific::fft(16, n)),
        ("six-step (transpose-based)", scientific::fft_six_step(16, n)),
    ] {
        println!("\n== {name}: {} refs over {n} points ==", w.total_refs());
        for (label, cfg) in
            [("base", SystemConfig::paper_base()), ("sd-1K", SystemConfig::paper_table2())]
        {
            let r = System::new(cfg, &w).run(RunOptions::default());
            println!(
                "  [{label}] misses={} dirty={:.1}% switch-served={} avg-lat={:.1} exec={}",
                r.reads.total(),
                100.0 * r.dirty_read_fraction(),
                r.reads.ctoc_switch,
                r.avg_read_latency(),
                r.cycles
            );
        }
    }
    println!(
        "\nThe six-step variant concentrates communication in three transposes\n\
         with row-FFT phases in between; at sizes where a matrix rewrite\n\
         separates producer and consumer, its ownership hints age out of small\n\
         switch directories — the size-sensitivity the paper observed for FFT."
    );
}
