//! Serving quickstart: boot an in-process `dresar-serve` instance, run a
//! spec cold, run it again warm (cache hit, byte-identical), run it from
//! four concurrent clients (coalesced into zero new executions once
//! cached — so this uses a fresh spec to show coalescing), and read the
//! serving metrics back.
//!
//! Run with: `cargo run --release --example serve_quickstart`

use dresar_server::client::{http_request, post_run};
use dresar_server::serve::{Server, ServerConfig};
use dresar_types::JsonValue;

fn main() {
    let server =
        Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    println!("dresar-serve listening on {addr}");

    // Cold run: executes on the engine pool.
    let spec = r#"{"workload":"FFT","scale":"tiny","nodes":16,"sd_entries":1024,"seed":7}"#;
    let cold = post_run(&addr, spec).expect("cold request");
    let digest = JsonValue::parse(&cold.body)
        .ok()
        .and_then(|d| d.get("digest").and_then(JsonValue::as_str).map(String::from))
        .unwrap_or_default();
    println!("cold run: HTTP {} ({} bytes, digest {digest})", cold.status, cold.body.len());

    // Warm run: served from the content-addressed cache, byte-identical.
    let warm = post_run(&addr, spec).expect("warm request");
    println!("warm run: HTTP {} (byte-identical to cold: {})", warm.status, warm.body == cold.body);

    // Concurrent identical requests for a spec nobody has run yet: they
    // coalesce onto one engine execution.
    let fresh = r#"{"workload":"TC","scale":"tiny","nodes":16,"sd_entries":1024,"seed":7}"#;
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || post_run(&addr, fresh).expect("concurrent request"))
        })
        .collect();
    for (i, c) in clients.into_iter().enumerate() {
        let resp = c.join().expect("client thread");
        println!("concurrent client {i}: HTTP {}", resp.status);
    }

    // A malformed request costs a structured error, never a queue slot.
    let bad = post_run(&addr, r#"{"workload":"FFT","sd_entries":100}"#).expect("bad request");
    println!("invalid sd size: HTTP {} -> {}", bad.status, bad.body.trim_end());

    let metrics = http_request(&addr, "GET", "/metrics", "").expect("metrics");
    let doc = JsonValue::parse(&metrics.body).expect("metrics JSON");
    let m = doc.get("metrics").expect("metrics section");
    for name in ["serve.run_requests", "serve.executions", "serve.cache_hits", "serve.coalesced"] {
        let v = m.get(name).and_then(JsonValue::as_u64).unwrap_or(0);
        println!("{name} = {v}");
    }

    server.shutdown();
    println!("server drained cleanly");
}
