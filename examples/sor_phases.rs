//! Domain scenario: run the red-black SOR kernel on the full execution-
//! driven machine and watch where its misses go — the halo-exchange
//! pattern that makes SOR one of the paper's best switch-directory cases.
//!
//! Run with: `cargo run --release --example sor_phases`

use dresar::system::{RunOptions, System};
use dresar_types::config::SystemConfig;
use dresar_workloads::scientific;

fn main() {
    let grid = 64;
    let iters = 3;
    let workload = scientific::sor(16, grid, iters);
    println!(
        "SOR {grid}x{grid}, {iters} iterations, 16 processors: {} references",
        workload.total_refs()
    );

    for (label, cfg) in
        [("base", SystemConfig::paper_base()), ("switch-dir", SystemConfig::paper_table2())]
    {
        let r = System::new(cfg, &workload).run(RunOptions::default());
        println!(
            "\n[{label}] exec = {} cycles, read misses = {} (clean {}, home-CtoC {}, switch-CtoC {})",
            r.cycles,
            r.reads.total(),
            r.reads.clean,
            r.reads.ctoc_home,
            r.reads.ctoc_switch
        );
        println!(
            "         avg read latency = {:.1} cycles, read stall = {} cycles, writebacks = {}",
            r.avg_read_latency(),
            r.reads.stall_cycles,
            r.writebacks
        );
        if r.sd.snoops > 0 {
            println!(
                "         switch dirs: {} snoops, {} inserts, {} read hits, {} copybacks marked",
                r.sd.snoops, r.sd.inserts, r.sd.read_hits, r.sd.copybacks_marked
            );
        }
    }
}
