//! A tour of the BMIN topology (the paper's Figure 3): switch identities,
//! routes, turnaround behaviour, and a demonstration of the switch-
//! directory placement invariant that makes the protocol correct.
//!
//! Run with: `cargo run --release --example topology_tour`

use dresar_interconnect::routes;
use dresar_interconnect::Bmin;

fn main() {
    // 16 nodes with radix-4 ("8x8") switches: 2 stages of 4 switches,
    // exactly the paper's evaluation network.
    let bmin = Bmin::new(16, 4);
    println!(
        "BMIN: {} nodes, radix {}, {} stages x {} switches",
        bmin.nodes(),
        bmin.radix(),
        bmin.stages(),
        bmin.switches_per_stage()
    );

    // A request from processor 6 to the memory of node 9.
    let fwd = routes::forward(&bmin, 6, 9);
    println!("\nforward route P6 -> M9:");
    for hop in fwd.hops() {
        match hop.switch {
            Some(sw) => {
                println!("  {:?} -> switch(stage {}, index {})", hop.link, sw.stage, sw.index)
            }
            None => println!("  {:?} -> memory 9", hop.link),
        }
    }

    // Cache-to-cache data from processor 6 to processor 13 turns around.
    let p2p = routes::proc_to_proc(&bmin, 6, 13, 0).expect("fixed demonstration route");
    println!("\nprocessor-to-processor route P6 -> P13 (turnaround):");
    for hop in p2p.hops() {
        match hop.switch {
            Some(sw) => {
                println!("  {:?} -> switch(stage {}, index {})", hop.link, sw.stage, sw.index)
            }
            None => println!("  {:?} -> processor 13", hop.link),
        }
    }

    // The placement invariant: every switch on the owner->home path can
    // route a switch-generated CtoC request down to the owner, and the
    // owner's copyback re-traverses exactly those switches.
    println!("\nplacement invariant check over all (owner, home) pairs:");
    let mut checked = 0;
    for owner in 0..16u8 {
        for home in 0..16u8 {
            for sw in bmin.path_switches(owner, home) {
                assert!(
                    routes::from_switch_to_proc(&bmin, sw, owner).is_some(),
                    "switch {sw:?} cannot reach owner {owner}"
                );
                checked += 1;
            }
        }
    }
    println!("  {checked} (switch, owner) pairs verified: every entry can re-route to its owner");

    // Same machine with "4x4" (radix-2) switches: 4 stages.
    let deep = Bmin::new(16, 2);
    println!(
        "\nwith 4x4 switches: {} stages x {} switches ({} total switch directories)",
        deep.stages(),
        deep.switches_per_stage(),
        deep.total_switches()
    );
}
