//! Quickstart: build a 16-node CC-NUMA machine, run a tiny producer-
//! consumer workload twice — once on the base machine and once with DRESAR
//! switch directories — and compare how the dirty reads were serviced.
//!
//! Run with: `cargo run --release --example quickstart`

use dresar::system::{RunOptions, System};
use dresar_types::config::SystemConfig;
use dresar_types::{StreamItem, Workload};

fn main() {
    // Processor 0 produces 64 blocks; processors 1..16 each consume a
    // quarter of them after a barrier. Consumers' reads are dirty: the
    // data still lives in processor 0's cache.
    let blocks: Vec<u64> = (0..64).map(|i| i * 32).collect();
    let mut streams = vec![blocks
        .iter()
        .map(|&b| StreamItem::write(b, 4))
        .chain([StreamItem::Barrier(0)])
        .collect::<Vec<_>>()];
    for c in 1..16usize {
        let mine: Vec<StreamItem> = [StreamItem::Barrier(0)]
            .into_iter()
            .chain(blocks.iter().skip(c % 4).step_by(4).map(|&b| StreamItem::read(b, 4)))
            .collect();
        streams.push(mine);
    }
    let workload = Workload { name: "quickstart".into(), streams };

    // The paper's Table 2 machine, with and without switch directories.
    let with_sd = SystemConfig::paper_table2();
    let base = SystemConfig::paper_base();

    let r_base = System::new(base, &workload).run(RunOptions::default());
    let r_sd = System::new(with_sd, &workload).run(RunOptions::default());

    println!("producer-consumer over 64 blocks, 16 processors\n");
    println!("                          base     with switch dirs");
    println!(
        "dirty reads (CtoC)     {:>7}              {:>7}",
        r_base.reads.dirty(),
        r_sd.reads.dirty()
    );
    println!(
        "  served by home       {:>7}              {:>7}",
        r_base.reads.ctoc_home, r_sd.reads.ctoc_home
    );
    println!(
        "  served by switches   {:>7}              {:>7}",
        r_base.reads.ctoc_switch, r_sd.reads.ctoc_switch
    );
    println!(
        "avg read latency       {:>7.1}              {:>7.1}   cycles",
        r_base.avg_read_latency(),
        r_sd.avg_read_latency()
    );
    println!(
        "execution time         {:>7}              {:>7}   cycles",
        r_base.cycles, r_sd.cycles
    );
    let gain = 100.0 * (1.0 - r_sd.avg_read_latency() / r_base.avg_read_latency());
    println!("\nswitch directories cut average read latency by {gain:.1}%");
}
