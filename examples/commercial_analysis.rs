//! Domain scenario: drive the Table 3 trace simulator with the synthetic
//! TPC-C workload, reproduce the block-skew analysis of the paper's
//! Figure 2, and sweep switch-directory sizes.
//!
//! Run with: `cargo run --release --example commercial_analysis`

use dresar_trace_sim::TraceSimulator;
use dresar_types::config::{SwitchDirConfig, TraceSimConfig};
use dresar_workloads::commercial;

fn main() {
    let refs = 400_000;
    let workload = commercial::tpcc(16, refs, 42);
    println!("synthetic TPC-C: {} references over 16 processors", workload.total_refs());

    // Base run with histogram: the Figure 2 skew.
    let mut sim = TraceSimulator::new(TraceSimConfig::paper_base());
    sim.collect_histogram();
    let base = sim.run(&workload);
    let h = base.histogram.as_ref().unwrap();
    println!(
        "\nbase machine: {} read misses over {} blocks, {:.1}% dirty",
        base.reads.total(),
        h.blocks_touched(),
        100.0 * base.reads.dirty_fraction()
    );
    println!(
        "hot-set skew: top 10% of blocks account for {:.1}% of CtoC transfers",
        100.0 * h.ctoc_coverage_of_top(0.10)
    );

    println!("\nswitch-directory sweep:");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "entries", "home CtoC", "switch CtoC", "avg lat (cyc)", "exec (Mcyc)"
    );
    println!(
        "{:>8} {:>12} {:>12} {:>14.1} {:>12.2}",
        "none",
        base.reads.ctoc_home,
        base.reads.ctoc_switch,
        base.avg_read_latency(),
        base.exec_cycles as f64 / 1e6
    );
    for entries in [256u32, 512, 1024, 2048] {
        let mut cfg = TraceSimConfig::paper_table3();
        cfg.switch_dir = Some(SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() });
        let r = TraceSimulator::new(cfg).run(&workload);
        println!(
            "{:>8} {:>12} {:>12} {:>14.1} {:>12.2}",
            entries,
            r.reads.ctoc_home,
            r.reads.ctoc_switch,
            r.avg_read_latency(),
            r.exec_cycles as f64 / 1e6
        );
    }
}
