//! Fidelity cross-check: push the same message batch through the cycle-
//! accurate flit-level network and the fast hop-level model, and compare
//! delivered latencies.
//!
//! Run with: `cargo run --release --example flit_vs_hop`

use dresar_interconnect::{routes, Bmin, FlitNetwork, HopNetwork};
use dresar_types::config::SystemConfig;

fn main() {
    let bmin = Bmin::new(16, 4);
    let cfg = SystemConfig::paper_table2().switch;

    // A batch of requests: every processor sends a 1-flit read request to
    // a rotating memory, plus a 5-flit reply coming back.
    let mut flit = FlitNetwork::new(bmin, cfg);
    let mut hop = HopNetwork::new(cfg, 16);

    let mut hop_latencies = Vec::new();
    for (id, p) in (0..16u8).enumerate() {
        let id = id as u64;
        let m = (p + 5) % 16;
        let req = routes::forward(&bmin, p, m);
        let rep = routes::backward(&bmin, m, p);

        flit.inject(id, &req, 1).expect("route fits the network");
        flit.inject(id + 100, &rep, 5).expect("route fits the network");

        // Hop model: walk the same routes.
        for (route, flits) in [(&req, 1u32), (&rep, 5u32)] {
            let mut t = 0;
            for (i, &link) in route.links.iter().enumerate() {
                if i > 0 {
                    t += hop.core_delay();
                }
                t = hop.traverse_link(link, t, flits);
            }
            hop_latencies.push(t + hop.tail_lag(flits));
        }
    }

    let deliveries = flit.run_until_drained(1_000_000);
    assert_eq!(deliveries.len(), 32, "all messages must deliver");
    let flit_avg: f64 =
        deliveries.iter().map(|d| d.at as f64).sum::<f64>() / deliveries.len() as f64;
    let hop_avg: f64 =
        hop_latencies.iter().map(|&t| t as f64).sum::<f64>() / hop_latencies.len() as f64;

    println!("flit-level average delivery time : {flit_avg:.1} cycles");
    println!("hop-level  average delivery time : {hop_avg:.1} cycles");
    println!("ratio                            : {:.2}x", flit_avg / hop_avg);
    println!(
        "\nThe hop model tracks the cycle-accurate network within a small factor\n\
         under light load; the full-system sweeps use it for speed while the\n\
         flit model backs the switch microbenchmarks."
    );
}
