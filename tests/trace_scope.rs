//! Tier-1 guarantees for causal transaction tracing (`dresar-scope`):
//!
//! 1. **Parallel-sweep trace determinism.** A traced run produces a
//!    byte-identical Chrome-trace document whether its job executes on the
//!    serial sweep path or sharded across a multi-threaded
//!    [`SweepRunner`] (`DRESAR_SWEEP_THREADS>1`). Each job constructs its
//!    simulator inside the worker, so this is structural — the test pins
//!    it against regressions that would share tracer state across jobs.
//! 2. **Causal-tree completeness.** Every traced read miss reconstructs
//!    as one complete tree keyed by its transaction id: an async span
//!    (`ph:"b"`/`"e"`) on the issuing processor, a flow arrow
//!    (`ph:"s"`/`"t"`/`"f"`) stepping through the service point, and the
//!    protocol messages sent on the miss's behalf stamped with the same
//!    nonzero txn id.

use dresar::system::{RunOptions, System};
use dresar_bench::sweep::{Job, SweepRunner};
use dresar_obs::ObserverConfig;
use dresar_types::config::{SwitchDirConfig, SystemConfig};
use dresar_types::{JsonValue, Workload};
use dresar_workloads::scientific;
use std::collections::{BTreeMap, BTreeSet};

fn cfg(sd_entries: Option<u32>) -> SystemConfig {
    let mut cfg = SystemConfig::paper_table2();
    cfg.switch_dir =
        sd_entries.map(|entries| SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() });
    cfg
}

fn traced_run(workload: &Workload, sd_entries: Option<u32>) -> String {
    let observers = ObserverConfig { trace: true, ..ObserverConfig::default() };
    let report = System::new(cfg(sd_entries), workload)
        .run(RunOptions { observers, ..RunOptions::default() });
    report.obs.and_then(|o| o.trace).expect("traced run yields a trace document")
}

#[test]
fn traced_runs_through_the_parallel_sweep_are_byte_identical_to_serial() {
    // Distinct workloads and SD configs, so jobs finish out of order on
    // the parallel runner whenever interleaving could matter.
    let mix: Vec<(Workload, Option<u32>)> = vec![
        (scientific::fft(16, 256), Some(1024)),
        (scientific::tc(16, 12), Some(256)),
        (scientific::sor(16, 12, 2), None),
        (scientific::fft(16, 128), Some(1024)),
    ];
    let docs = |runner: SweepRunner| -> Vec<String> {
        let jobs: Vec<Job<'_, String>> = mix
            .iter()
            .map(|(w, sd)| {
                let b: Job<'_, String> = Box::new(move || traced_run(w, *sd));
                b
            })
            .collect();
        runner.run_jobs(jobs)
    };
    let serial = docs(SweepRunner::serial());
    let parallel = docs(SweepRunner::with_threads(4));
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "trace {i} diverged between serial and parallel sweep");
    }
    // And the documents are real traces, not empty shells.
    for doc in &serial {
        assert!(doc.contains("read_miss"), "trace has no read spans: {doc:.>120}");
    }
}

#[test]
fn every_traced_read_miss_reconstructs_as_a_complete_causal_tree() {
    let doc = traced_run(&scientific::fft(16, 256), Some(1024));
    let parsed = JsonValue::parse(&doc).expect("trace parses as JSON");
    let events = parsed.as_arr().expect("array form");

    let ph = |e: &JsonValue| e.get("ph").and_then(JsonValue::as_str).unwrap_or("").to_string();
    let id_of = |e: &JsonValue| e.get("id").and_then(JsonValue::as_u64);
    let txn_of =
        |e: &JsonValue| e.get("args").and_then(|a| a.get("txn")).and_then(JsonValue::as_u64);

    // Collect spans: per id, count of begins and ends.
    let mut begins: BTreeMap<u64, u64> = BTreeMap::new();
    let mut ends: BTreeMap<u64, u64> = BTreeMap::new();
    let mut flows: BTreeMap<u64, BTreeSet<String>> = BTreeMap::new();
    let mut msg_txns: BTreeSet<u64> = BTreeSet::new();
    for e in events {
        let name = e.get("name").and_then(JsonValue::as_str).unwrap_or("");
        match (name, ph(e).as_str()) {
            ("read_miss", "b") => {
                let id = id_of(e).expect("span has id");
                assert_eq!(txn_of(e), Some(id), "span id must be the simulator's txn id");
                assert_ne!(id, 0, "real misses carry nonzero txn ids");
                *begins.entry(id).or_insert(0) += 1;
            }
            ("read_miss", "e") => *ends.entry(id_of(e).expect("span has id")).or_insert(0) += 1,
            ("txn", p @ ("s" | "t" | "f")) => {
                flows.entry(id_of(e).expect("flow has id")).or_default().insert(p.to_string());
            }
            _ => {
                if name.starts_with("send:") || name.starts_with("deliver:") {
                    if let Some(t) = txn_of(e) {
                        msg_txns.insert(t);
                    }
                }
            }
        }
    }

    assert!(!begins.is_empty(), "workload produced no traced read misses");
    for (id, n) in &begins {
        assert_eq!(*n, 1, "txn {id}: duplicate span begin");
        assert_eq!(ends.get(id), Some(&1), "txn {id}: span begun but never completed");
        let f = flows.get(id).unwrap_or_else(|| panic!("txn {id}: no flow arrows"));
        assert!(
            f.contains("s") && f.contains("f"),
            "txn {id}: flow must start on the processor and finish there, got {f:?}"
        );
        assert!(msg_txns.contains(id), "txn {id}: no protocol message carries the transaction id");
    }
    // Every end pairs with a begin (no orphan completions).
    for id in ends.keys() {
        assert!(begins.contains_key(id), "txn {id}: completion without issue");
    }
}
