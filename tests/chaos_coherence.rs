//! Chaos suite: deterministic fault schedules against the full
//! execution-driven system, asserting the paper's central safety claim —
//! switch directories are hints, so corrupting, evicting or disabling them
//! must never corrupt coherence — plus run-to-run determinism of the fault
//! schedules themselves.
//!
//! Set `DRESAR_CHAOS_SEED=<n>` to fold one extra seed into the pinned
//! matrix (used by the CI chaos job to rotate coverage without losing
//! reproducibility).

use dresar_workspace::dresar::system::{RunOptions, System};
use dresar_workspace::faults::{FaultPlan, WatchdogConfig};
use dresar_workspace::types::config::{SwitchDirConfig, SystemConfig};
use dresar_workspace::types::rng::SmallRng;
use dresar_workspace::types::{Protocol, StreamItem, ToJson, Workload};

fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![1, 7, 42];
    if let Ok(s) = std::env::var("DRESAR_CHAOS_SEED") {
        if let Ok(n) = s.parse::<u64>() {
            seeds.push(n);
        }
    }
    seeds
}

/// Barrier-phased random workload: races are confined within phases, so
/// the quiesced coherence state is timing-independent.
fn random_workload(seed: u64, procs: usize, refs_per_proc: usize, blocks: u64) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let phases = 4;
    let per_phase = refs_per_proc / phases;
    let mut streams = vec![Vec::new(); procs];
    for phase in 0..phases as u32 {
        for s in streams.iter_mut() {
            for _ in 0..per_phase {
                let addr = rng.gen_range(0..blocks) * 32;
                let work = rng.gen_range(0..8);
                if rng.gen_bool(0.3) {
                    s.push(StreamItem::write(addr, work));
                } else {
                    s.push(StreamItem::read(addr, work));
                }
            }
            s.push(StreamItem::Barrier(phase));
        }
    }
    Workload { name: format!("chaos-{seed}"), streams }
}

/// Producer/consumer workload with a fully barrier-ordered final state:
/// every block's last writer is fixed, so the end-of-run coherence digest
/// must be identical across machines regardless of mid-run timing.
fn ordered_workload(blocks: u64) -> Workload {
    let producer: Vec<StreamItem> = (0..blocks)
        .map(|b| StreamItem::write(b * 32, 1))
        .chain([StreamItem::Barrier(0)])
        .chain((0..blocks).map(|b| StreamItem::read(b * 32, 1)))
        .chain([StreamItem::Barrier(1)])
        .collect();
    let consumer: Vec<StreamItem> = [StreamItem::Barrier(0)]
        .into_iter()
        .chain((0..blocks).map(|b| StreamItem::read(b * 32, 1)))
        .chain([StreamItem::Barrier(1)])
        .chain((0..blocks / 2).map(|b| StreamItem::write(b * 64, 1)))
        .collect();
    let mut streams = vec![producer, consumer];
    streams.extend((2..16).map(|_| vec![StreamItem::Barrier(0), StreamItem::Barrier(1)]));
    Workload { name: "chaos-ordered".into(), streams }
}

fn cfg(sd: Option<u32>) -> SystemConfig {
    cfg_proto(Protocol::Msi, sd)
}

fn cfg_proto(protocol: Protocol, sd: Option<u32>) -> SystemConfig {
    let mut cfg = SystemConfig::paper_table2();
    cfg.protocol = protocol;
    cfg.switch_dir =
        sd.map(|entries| SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() });
    cfg
}

fn opts(plan: FaultPlan) -> RunOptions {
    RunOptions {
        max_cycles: 500_000_000,
        faults: Some(plan),
        watchdog: Some(WatchdogConfig::default()),
        verify_coherence: true,
        ..Default::default()
    }
}

/// Fault schedules that only destroy hints (no message loss): every run
/// must reach clean quiescence with all invariants intact.
fn hint_only_schedules(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("scrub", FaultPlan { seed, scrub_period: 2_000, ..FaultPlan::default() }),
        ("storm", FaultPlan { seed, storm_at: 5_000, storm_evictions: 64, ..FaultPlan::default() }),
        ("disable", FaultPlan { seed, disable_at: 5_000, ..FaultPlan::default() }),
        (
            "disable-enable",
            FaultPlan { seed, disable_at: 4_000, enable_at: 12_000, ..FaultPlan::default() },
        ),
        (
            "combined",
            FaultPlan {
                seed,
                scrub_period: 3_000,
                storm_at: 8_000,
                storm_evictions: 32,
                disable_at: 15_000,
                enable_at: 25_000,
                ..FaultPlan::default()
            },
        ),
    ]
}

#[test]
fn hint_destroying_faults_never_break_coherence() {
    for seed in chaos_seeds() {
        let w = random_workload(seed, 16, 120, 48);
        let total = w.total_refs() as u64;
        for (name, plan) in hint_only_schedules(seed) {
            let r = System::new(cfg(Some(1024)), &w).run(opts(plan));
            assert!(
                r.watchdog.is_none(),
                "seed {seed} schedule {name}: hint-only faults must not trip the watchdog: {:?}",
                r.watchdog
            );
            assert_eq!(r.refs_executed, total, "seed {seed} schedule {name}: lost references");
            let c = r.coherence.expect("verify_coherence was requested");
            assert!(c.quiesced, "seed {seed} schedule {name}: did not quiesce");
            assert!(
                c.ok(),
                "seed {seed} schedule {name}: coherence violations: {:?}",
                c.violations
            );
        }
    }
}

/// The hint-only safety argument is protocol-independent: the same pinned
/// seed matrix (including the CI-rotated `DRESAR_CHAOS_SEED`) must reach
/// clean quiescence under MESI, with the per-protocol coherence audit
/// accepting the Exclusive holders MESI's unshared read fills create.
#[test]
fn hint_destroying_faults_never_break_coherence_under_mesi() {
    for seed in chaos_seeds() {
        let w = random_workload(seed, 16, 120, 48);
        let total = w.total_refs() as u64;
        for (name, plan) in hint_only_schedules(seed) {
            let r = System::new(cfg_proto(Protocol::Mesi, Some(1024)), &w).run(opts(plan));
            assert!(
                r.watchdog.is_none(),
                "mesi seed {seed} schedule {name}: hint-only faults must not trip the \
                 watchdog: {:?}",
                r.watchdog
            );
            assert!(
                r.sim_errors.is_empty(),
                "mesi seed {seed} schedule {name}: sim errors {:?}",
                r.sim_errors
            );
            assert_eq!(r.refs_executed, total, "mesi seed {seed} schedule {name}: lost refs");
            let c = r.coherence.expect("verify_coherence was requested");
            assert!(c.quiesced, "mesi seed {seed} schedule {name}: did not quiesce");
            assert!(
                c.ok(),
                "mesi seed {seed} schedule {name}: coherence violations: {:?}",
                c.violations
            );
        }
    }
}

#[test]
fn message_drops_recover_or_report_but_never_hang() {
    for seed in chaos_seeds() {
        let w = random_workload(seed, 16, 100, 32);
        let total = w.total_refs() as u64;
        let plan = FaultPlan { seed, drop_ppm: 20_000, ..FaultPlan::default() };
        let r = System::new(cfg(Some(1024)), &w).run(opts(plan));
        let faults = r.faults.expect("fault plan was active");
        match &r.watchdog {
            None => {
                // Every drop recovered through retransmission.
                assert_eq!(r.refs_executed, total, "seed {seed}: clean run lost references");
                let c = r.coherence.expect("verify_coherence was requested");
                assert!(c.ok(), "seed {seed}: coherence violations: {:?}", c.violations);
                if faults.dropped > 0 {
                    assert!(faults.retransmissions > 0, "seed {seed}: drops but no retries");
                }
            }
            Some(report) => {
                // A message ran out its retry budget: the watchdog must
                // name the stuck transactions instead of hanging.
                assert!(faults.lost > 0, "seed {seed}: watchdog tripped without losses");
                assert!(
                    !report.lineage.is_empty() || !report.detail.is_empty(),
                    "seed {seed}: empty watchdog report"
                );
            }
        }
    }
}

#[test]
fn same_fault_seed_is_byte_identical() {
    for seed in chaos_seeds() {
        let w = random_workload(seed, 16, 100, 32);
        let plan = FaultPlan {
            seed,
            drop_ppm: 5_000,
            scrub_period: 4_000,
            storm_at: 10_000,
            disable_at: 20_000,
            enable_at: 30_000,
            ..FaultPlan::default()
        };
        let a = System::new(cfg(Some(1024)), &w).run(opts(plan));
        let b = System::new(cfg(Some(1024)), &w).run(opts(plan));
        assert_eq!(a.cycles, b.cycles, "seed {seed}");
        assert_eq!(a.faults, b.faults, "seed {seed}: fault schedules diverged");
        assert_eq!(
            a.metrics.to_json().dump(),
            b.metrics.to_json().dump(),
            "seed {seed}: metrics must be byte-identical"
        );
        assert_eq!(
            a.to_json().dump(),
            b.to_json().dump(),
            "seed {seed}: full reports must be byte-identical"
        );
    }
}

/// Scaled machines past the old 64-node `SharerSet` ceiling: 3- and
/// 4-stage butterflies must reach clean quiescence with zero sim errors
/// (no silent sharer-id wrap anywhere) and a clean coherence audit.
#[test]
fn scaled_machines_quiesce_coherently() {
    for (nodes, radix) in [(64usize, 4u32), (128, 2), (256, 4)] {
        let mut cfg = SystemConfig::scaled(nodes, radix);
        cfg.switch_dir =
            Some(SwitchDirConfig { entries: 1024, ..SwitchDirConfig::paper_default() });
        let w = random_workload(9, nodes, 24, 96);
        let total = w.total_refs() as u64;
        let r = System::new(cfg, &w).run(opts(FaultPlan::default()));
        assert!(r.watchdog.is_none(), "{nodes}x{radix}: {:?}", r.watchdog);
        assert!(r.sim_errors.is_empty(), "{nodes}x{radix}: sim errors {:?}", r.sim_errors);
        assert_eq!(r.refs_executed, total, "{nodes}x{radix}: lost references");
        let c = r.coherence.expect("verify_coherence was requested");
        assert!(c.quiesced, "{nodes}x{radix}: did not quiesce");
        assert!(c.ok(), "{nodes}x{radix}: coherence violations: {:?}", c.violations);
    }
}

/// Hint-destroying chaos on the deepest machine: a 256-node, 4-stage BMIN
/// under scrub + eviction-storm faults must stay coherent — the hint-only
/// safety argument is size-independent.
#[test]
fn deep_machine_hint_faults_stay_coherent() {
    let mut cfg = SystemConfig::scaled(256, 4);
    cfg.switch_dir = Some(SwitchDirConfig { entries: 1024, ..SwitchDirConfig::paper_default() });
    let w = random_workload(11, 256, 16, 64);
    let total = w.total_refs() as u64;
    let plan = FaultPlan {
        seed: 11,
        scrub_period: 2_000,
        storm_at: 5_000,
        storm_evictions: 64,
        ..FaultPlan::default()
    };
    let r = System::new(cfg, &w).run(opts(plan));
    assert!(r.watchdog.is_none(), "{:?}", r.watchdog);
    assert!(r.sim_errors.is_empty(), "sim errors: {:?}", r.sim_errors);
    assert_eq!(r.refs_executed, total);
    let c = r.coherence.expect("verify_coherence was requested");
    assert!(c.ok(), "coherence violations: {:?}", c.violations);
}

#[test]
fn sd_disabled_mid_run_matches_base_machine_state() {
    let w = ordered_workload(64);
    let base_opts = RunOptions {
        max_cycles: 500_000_000,
        verify_coherence: true,
        watchdog: Some(WatchdogConfig::default()),
        ..Default::default()
    };
    let base = System::new(cfg(None), &w).run(base_opts);
    let base_c = base.coherence.clone().expect("verify_coherence was requested");
    assert!(base_c.ok(), "base machine violations: {:?}", base_c.violations);

    // Probe the SD run's length, then disable the switch directories
    // mid-flight (half-way) and again very early.
    let probe = System::new(cfg(Some(1024)), &w).run(base_opts);
    for disable_at in [probe.cycles / 2, probe.cycles / 8] {
        let plan = FaultPlan { disable_at: disable_at.max(1), ..FaultPlan::default() };
        let r = System::new(cfg(Some(1024)), &w).run(opts(plan));
        assert!(r.watchdog.is_none(), "disable@{disable_at}: {:?}", r.watchdog);
        assert_eq!(r.refs_executed, base.refs_executed, "disable@{disable_at}");
        let c = r.coherence.expect("verify_coherence was requested");
        assert!(c.ok(), "disable@{disable_at}: violations: {:?}", c.violations);
        assert_eq!(
            c.digest, base_c.digest,
            "disable@{disable_at}: degraded run must quiesce in the same \
             per-block coherence state as the base machine"
        );
    }
}

/// The SD-disable digest argument also holds under MESI: hints only decide
/// who serves a dirty read, never the quiesced state, so a MESI machine
/// whose switch directories die mid-run must end in exactly the per-block
/// coherence state of the MESI base machine (Exclusive holders included —
/// the digest tags them distinctly from Shared and Modified).
#[test]
fn mesi_sd_disabled_mid_run_matches_base_machine_state() {
    let w = ordered_workload(64);
    let base_opts = RunOptions {
        max_cycles: 500_000_000,
        verify_coherence: true,
        watchdog: Some(WatchdogConfig::default()),
        ..Default::default()
    };
    let base = System::new(cfg_proto(Protocol::Mesi, None), &w).run(base_opts);
    let base_c = base.coherence.clone().expect("verify_coherence was requested");
    assert!(base_c.ok(), "mesi base machine violations: {:?}", base_c.violations);

    let probe = System::new(cfg_proto(Protocol::Mesi, Some(1024)), &w).run(base_opts);
    let plan = FaultPlan { disable_at: (probe.cycles / 2).max(1), ..FaultPlan::default() };
    let r = System::new(cfg_proto(Protocol::Mesi, Some(1024)), &w).run(opts(plan));
    assert!(r.watchdog.is_none(), "{:?}", r.watchdog);
    assert!(r.sim_errors.is_empty(), "sim errors: {:?}", r.sim_errors);
    assert_eq!(r.refs_executed, base.refs_executed);
    let c = r.coherence.expect("verify_coherence was requested");
    assert!(c.ok(), "violations: {:?}", c.violations);
    assert_eq!(
        c.digest, base_c.digest,
        "degraded MESI run must quiesce in the same per-block coherence state as \
         the MESI base machine"
    );
}

#[test]
fn degraded_mode_stops_switch_service() {
    // Disabling from cycle 1 means the switch directories never install a
    // hint: the machine must behave like the base machine for reads.
    let w = ordered_workload(32);
    let plan = FaultPlan { disable_at: 1, ..FaultPlan::default() };
    let r = System::new(cfg(Some(1024)), &w).run(opts(plan));
    assert_eq!(r.reads.ctoc_switch, 0, "disabled switch directories served a read");
    assert!(r.coherence.expect("requested").ok());
    let base = System::new(cfg(None), &w)
        .run(RunOptions { max_cycles: 500_000_000, ..Default::default() });
    assert_eq!(r.reads.ctoc_home, base.reads.ctoc_home);
}
