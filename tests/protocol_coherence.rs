//! Cross-crate protocol stress tests: random workloads through the full
//! execution-driven system, with and without switch directories, checking
//! end-to-end coherence properties that no single crate can check alone.

use dresar_workspace::dresar::system::{RunOptions, System};
use dresar_workspace::dresar::TransientReadPolicy;
use dresar_workspace::types::config::{SwitchDirConfig, SystemConfig};
use dresar_workspace::types::rng::SmallRng;
use dresar_workspace::types::{StreamItem, Workload};

fn random_workload(seed: u64, procs: usize, refs_per_proc: usize, blocks: u64) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let phases = 4;
    let per_phase = refs_per_proc / phases;
    let mut streams = vec![Vec::new(); procs];
    for phase in 0..phases as u32 {
        for s in streams.iter_mut() {
            for _ in 0..per_phase {
                let addr = rng.gen_range(0..blocks) * 32;
                let work = rng.gen_range(0..8);
                if rng.gen_bool(0.3) {
                    s.push(StreamItem::write(addr, work));
                } else {
                    s.push(StreamItem::read(addr, work));
                }
            }
            s.push(StreamItem::Barrier(phase));
        }
    }
    Workload { name: format!("random-{seed}"), streams }
}

fn cfg(sd: Option<u32>) -> SystemConfig {
    let mut cfg = SystemConfig::paper_table2();
    cfg.switch_dir =
        sd.map(|entries| SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() });
    cfg
}

fn opts() -> RunOptions {
    RunOptions { max_cycles: 500_000_000, ..Default::default() }
}

#[test]
fn random_workloads_complete_on_base_and_switchdir_machines() {
    for seed in 0..6u64 {
        let w = random_workload(seed, 16, 120, 64);
        let total = w.total_refs() as u64;
        let base = System::new(cfg(None), &w).run(opts());
        assert_eq!(base.refs_executed, total, "base lost references (seed {seed})");
        for entries in [256u32, 1024] {
            let r = System::new(cfg(Some(entries)), &w).run(opts());
            assert_eq!(r.refs_executed, total, "sd-{entries} lost references (seed {seed})");
        }
    }
}

#[test]
fn switch_directory_conserves_read_service() {
    // Every dirty read is served exactly once — by home or by a switch —
    // and enabling switch directories must not change how many reads the
    // workload performs, only who serves them.
    for seed in 10..16u64 {
        let w = random_workload(seed, 16, 150, 32);
        let base = System::new(cfg(None), &w).run(opts());
        let with = System::new(cfg(Some(1024)), &w).run(opts());
        assert_eq!(base.reads.ctoc_switch, 0);
        assert!(with.reads.total() > 0);
        assert_eq!(
            base.refs_executed, with.refs_executed,
            "same workload must execute the same references (seed {seed})"
        );
        // The switch machine must actually divert some transfers on these
        // write-heavy random mixes.
        if base.reads.ctoc_home > 20 {
            assert!(
                with.reads.ctoc_switch > 0,
                "no switch service despite {} home CtoCs (seed {seed})",
                base.reads.ctoc_home
            );
        }
    }
}

#[test]
fn marked_completions_keep_home_directory_exact() {
    // Indirect exactness check: with switch directories, later writes must
    // invalidate every reader that was served by a switch. If the home
    // vector lost sharers, the total invalidations would drop below the
    // base machine's for the same workload.
    for seed in 20..24u64 {
        let w = random_workload(seed, 16, 150, 16); // hot: heavy sharing
        let base = System::new(cfg(None), &w).run(opts());
        let with = System::new(cfg(Some(2048)), &w).run(opts());
        if with.sd.read_hits > 10 {
            assert!(with.dir.marked_completions > 0, "seed {seed}: no marked completions");
            // Sharers gained via switches must still get invalidated:
            // allow slack for timing divergence but catch gross loss.
            assert!(
                with.dir.invals_sent * 2 >= base.dir.invals_sent,
                "seed {seed}: invalidations collapsed ({} vs {})",
                with.dir.invals_sent,
                base.dir.invals_sent
            );
        }
    }
}

#[test]
fn runs_are_reproducible() {
    let w = random_workload(99, 16, 200, 48);
    let a = System::new(cfg(Some(1024)), &w).run(opts());
    let b = System::new(cfg(Some(1024)), &w).run(opts());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.reads, b.reads);
    assert_eq!(a.network_hops, b.network_hops);
    assert_eq!(a.writebacks, b.writebacks);
}

#[test]
fn accumulate_policy_also_coherent() {
    for seed in 30..33u64 {
        let w = random_workload(seed, 16, 120, 24);
        let total = w.total_refs() as u64;
        let r = System::new(cfg(Some(1024)), &w).run(RunOptions {
            transient_policy: TransientReadPolicy::Accumulate,
            max_cycles: 500_000_000,
            ..Default::default()
        });
        assert_eq!(r.refs_executed, total, "accumulate policy lost refs (seed {seed})");
    }
}

#[test]
fn radix2_four_stage_machine_works() {
    let mut c = cfg(Some(512));
    c.switch.radix = 2; // 4x4 switches, 4 stages, 32 switch directories
    for seed in 40..43u64 {
        let w = random_workload(seed, 16, 100, 32);
        let r = System::new(c, &w).run(opts());
        assert_eq!(r.refs_executed, w.total_refs() as u64);
    }
}
