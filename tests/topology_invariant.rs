//! Exhaustive tests for the switch-directory placement invariant across
//! every supported topology (DESIGN.md §3).
//!
//! The protocol's correctness rests on two facts about the BMIN:
//! 1. every switch that can hold an entry for (block homed at h, owner o)
//!    lies on the unique o <-> h path, so it can route a CtoC request down
//!    to o, and
//! 2. the owner's cleanup traffic (copyback / writeback) to h re-traverses
//!    exactly those switches, so no entry survives its owner's loss of the
//!    block.
//!
//! Node loops iterate in `usize` and cast per-use: `0..bmin.nodes() as u8`
//! is silently empty at the 256-node boundary.

use dresar_workspace::interconnect::{routes, Bmin};
use dresar_workspace::types::NodeId;

fn topologies() -> Vec<Bmin> {
    vec![
        Bmin::new(16, 4), // the paper's 8x8 switches, 2 stages
        Bmin::new(16, 2), // the paper's 4x4 switches, 4 stages
        Bmin::new(64, 4),
        Bmin::new(8, 2),
        Bmin::new(64, 8),
        Bmin::new(128, 2), // 7-stage deep machine
        Bmin::new(256, 4), // the full NodeId range, 4 stages
    ]
}

fn node_ids(bmin: &Bmin) -> impl Iterator<Item = NodeId> {
    (0..bmin.nodes()).map(|p| p as NodeId)
}

/// Invariant 1: entries can always re-route to their owner. Exhaustive over
/// all (owner, home) pairs of every topology.
#[test]
fn entries_reach_owner() {
    for bmin in topologies() {
        for o in node_ids(&bmin) {
            for h in node_ids(&bmin) {
                for sw in bmin.path_switches(o, h) {
                    assert!(
                        routes::from_switch_to_proc(&bmin, sw, o).is_some(),
                        "{bmin:?}: switch {sw:?} on path({o},{h}) cannot reach owner"
                    );
                }
            }
        }
    }
}

/// Invariant 2: cleanup traffic re-traverses the entry-holding switches.
#[test]
fn cleanup_covers_entries() {
    for bmin in topologies() {
        for o in node_ids(&bmin) {
            for h in node_ids(&bmin) {
                // Entries are installed along the write-reply path (h -> o),
                // which in this topology uses the same switches as (o -> h).
                let install = bmin.path_switches(o, h);
                let cleanup: Vec<_> = routes::forward(&bmin, o, h).switches;
                assert_eq!(install, cleanup, "{bmin:?}: o={o} h={h}");
            }
        }
    }
}

/// Every endpoint pair is routable and the hop counts are minimal:
/// requests cross exactly `stages` switches; turnaround routes cross
/// `2 * (turnaround stage) + 1`.
#[test]
fn route_lengths_minimal() {
    for bmin in topologies() {
        for a in node_ids(&bmin) {
            for b in node_ids(&bmin) {
                assert_eq!(routes::forward(&bmin, a, b).switch_hops(), bmin.stages());
                assert_eq!(routes::backward(&bmin, b, a).switch_hops(), bmin.stages());
                let p2p = routes::proc_to_proc(&bmin, a, b, 0).expect("minimal-topology route");
                let t = bmin.turnaround_stage(a, b);
                assert_eq!(p2p.switch_hops(), 2 * t + 1, "{bmin:?}: a={a} b={b}");
            }
        }
    }
}

/// The generalized switch-origin route terminates at its target for
/// every (origin switch, target) combination, including foreign ones.
/// Exhaustive over endpoints up to 64 nodes; the O(n³) sweep is strided
/// above that (the stride is coprime-ish with the radix so samples cross
/// subtree boundaries), still covering every stage of the deep machines.
#[test]
fn via_routes_universal() {
    for bmin in topologies() {
        let n = bmin.nodes();
        let step = if n > 64 { n / 16 + 1 } else { 1 };
        for o in (0..n).step_by(step) {
            for h in (0..n).step_by(step) {
                let path = bmin.path_switches(o as NodeId, h as NodeId);
                for target in (0..n).step_by(step) {
                    for tb in [0u64, 3, 511] {
                        for &sw in &path {
                            let t = target as NodeId;
                            let r = routes::from_switch_to_proc_via(&bmin, sw, t, tb)
                                .unwrap_or_else(|e| {
                                    panic!("{bmin:?}: sw={sw:?} target={target} tb={tb}: {e}")
                                });
                            assert!(r.well_formed(), "{bmin:?}: sw={sw:?} target={target} tb={tb}");
                        }
                    }
                }
            }
        }
    }
}
