//! Property tests for the switch-directory placement invariant across
//! every supported topology (DESIGN.md §3).
//!
//! The protocol's correctness rests on two facts about the BMIN:
//! 1. every switch that can hold an entry for (block homed at h, owner o)
//!    lies on the unique o <-> h path, so it can route a CtoC request down
//!    to o, and
//! 2. the owner's cleanup traffic (copyback / writeback) to h re-traverses
//!    exactly those switches, so no entry survives its owner's loss of the
//!    block.

use dresar_workspace::interconnect::{routes, Bmin};
use proptest::prelude::*;

fn topologies() -> Vec<Bmin> {
    vec![
        Bmin::new(16, 4), // the paper's 8x8 switches, 2 stages
        Bmin::new(16, 2), // the paper's 4x4 switches, 4 stages
        Bmin::new(64, 4),
        Bmin::new(8, 2),
        Bmin::new(64, 8),
    ]
}

proptest! {
    /// Invariant 1: entries can always re-route to their owner.
    #[test]
    fn entries_reach_owner(o in 0usize..64, h in 0usize..64) {
        for bmin in topologies() {
            let (o, h) = ((o % bmin.nodes()) as u8, (h % bmin.nodes()) as u8);
            for sw in bmin.path_switches(o, h) {
                prop_assert!(
                    routes::from_switch_to_proc(&bmin, sw, o).is_some(),
                    "{bmin:?}: switch {sw:?} on path({o},{h}) cannot reach owner"
                );
            }
        }
    }

    /// Invariant 2: cleanup traffic re-traverses the entry-holding switches.
    #[test]
    fn cleanup_covers_entries(o in 0usize..64, h in 0usize..64) {
        for bmin in topologies() {
            let (o, h) = ((o % bmin.nodes()) as u8, (h % bmin.nodes()) as u8);
            // Entries are installed along the write-reply path (h -> o),
            // which in this topology uses the same switches as (o -> h).
            let install = bmin.path_switches(o, h);
            let cleanup: Vec<_> = routes::forward(&bmin, o, h).switches;
            prop_assert_eq!(install, cleanup);
        }
    }

    /// Every endpoint pair is routable and the hop counts are minimal:
    /// requests cross exactly `stages` switches; turnaround routes cross
    /// `2 * (turnaround stage) + 1`.
    #[test]
    fn route_lengths_minimal(a in 0usize..64, b in 0usize..64) {
        for bmin in topologies() {
            let (a, b) = ((a % bmin.nodes()) as u8, (b % bmin.nodes()) as u8);
            prop_assert_eq!(routes::forward(&bmin, a, b).switch_hops(), bmin.stages());
            prop_assert_eq!(routes::backward(&bmin, b, a).switch_hops(), bmin.stages());
            let p2p = routes::proc_to_proc(&bmin, a, b, 0);
            let t = bmin.turnaround_stage(a, b);
            prop_assert_eq!(p2p.switch_hops(), 2 * t + 1);
        }
    }

    /// The generalized switch-origin route terminates at its target for
    /// every (origin switch, target) combination, including foreign ones.
    #[test]
    fn via_routes_universal(o in 0usize..64, h in 0usize..64, target in 0usize..64, tb in 0u64..512) {
        for bmin in topologies() {
            let o = (o % bmin.nodes()) as u8;
            let h = (h % bmin.nodes()) as u8;
            let target = (target % bmin.nodes()) as u8;
            for sw in bmin.path_switches(o, h) {
                let r = routes::from_switch_to_proc_via(&bmin, sw, target, tb);
                prop_assert!(r.well_formed());
            }
        }
    }
}
