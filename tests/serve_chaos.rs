//! Chaos and durability tests for `dresar-serve`: seeded fault injection
//! ([`ServeFaultPlan`]) drives worker panics, store corruption and queue
//! deadlines through the real HTTP surface, proving the endurance story
//! end to end:
//!
//! - an injected engine panic is a structured 500 (`internal_panic`) and
//!   the *next* request for the same digest succeeds from the surviving
//!   pool, byte-identical across repeats;
//! - a server restarted over a populated `--store-dir` serves prior
//!   digests from disk (`X-Dresar-Cache: disk`) without re-executing;
//! - a corrupted store entry is quarantined (never served) and the result
//!   transparently recomputed;
//! - a request whose deadline expires while queued is answered 503
//!   without burning a worker on it;
//! - the client retry policy absorbs shed replies;
//! - chaos outcomes are deterministic per seed (the CI leg pins two).
//!
//! The determinism discipline from the engine carries up: every scenario
//! asserts exact counters and byte-identical bodies, not "eventually ok".

use dresar_obs::{MetricValue, MetricsRegistry};
use dresar_server::client::{post_run, post_run_retry, RetryPolicy};
use dresar_server::serve::{Server, ServerConfig};
use dresar_server::ServeFaultPlan;
use dresar_types::JsonValue;
use std::time::{Duration, Instant};

const FFT_SPEC: &str = r#"{"workload":"FFT","scale":"tiny","nodes":16,"sd_entries":256,"seed":7}"#;

fn counter(reg: &MetricsRegistry, name: &str) -> u64 {
    match reg.get(name) {
        Some(MetricValue::Counter(c)) => *c,
        other => panic!("metric {name} missing or not a counter: {other:?}"),
    }
}

/// Polls the server's metrics until `cond` holds (or panics after 30s).
fn wait_until(server: &Server, what: &str, cond: impl Fn(&MetricsRegistry) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if cond(&server.metrics()) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn error_code(body: &str) -> String {
    let doc = JsonValue::parse(body).expect("error body is JSON");
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .expect("error body has error.code")
        .to_string()
}

/// A unique per-test scratch directory for the durable store.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dresar-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn chaos(spec: &str) -> Option<ServeFaultPlan> {
    Some(ServeFaultPlan::parse(spec).expect("chaos spec parses"))
}

#[test]
fn injected_worker_panic_is_a_structured_500_and_the_pool_keeps_serving() {
    // One worker, so surviving the panic is only possible if that single
    // worker's loop contains it — there is no spare to hide behind.
    let cfg = ServerConfig { workers: 1, chaos: chaos("panic_nth=1"), ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();

    let panicked = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(panicked.status, 500, "injected panic must be a 500: {}", panicked.body);
    assert_eq!(error_code(&panicked.body), "internal_panic");
    let doc = JsonValue::parse(&panicked.body).unwrap();
    let detail = doc
        .get("error")
        .and_then(|e| e.get("detail"))
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_string();
    assert!(detail.contains("chaos: injected worker panic"), "detail lacks payload: {detail}");
    assert!(detail.contains("digest"), "detail must name the digest: {detail}");
    assert_eq!(counter(&server.metrics(), "serve.worker_panics"), 1);

    // The NEXT request for the same digest must succeed: the panic was not
    // cached, the worker survived, and the engine re-runs cleanly.
    let first = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(first.status, 200, "post-panic request failed: {}", first.body);
    let second = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(first.body, second.body, "post-panic bodies must be byte-identical");

    let reg = server.metrics();
    assert_eq!(counter(&reg, "serve.worker_panics"), 1, "exactly the injected panic");
    assert_eq!(counter(&reg, "serve.executions"), 2, "panicked attempt + clean re-run");
    server.shutdown();
}

#[test]
fn restarted_server_serves_prior_digests_from_disk_byte_identically() {
    let dir = scratch_dir("restart");

    // First life: execute once, which write-throughs to the store.
    let cfg = ServerConfig { store_dir: Some(dir.clone()), ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();
    let cold = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-dresar-cache"), Some("miss"));
    server.shutdown();

    // Second life over the same directory: the LRU is empty, but the boot
    // scan found the entry — the digest is answered from disk, verified,
    // byte-identical, with zero executions.
    let cfg = ServerConfig { store_dir: Some(dir.clone()), ..Default::default() };
    let reborn = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = reborn.local_addr().to_string();
    let warm = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);
    assert_eq!(warm.header("x-dresar-cache"), Some("disk"), "restart must hit the disk tier");
    assert_eq!(warm.body, cold.body, "disk-served body must be byte-identical");

    let reg = reborn.metrics();
    assert_eq!(counter(&reg, "serve.executions"), 0, "a disk hit must not re-execute");
    assert_eq!(counter(&reg, "serve.store_hits"), 1);

    // The disk hit repopulated the LRU: the next request is a memory hit.
    let hot = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(hot.header("x-dresar-cache"), Some("hit"));
    assert_eq!(hot.body, cold.body);
    reborn.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_eviction_falls_back_to_the_disk_tier_without_re_executing() {
    // A one-entry LRU over a store: executing B evicts A from memory, but
    // the write-through copy on disk still answers A without a re-run.
    let dir = scratch_dir("evict");
    let cfg = ServerConfig { cache_entries: 1, store_dir: Some(dir.clone()), ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();

    let a_cold = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(a_cold.status, 200, "{}", a_cold.body);
    let b_spec = r#"{"workload":"TC","scale":"tiny","nodes":16,"sd_entries":256,"seed":3}"#;
    assert_eq!(post_run(&addr, b_spec).unwrap().status, 200);

    let a_again = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(a_again.status, 200);
    assert_eq!(a_again.header("x-dresar-cache"), Some("disk"), "evicted entry must hit disk");
    assert_eq!(a_again.body, a_cold.body, "disk fallback must be byte-identical");
    assert_eq!(counter(&server.metrics(), "serve.executions"), 2, "A and B, never A twice");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_entry_is_quarantined_and_transparently_recomputed() {
    let dir = scratch_dir("corrupt");

    let cfg = ServerConfig { store_dir: Some(dir.clone()), ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();
    let original = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(original.status, 200, "{}", original.body);
    server.shutdown();

    // Restart with chaos corrupting the first store read: the flipped body
    // bit must fail checksum verification, quarantine the file, and fall
    // through to a fresh execution — never serve damaged bytes.
    let cfg = ServerConfig {
        store_dir: Some(dir.clone()),
        chaos: chaos("store_read_corrupt_nth=1"),
        ..Default::default()
    };
    let reborn = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = reborn.local_addr().to_string();
    let recomputed = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(recomputed.status, 200, "{}", recomputed.body);
    assert_eq!(recomputed.header("x-dresar-cache"), Some("miss"), "corrupt entry must re-run");
    assert_eq!(recomputed.body, original.body, "recomputed body must be byte-identical");

    let reg = reborn.metrics();
    assert_eq!(counter(&reg, "serve.store_corrupt"), 1);
    assert_eq!(counter(&reg, "serve.executions"), 1, "exactly one recompute");

    // The damaged file was renamed aside for post-mortem, and the fresh
    // execution wrote a clean replacement entry.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.ends_with(".corrupt")),
        "quarantined file missing from {names:?}"
    );
    assert!(
        names.iter().any(|n| n.ends_with(".result")),
        "replacement entry missing from {names:?}"
    );
    reborn.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_expired_in_queue_is_answered_without_burning_a_worker() {
    // Paused workers: the request can only sit in the queue, so its 50ms
    // deadline is guaranteed to lapse before anything executes.
    let cfg = ServerConfig { workers: 1, start_paused: true, ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();

    let spec = r#"{"workload":"FFT","scale":"tiny","nodes":16,"sd_entries":256,"seed":7,
                   "deadline_ms":50}"#;
    let resp = post_run(&addr, spec).unwrap();
    assert_eq!(resp.status, 503, "expired deadline must be a 503: {}", resp.body);
    assert_eq!(error_code(&resp.body), "deadline_exceeded");
    assert_eq!(resp.header("retry-after"), Some("1"), "deadline replies advertise Retry-After");

    // Release the worker: it dequeues the stale job, sees the lapsed
    // deadline, and drops it — counted, but never executed.
    server.resume_workers();
    wait_until(&server, "stale job dropped at dequeue", |reg| {
        counter(reg, "serve.deadline_expired") == 1
    });
    assert_eq!(counter(&server.metrics(), "serve.executions"), 0, "no worker burned");

    // The server is healthy: the same spec without a deadline completes.
    let ok = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(ok.status, 200, "server must serve normally after a deadline drop: {}", ok.body);
    server.shutdown();
}

#[test]
fn client_retry_policy_absorbs_shed_replies() {
    // A single paused worker and a one-slot queue: the occupant fills the
    // slot and every later request is shed with 429 + Retry-After.
    let cfg = ServerConfig { queue_depth: 1, workers: 1, start_paused: true, ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();

    let occupant = {
        let addr = addr.clone();
        std::thread::spawn(move || post_run(&addr, FFT_SPEC).unwrap())
    };
    wait_until(&server, "occupant queued", |reg| counter(reg, "serve.scheduled") == 1);

    // A distinct spec under a retry policy: the first attempt is shed, and
    // the backoff schedule carries it past the resume below.
    let retried = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let spec = r#"{"workload":"SOR","scale":"tiny","nodes":16,"sd_entries":256,"seed":9}"#;
            let policy = RetryPolicy { max_retries: 40, base_ms: 25, cap_ms: 100, seed: 1009 };
            post_run_retry(&addr, spec, &policy).unwrap()
        })
    };
    wait_until(&server, "retry client shed at least once", |reg| counter(reg, "serve.shed") >= 1);
    server.resume_workers();

    assert_eq!(occupant.join().unwrap().status, 200);
    let (resp, outcome) = retried.join().unwrap();
    assert_eq!(resp.status, 200, "retries must eventually land: {}", resp.body);
    assert!(outcome.retries >= 1, "the shed reply must have been retried");
    assert!(!outcome.gave_up);
    server.shutdown();
}

/// Drives `n` distinct serial requests against a fresh server armed with
/// `plan` and returns the status sequence — the observable chaos outcome.
fn chaos_status_sequence(plan: &str, n: usize) -> Vec<u16> {
    let cfg = ServerConfig { workers: 1, chaos: chaos(plan), ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();
    let statuses = (0..n)
        .map(|i| {
            let spec = format!(
                r#"{{"workload":"TC","scale":"tiny","nodes":16,"sd_entries":256,"seed":{i}}}"#
            );
            post_run(&addr, &spec).unwrap().status
        })
        .collect();
    server.shutdown();
    statuses
}

#[test]
fn probabilistic_chaos_outcomes_are_deterministic_per_seed() {
    // The two seeds CI pins. One worker + serial requests align the
    // execution order with the request order, so the ppm draw sequence —
    // and therefore which requests panic — is a pure function of the seed.
    for seed in [1009u64, 7919] {
        let plan = format!("panic_ppm=400000,seed={seed}");
        let first = chaos_status_sequence(&plan, 6);
        let second = chaos_status_sequence(&plan, 6);
        assert_eq!(first, second, "seed {seed} must reproduce its fault schedule");
        assert!(
            first.iter().all(|s| *s == 200 || *s == 500),
            "chaos outcomes are clean runs or contained panics: {first:?}"
        );
    }
}
