//! Tier-1 guarantees for the parallel sweep harness and the metric
//! gauges it reports.
//!
//! 1. The parallel sweep's output is **byte-identical** to a serial
//!    execution — the property that lets `BENCH_dresar.json` stay under an
//!    exact-match regression gate while being produced on however many
//!    cores the host has.
//! 2. Every gauge in every produced registry satisfies `current <= peak`.
//!    Both sides now use the same merge scope (max across instances); a
//!    summed current against a maxed peak once let `current > peak` into
//!    committed telemetry.
//! 3. Writebacks cross-check: a capacity-exceeding workload produces
//!    writebacks, and the cache-side and network-side counts agree. (At
//!    `Scale::Tiny` the per-node footprint fits in the 128 KB L2, so the
//!    committed baseline legitimately reports zero.)

use dresar_bench::suite;
use dresar_bench::sweep::{heatmap_runs, standard_runs, SweepRunner};
use dresar_obs::MetricValue;
use dresar_types::{JsonValue, ToJson};
use dresar_workloads::Scale;

fn runs_doc(runner: SweepRunner) -> String {
    let benches = suite(Scale::Tiny);
    let (runs, _timings) = standard_runs(&benches, runner);
    let arr: Vec<JsonValue> = runs
        .iter()
        .map(|r| {
            JsonValue::obj()
                .field("name", r.name.as_str())
                .field("metrics", r.metrics.to_json())
                .build()
        })
        .collect();
    JsonValue::Arr(arr).dump()
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let serial = runs_doc(SweepRunner::serial());
    let parallel = runs_doc(SweepRunner::with_threads(4));
    assert_eq!(serial, parallel, "parallel sweep output diverged from serial");
    // The degraded runs depend on the sd1024 cycle counts, so a real
    // document came out of both paths, not two identical empties.
    assert!(serial.contains("FFT.sd-degraded"), "expected full run set, got: {serial}");
}

#[test]
fn heatmap_sweep_is_byte_identical_to_serial() {
    let doc = |runner| {
        let benches = suite(Scale::Tiny);
        let runs = heatmap_runs(&benches, runner);
        JsonValue::Arr(runs.iter().map(ToJson::to_json).collect()).dump()
    };
    let serial = doc(SweepRunner::serial());
    let parallel = doc(SweepRunner::with_threads(4));
    assert_eq!(serial, parallel, "parallel heatmap sweep diverged from serial");
    // Execution-driven workloads at both configurations, each naming a
    // critical resource — a real attribution came out of both paths.
    assert!(serial.contains("FFT.base") && serial.contains("FFT.sd1024"), "{serial}");
    assert!(serial.contains("\"critical\":{\"resource\":"), "no critical resource: {serial}");
    assert!(!serial.contains("TPC-C"), "trace-driven workloads have no topology to attribute");
}

#[test]
fn every_gauge_reports_current_at_most_peak() {
    let benches = suite(Scale::Tiny);
    let (runs, _) = standard_runs(&benches, SweepRunner::from_env());
    let mut gauges = 0usize;
    for r in &runs {
        for (name, v) in r.metrics.iter() {
            if let MetricValue::Gauge { current, peak } = v {
                gauges += 1;
                assert!(
                    current <= peak,
                    "{}/{name}: gauge current {current} > peak {peak}",
                    r.name
                );
            }
        }
    }
    assert!(gauges > 0, "expected gauges in the standard run set");
}

#[test]
fn capacity_pressure_produces_matching_writeback_counts() {
    use dresar::system::{RunOptions, System};
    use dresar_types::config::SystemConfig;
    use dresar_types::{StreamItem, Workload};

    // Shrink the caches so each stream's footprint exceeds its L2 (4x as
    // many distinct lines as the cache holds).
    let mut cfg = SystemConfig::paper_table2();
    cfg.l1.size_bytes = 1024;
    cfg.l2.size_bytes = 2048;
    cfg.switch_dir = None;
    let line = cfg.l2.line_bytes;
    let lines = cfg.l2.size_bytes / cfg.l2.line_bytes;
    let streams: Vec<Vec<StreamItem>> = (0..4u64)
        .map(|p| (0..4 * lines).map(|i| StreamItem::write(p * 0x10_0000 + i * line, 1)).collect())
        .collect();
    let w = Workload { name: "capacity".into(), streams };
    let report = System::new(cfg, &w).run(RunOptions::default());
    let cache_wb = report
        .metrics
        .get("cache.writebacks")
        .and_then(|v| match v {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        })
        .expect("cache.writebacks counter");
    let net_wb = report
        .metrics
        .get("net.writebacks")
        .and_then(|v| match v {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        })
        .expect("net.writebacks counter");
    assert!(cache_wb > 0, "capacity-exceeding workload produced no writebacks");
    assert_eq!(cache_wb, net_wb, "cache evictions and writeback messages disagree");
}
