//! End-to-end shape checks: at test scale, the reproduction must exhibit
//! the qualitative results the paper reports (DESIGN.md §4 "Expected
//! shapes"). Absolute numbers differ — the substrate is a from-scratch
//! simulator — but who wins, roughly by how much, and the skew structure
//! must hold.

use dresar_workspace::dresar::system::{RunOptions, System};
use dresar_workspace::trace_sim::TraceSimulator;
use dresar_workspace::types::config::{SystemConfig, TraceSimConfig};
use dresar_workspace::workloads::{commercial, scientific};

fn run_exec(
    w: &dresar_workspace::types::Workload,
    sd: bool,
) -> dresar_workspace::dresar::ExecutionReport {
    let cfg = if sd { SystemConfig::paper_table2() } else { SystemConfig::paper_base() };
    System::new(cfg, w).run(RunOptions { max_cycles: 2_000_000_000, ..Default::default() })
}

#[test]
fn figure1_fft_and_sor_are_ctoc_dominated() {
    let fft = run_exec(&scientific::fft(16, 1024), false);
    assert!(
        fft.dirty_read_fraction() > 0.5,
        "FFT dirty fraction {:.2} should be CtoC-dominated",
        fft.dirty_read_fraction()
    );
    let sor = run_exec(&scientific::sor(16, 64, 2), false);
    assert!(
        sor.dirty_read_fraction() > 0.5,
        "SOR dirty fraction {:.2} should be CtoC-dominated",
        sor.dirty_read_fraction()
    );
}

#[test]
fn figure1_pivot_kernels_are_moderate() {
    for (name, w) in [
        ("tc", scientific::tc(16, 32)),
        ("fwa", scientific::fwa(16, 32)),
        ("gauss", scientific::gauss(16, 32)),
    ] {
        let r = run_exec(&w, false);
        let f = r.dirty_read_fraction();
        assert!(f > 0.02 && f < 0.6, "{name} dirty fraction {f:.2} out of the moderate band");
    }
}

#[test]
fn figure1_commercial_mix() {
    // Short traces under-weight the dirty fraction (cold misses dominate);
    // 1M references is enough for the steady-state mix to emerge. At the
    // full 16M-reference paper scale the presets measure ~44% (TPC-C) and
    // ~52% (TPC-D) against the paper's 38% / 62% — see EXPERIMENTS.md.
    let refs = 1_000_000;
    let tpcc =
        TraceSimulator::new(TraceSimConfig::paper_base()).run(&commercial::tpcc(16, refs, 7));
    let tpcd =
        TraceSimulator::new(TraceSimConfig::paper_base()).run(&commercial::tpcd(16, refs, 7));
    let fc = tpcc.reads.dirty_fraction();
    let fd = tpcd.reads.dirty_fraction();
    assert!(fc > 0.25 && fc < 0.55, "TPC-C dirty {fc:.2} outside band (paper 0.38)");
    assert!(fd > 0.35 && fd < 0.75, "TPC-D dirty {fd:.2} outside band (paper 0.62)");
    assert!(fd > fc, "TPC-D must be dirtier than TPC-C (got {fd:.2} vs {fc:.2})");
}

#[test]
fn figure2_skew_concentrates_ctocs() {
    let mut sim = TraceSimulator::new(TraceSimConfig::paper_base());
    sim.collect_histogram();
    let r = sim.run(&commercial::tpcc(16, 300_000, 11));
    let h = r.histogram.unwrap();
    let cov = h.ctoc_coverage_of_top(0.10);
    assert!(cov > 0.6, "top-10% CtoC coverage {cov:.2} too flat (paper ~0.88)");
    // The cumulative curve must be monotone (checked in-crate) and end at 1.
    let pts = h.cumulative(10);
    assert!((pts.last().unwrap().ctoc_fraction - 1.0).abs() < 1e-9);
}

#[test]
fn figure8_switch_dirs_cut_home_ctocs_for_every_workload() {
    // Scientific side at test scale.
    for (name, w) in [
        ("fft", scientific::fft(16, 512)),
        ("sor", scientific::sor(16, 48, 2)),
        ("gauss", scientific::gauss(16, 32)),
    ] {
        let base = run_exec(&w, false);
        let with = run_exec(&w, true);
        assert!(
            with.home_ctoc() < base.home_ctoc() || base.home_ctoc() == 0,
            "{name}: home CtoC did not drop ({} -> {})",
            base.home_ctoc(),
            with.home_ctoc()
        );
    }
    // Commercial side.
    let w = commercial::tpcc(16, 200_000, 3);
    let base = TraceSimulator::new(TraceSimConfig::paper_base()).run(&w);
    let with = TraceSimulator::new(TraceSimConfig::paper_table3()).run(&w);
    assert!(with.home_ctoc() < base.home_ctoc());
    assert!(with.reads.ctoc_switch > 0);
}

#[test]
fn figure9_to_11_latency_stall_and_exec_improve_where_hits_exist() {
    let w = scientific::fft(16, 1024);
    let base = run_exec(&w, false);
    let with = run_exec(&w, true);
    assert!(with.sd.read_hits > 0, "FFT must hit switch directories");
    assert!(
        with.avg_read_latency() < base.avg_read_latency(),
        "read latency must improve ({:.1} -> {:.1})",
        base.avg_read_latency(),
        with.avg_read_latency()
    );
    assert!(with.read_stall_cycles() < base.read_stall_cycles());
    assert!(with.cycles <= base.cycles, "execution time must not regress");
}

#[test]
fn latency_ordering_matches_table3() {
    // switch-served < home-served dirty; clean < dirty (the 1.5-2x premium
    // the paper attacks).
    let w = commercial::tpcd(16, 200_000, 5);
    let base = TraceSimulator::new(TraceSimConfig::paper_base()).run(&w);
    let with = TraceSimulator::new(TraceSimConfig::paper_table3()).run(&w);
    assert!(with.avg_read_latency() < base.avg_read_latency());
    // Reconstruct per-class means from Table 3 weights: the aggregate with
    // switch service must sit strictly between the switch-hit latency and
    // the base aggregate.
    assert!(with.avg_read_latency() > 200.0 - 1e-9);
}
