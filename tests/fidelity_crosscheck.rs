//! Cross-checks the hop-level latency model against the cycle-accurate
//! flit-level network (DESIGN.md: "an integration test cross-checks their
//! latency agreement on small message batches").

use dresar_workspace::interconnect::{routes, Bmin, FlitNetwork, HopNetwork};
use dresar_workspace::types::config::SystemConfig;

fn hop_latency(hop: &mut HopNetwork, route: &routes::Route, flits: u32, start: u64) -> u64 {
    let mut t = start;
    for (i, &link) in route.links.iter().enumerate() {
        if i > 0 {
            t += hop.core_delay();
        }
        t = hop.traverse_link(link, t, flits);
    }
    t + hop.tail_lag(flits)
}

#[test]
fn uncontended_latencies_agree_exactly() {
    let bmin = Bmin::new(16, 4);
    let cfg = SystemConfig::paper_table2().switch;
    for (p, m, flits) in [(0u8, 15u8, 1u32), (3, 9, 5), (12, 0, 5), (7, 7, 1)] {
        let route = routes::forward(&bmin, p, m);
        let mut flit = FlitNetwork::new(bmin, cfg);
        flit.inject(1, &route, flits).expect("route fits the network");
        let d = flit.run_until_drained(100_000);
        assert_eq!(d.len(), 1);

        let mut hop = HopNetwork::new(cfg, 16);
        let expect = hop_latency(&mut hop, &route, flits, 0);
        let got = d[0].at;
        let err = got.abs_diff(expect);
        assert!(
            err <= 2 * cfg.link_cycles_per_flit as u64,
            "({p},{m},{flits} flits): flit {got} vs hop {expect}"
        );
    }
}

#[test]
fn light_load_batch_agrees_within_tolerance() {
    let bmin = Bmin::new(16, 4);
    let cfg = SystemConfig::paper_table2().switch;
    let mut flit = FlitNetwork::new(bmin, cfg);
    let mut hop = HopNetwork::new(cfg, 16);

    let mut hop_total = 0u64;
    for p in 0..16u8 {
        let m = (p + 3) % 16;
        let route = routes::forward(&bmin, p, m);
        flit.inject(p as u64, &route, 5).expect("route fits the network");
        hop_total += hop_latency(&mut hop, &route, 5, 0);
    }
    let d = flit.run_until_drained(1_000_000);
    assert_eq!(d.len(), 16, "no deadlock");
    let flit_total: u64 = d.iter().map(|x| x.at).sum();

    let ratio = flit_total as f64 / hop_total as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "hop model diverges from flit model: ratio {ratio:.2} (flit {flit_total}, hop {hop_total})"
    );
}

#[test]
fn contention_appears_in_both_models() {
    // Four processors hammer one memory: both models must show the
    // serialization on the shared ejection link.
    let bmin = Bmin::new(16, 4);
    let cfg = SystemConfig::paper_table2().switch;

    let mut flit = FlitNetwork::new(bmin, cfg);
    let mut hop = HopNetwork::new(cfg, 16);
    let mut hop_last = 0u64;
    for p in 0..4u8 {
        let route = routes::forward(&bmin, p, 8);
        flit.inject(p as u64, &route, 5).expect("route fits the network");
        hop_last = hop_last.max(hop_latency(&mut hop, &route, 5, 0));
    }
    let d = flit.run_until_drained(1_000_000);
    let flit_last = d.iter().map(|x| x.at).max().unwrap();

    // Uncontended single-message time for comparison.
    let mut solo_hop = HopNetwork::new(cfg, 16);
    let solo = hop_latency(&mut solo_hop, &routes::forward(&bmin, 0, 8), 5, 0);

    assert!(flit_last > solo + 20, "flit model must show queueing ({flit_last} vs solo {solo})");
    assert!(hop_last > solo + 20, "hop model must show queueing ({hop_last} vs solo {solo})");
}
