//! End-to-end tests for the `dresar-serve` service: real sockets, real
//! engine executions, and the three serving mechanisms proven over the
//! wire — content-addressed caching (cold vs warm, byte-identical),
//! request coalescing (N identical concurrent requests, one execution),
//! and bounded admission (structured 429 shed, server healthy after).
//!
//! Concurrency assertions are made deterministic, not timing-dependent, by
//! starting the engine workers paused: requests pile up, the test polls the
//! server's own metrics until every request has registered, and only then
//! releases the workers.

use dresar_obs::{MetricValue, MetricsRegistry};
use dresar_server::client::{http_request, post_run};
use dresar_server::serve::{Server, ServerConfig};
use dresar_types::JsonValue;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

const FFT_SPEC: &str = r#"{"workload":"FFT","scale":"tiny","nodes":16,"sd_entries":256,"seed":7}"#;

fn counter(reg: &MetricsRegistry, name: &str) -> u64 {
    match reg.get(name) {
        Some(MetricValue::Counter(c)) => *c,
        other => panic!("metric {name} missing or not a counter: {other:?}"),
    }
}

/// Polls the server's metrics until `cond` holds (or panics after 30s).
fn wait_until(server: &Server, what: &str, cond: impl Fn(&MetricsRegistry) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if cond(&server.metrics()) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn error_code(body: &str) -> String {
    let doc = JsonValue::parse(body).expect("error body is JSON");
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .expect("error body has error.code")
        .to_string()
}

#[test]
fn cold_then_warm_request_hits_the_cache_byte_identically() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let cold = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(cold.status, 200, "cold run failed: {}", cold.body);
    let warm = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(cold.body, warm.body, "warm body must be byte-identical to the cold run");

    let reg = server.metrics();
    assert_eq!(counter(&reg, "serve.executions"), 1, "warm request must not re-execute");
    assert!(counter(&reg, "serve.cache_hits") >= 1);
    let doc = JsonValue::parse(&cold.body).unwrap();
    assert!(doc.get("report").and_then(|r| r.get("cycles")).is_some());
    server.shutdown();
}

#[test]
fn concurrent_identical_requests_coalesce_into_one_execution() {
    let cfg = ServerConfig { queue_depth: 8, workers: 2, start_paused: true, ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();

    // Four identical requests plus two distinct ones, all while the
    // workers are paused — nothing can execute or hit the cache yet.
    let identical: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || post_run(&addr, FFT_SPEC).unwrap())
        })
        .collect();
    let distinct: Vec<_> = [1u64, 2]
        .iter()
        .map(|seed| {
            let addr = addr.clone();
            let spec = format!(
                r#"{{"workload":"TC","scale":"tiny","nodes":16,"sd_entries":256,"seed":{seed}}}"#
            );
            std::thread::spawn(move || post_run(&addr, &spec).unwrap())
        })
        .collect();

    // All six must be registered — 3 leaders queued, 3 followers attached
    // to the FFT leader — before the engine is released.
    wait_until(&server, "6 requests registered, 3 coalesced", |reg| {
        counter(reg, "serve.run_requests") == 6
            && counter(reg, "serve.coalesced") == 3
            && counter(reg, "serve.scheduled") == 3
    });
    server.resume_workers();

    let fft_bodies: Vec<String> = identical
        .into_iter()
        .map(|h| {
            let resp = h.join().unwrap();
            assert_eq!(resp.status, 200, "coalesced request failed: {}", resp.body);
            resp.body
        })
        .collect();
    for body in &fft_bodies[1..] {
        assert_eq!(body, &fft_bodies[0], "coalesced responses must be byte-identical");
    }
    for h in distinct {
        let resp = h.join().unwrap();
        assert_eq!(resp.status, 200, "distinct request failed: {}", resp.body);
    }

    let reg = server.metrics();
    assert_eq!(counter(&reg, "serve.executions"), 3, "4 identical + 2 distinct = 3 executions");
    assert_eq!(counter(&reg, "serve.coalesced"), 3);
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_structured_429_and_recovers() {
    let cfg = ServerConfig { queue_depth: 1, workers: 1, start_paused: true, ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();

    // Fill the single queue slot with a request the paused worker cannot
    // drain.
    let occupant = {
        let addr = addr.clone();
        std::thread::spawn(move || post_run(&addr, FFT_SPEC).unwrap())
    };
    wait_until(&server, "occupant queued", |reg| counter(reg, "serve.scheduled") == 1);

    // A distinct request now has nowhere to go: structured shed.
    let shed_spec = r#"{"workload":"SOR","scale":"tiny","nodes":16,"sd_entries":256,"seed":9}"#;
    let shed = post_run(&addr, shed_spec).unwrap();
    assert_eq!(shed.status, 429, "full queue must shed: {}", shed.body);
    assert_eq!(error_code(&shed.body), "overloaded");
    assert!(counter(&server.metrics(), "serve.shed") >= 1);

    // Release the engine: the occupant completes, and the server keeps
    // serving new work after having shed.
    server.resume_workers();
    let resp = occupant.join().unwrap();
    assert_eq!(resp.status, 200, "queued request failed: {}", resp.body);
    let retry = post_run(&addr, shed_spec).unwrap();
    assert_eq!(retry.status, 200, "server must recover after shedding: {}", retry.body);
    server.shutdown();
}

#[test]
fn malformed_requests_get_distinct_machine_readable_errors() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let cases: [(&str, &str); 4] = [
        ("{not json", "bad_json"),
        (r#"{"workload":"FFT","entires":512}"#, "unknown_field"),
        (r#"{"workload":"FFT","sd_entries":100}"#, "bad_sd_size"),
        (r#"{"workload":"FFT","nodes":12}"#, "bad_topology"),
    ];
    for (body, code) in cases {
        let resp = post_run(&addr, body).unwrap();
        assert_eq!(resp.status, 400, "{code}: {}", resp.body);
        assert_eq!(error_code(&resp.body), code);
    }

    // A client that promises more bytes than it sends gets the dedicated
    // truncated-body error, not a hang or a generic failure.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(b"POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"work").unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let mut resp = String::new();
    raw.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "truncated body response: {resp}");
    let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
    assert_eq!(error_code(body), "truncated_body");

    let resp = http_request(&addr, "GET", "/nowhere", "").unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(error_code(&resp.body), "not_found");
    server.shutdown();
}

#[test]
fn health_and_metrics_endpoints_serve_json() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let health = http_request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    let doc = JsonValue::parse(&health.body).unwrap();
    assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));

    let run = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(run.status, 200, "{}", run.body);

    let metrics = http_request(&addr, "GET", "/metrics", "").unwrap();
    assert_eq!(metrics.status, 200);
    let doc = JsonValue::parse(&metrics.body).unwrap();
    let m = doc.get("metrics").expect("metrics section");
    assert!(m.get("serve.run_requests").is_some());
    assert!(m.get("serve.executions").is_some());
    assert!(doc.get("host").and_then(|h| h.get("uptime_seconds")).is_some());
    server.shutdown();
}
