//! End-to-end tests for the `dresar-serve` service: real sockets, real
//! engine executions, and the three serving mechanisms proven over the
//! wire — content-addressed caching (cold vs warm, byte-identical),
//! request coalescing (N identical concurrent requests, one execution),
//! and bounded admission (structured 429 shed, server healthy after).
//!
//! Concurrency assertions are made deterministic, not timing-dependent, by
//! starting the engine workers paused: requests pile up, the test polls the
//! server's own metrics until every request has registered, and only then
//! releases the workers.

use dresar_obs::{MetricValue, MetricsRegistry};
use dresar_server::client::{http_request, http_request_with, post_run, stream_metrics};
use dresar_server::serve::{Server, ServerConfig};
use dresar_types::JsonValue;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

const FFT_SPEC: &str = r#"{"workload":"FFT","scale":"tiny","nodes":16,"sd_entries":256,"seed":7}"#;

fn counter(reg: &MetricsRegistry, name: &str) -> u64 {
    match reg.get(name) {
        Some(MetricValue::Counter(c)) => *c,
        other => panic!("metric {name} missing or not a counter: {other:?}"),
    }
}

/// Polls the server's metrics until `cond` holds (or panics after 30s).
fn wait_until(server: &Server, what: &str, cond: impl Fn(&MetricsRegistry) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if cond(&server.metrics()) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn error_code(body: &str) -> String {
    let doc = JsonValue::parse(body).expect("error body is JSON");
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .expect("error body has error.code")
        .to_string()
}

#[test]
fn cold_then_warm_request_hits_the_cache_byte_identically() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let cold = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(cold.status, 200, "cold run failed: {}", cold.body);
    let warm = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(cold.body, warm.body, "warm body must be byte-identical to the cold run");

    let reg = server.metrics();
    assert_eq!(counter(&reg, "serve.executions"), 1, "warm request must not re-execute");
    assert!(counter(&reg, "serve.cache_hits") >= 1);
    let doc = JsonValue::parse(&cold.body).unwrap();
    assert!(doc.get("report").and_then(|r| r.get("cycles")).is_some());
    server.shutdown();
}

#[test]
fn concurrent_identical_requests_coalesce_into_one_execution() {
    let cfg = ServerConfig { queue_depth: 8, workers: 2, start_paused: true, ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();

    // Four identical requests plus two distinct ones, all while the
    // workers are paused — nothing can execute or hit the cache yet.
    let identical: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || post_run(&addr, FFT_SPEC).unwrap())
        })
        .collect();
    let distinct: Vec<_> = [1u64, 2]
        .iter()
        .map(|seed| {
            let addr = addr.clone();
            let spec = format!(
                r#"{{"workload":"TC","scale":"tiny","nodes":16,"sd_entries":256,"seed":{seed}}}"#
            );
            std::thread::spawn(move || post_run(&addr, &spec).unwrap())
        })
        .collect();

    // All six must be registered — 3 leaders queued, 3 followers attached
    // to the FFT leader — before the engine is released.
    wait_until(&server, "6 requests registered, 3 coalesced", |reg| {
        counter(reg, "serve.run_requests") == 6
            && counter(reg, "serve.coalesced") == 3
            && counter(reg, "serve.scheduled") == 3
    });
    server.resume_workers();

    let fft_bodies: Vec<String> = identical
        .into_iter()
        .map(|h| {
            let resp = h.join().unwrap();
            assert_eq!(resp.status, 200, "coalesced request failed: {}", resp.body);
            resp.body
        })
        .collect();
    for body in &fft_bodies[1..] {
        assert_eq!(body, &fft_bodies[0], "coalesced responses must be byte-identical");
    }
    for h in distinct {
        let resp = h.join().unwrap();
        assert_eq!(resp.status, 200, "distinct request failed: {}", resp.body);
    }

    let reg = server.metrics();
    assert_eq!(counter(&reg, "serve.executions"), 3, "4 identical + 2 distinct = 3 executions");
    assert_eq!(counter(&reg, "serve.coalesced"), 3);
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_structured_429_and_recovers() {
    let cfg = ServerConfig { queue_depth: 1, workers: 1, start_paused: true, ..Default::default() };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();

    // Fill the single queue slot with a request the paused worker cannot
    // drain.
    let occupant = {
        let addr = addr.clone();
        std::thread::spawn(move || post_run(&addr, FFT_SPEC).unwrap())
    };
    wait_until(&server, "occupant queued", |reg| counter(reg, "serve.scheduled") == 1);

    // A distinct request now has nowhere to go: structured shed.
    let shed_spec = r#"{"workload":"SOR","scale":"tiny","nodes":16,"sd_entries":256,"seed":9}"#;
    let shed = post_run(&addr, shed_spec).unwrap();
    assert_eq!(shed.status, 429, "full queue must shed: {}", shed.body);
    assert_eq!(error_code(&shed.body), "overloaded");
    assert_eq!(
        shed.header("retry-after"),
        Some("1"),
        "shed replies must advertise Retry-After so clients can back off"
    );
    assert!(counter(&server.metrics(), "serve.shed") >= 1);

    // Release the engine: the occupant completes, and the server keeps
    // serving new work after having shed.
    server.resume_workers();
    let resp = occupant.join().unwrap();
    assert_eq!(resp.status, 200, "queued request failed: {}", resp.body);
    let retry = post_run(&addr, shed_spec).unwrap();
    assert_eq!(retry.status, 200, "server must recover after shedding: {}", retry.body);
    server.shutdown();
}

#[test]
fn malformed_requests_get_distinct_machine_readable_errors() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let cases: [(&str, &str); 4] = [
        ("{not json", "bad_json"),
        (r#"{"workload":"FFT","entires":512}"#, "unknown_field"),
        (r#"{"workload":"FFT","sd_entries":100}"#, "bad_sd_size"),
        (r#"{"workload":"FFT","nodes":12}"#, "bad_topology"),
    ];
    for (body, code) in cases {
        let resp = post_run(&addr, body).unwrap();
        assert_eq!(resp.status, 400, "{code}: {}", resp.body);
        assert_eq!(error_code(&resp.body), code);
    }

    // A client that promises more bytes than it sends gets the dedicated
    // truncated-body error, not a hang or a generic failure.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(b"POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"work").unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let mut resp = String::new();
    raw.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "truncated body response: {resp}");
    let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
    assert_eq!(error_code(body), "truncated_body");

    let resp = http_request(&addr, "GET", "/nowhere", "").unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(error_code(&resp.body), "not_found");
    server.shutdown();
}

#[test]
fn health_and_metrics_endpoints_serve_json() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let health = http_request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    let doc = JsonValue::parse(&health.body).unwrap();
    assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));

    let run = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(run.status, 200, "{}", run.body);

    let metrics = http_request(&addr, "GET", "/metrics", "").unwrap();
    assert_eq!(metrics.status, 200);
    let doc = JsonValue::parse(&metrics.body).unwrap();
    let m = doc.get("metrics").expect("metrics section");
    assert!(m.get("serve.run_requests").is_some());
    assert!(m.get("serve.executions").is_some());
    assert!(doc.get("host").and_then(|h| h.get("uptime_seconds")).is_some());
    server.shutdown();
}

#[test]
fn metrics_endpoint_negotiates_prometheus_text_exposition() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let run = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(run.status, 200, "{}", run.body);

    // Either the query parameter or an Accept header selects the text
    // format; the default stays JSON.
    let by_query = http_request(&addr, "GET", "/metrics?format=prom", "").unwrap();
    assert_eq!(by_query.status, 200);
    assert_eq!(by_query.header("content-type"), Some("text/plain; version=0.0.4"));
    assert!(
        by_query.body.contains("# TYPE serve_run_requests counter"),
        "missing counter exposition: {}",
        by_query.body
    );
    assert!(by_query.body.contains("serve_queue_depth_peak"), "gauge peak companion missing");
    assert!(
        by_query.body.contains("serve_service_us_log2_bucket{le=\"+Inf\"}"),
        "histogram +Inf bucket missing: {}",
        by_query.body
    );

    let by_accept =
        http_request_with(&addr, "GET", "/metrics", &[("Accept", "text/plain")], "").unwrap();
    assert_eq!(by_accept.status, 200);
    assert!(by_accept.body.starts_with("# TYPE"), "Accept negotiation failed");

    let json = http_request(&addr, "GET", "/metrics", "").unwrap();
    assert!(JsonValue::parse(&json.body).is_ok(), "default /metrics must stay JSON");
    // Per-digest service histograms surface once a run completed.
    assert!(
        json.body.contains("\"serve.digest."),
        "per-digest latency hist missing: {}",
        json.body
    );
    server.shutdown();
}

#[test]
fn timing_headers_split_queue_wait_from_execution_and_mark_cache_hits() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let cold = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-dresar-cache"), Some("miss"));
    assert!(cold.header_u64("x-dresar-queue-us").is_some(), "cold run must report queue wait");
    assert!(cold.header_u64("x-dresar-exec-us").is_some(), "cold run must report execute time");

    let warm = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-dresar-cache"), Some("hit"));
    assert_eq!(warm.header("x-dresar-exec-us"), None, "cache hits execute nothing");
    assert_eq!(cold.body, warm.body, "timing headers must not perturb the cached body");
    server.shutdown();
}

#[test]
fn traced_run_merges_server_and_simulator_spans_into_one_document() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let resp =
        http_request_with(&addr, "POST", "/run", &[("X-Dresar-Trace", "e2e-txn-001")], FFT_SPEC)
            .unwrap();
    assert_eq!(resp.status, 200, "traced run failed: {}", resp.body);
    assert_eq!(resp.header("x-dresar-trace"), Some("e2e-txn-001"));
    assert!(resp.header_u64("x-dresar-queue-us").is_some());
    assert!(resp.header_u64("x-dresar-exec-us").is_some());

    let doc = JsonValue::parse(&resp.body).expect("merged trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("object-form trace with traceEvents");
    let pid_of = |e: &JsonValue| e.get("pid").and_then(JsonValue::as_u64);
    // Server request spans live on their own process track...
    let server_spans: Vec<&JsonValue> = events
        .iter()
        .filter(|e| pid_of(e) == Some(100) && e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .collect();
    for phase in ["admission", "cache_lookup", "queue_wait", "execute", "serialize"] {
        assert!(
            server_spans.iter().any(|e| e.get("name").and_then(JsonValue::as_str) == Some(phase)),
            "missing server phase span '{phase}'"
        );
    }
    // ...each carrying the trace id that links them to this request.
    for e in &server_spans {
        assert_eq!(
            e.get("args").and_then(|a| a.get("trace_id")).and_then(JsonValue::as_str),
            Some("e2e-txn-001")
        );
    }
    // And the simulator's causal spans are spliced into the same array.
    assert!(
        events.iter().any(|e| pid_of(e) == Some(0)
            && e.get("name").and_then(JsonValue::as_str) == Some("read_miss")),
        "simulator read spans missing from the merged document"
    );
    // The dresar section ties the document back to the request.
    let meta = doc.get("dresar").expect("dresar metadata section");
    assert_eq!(meta.get("trace_id").and_then(JsonValue::as_str), Some("e2e-txn-001"));
    assert!(meta.get("phases_us").and_then(|p| p.get("execute_us")).is_some());
    server.shutdown();
}

#[test]
fn metrics_stream_pushes_bounded_sse_frames_with_windowed_deltas() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    // Do one run so the stream has non-trivial counters to report, then
    // ask for exactly 3 frames at a fast interval.
    let run = post_run(&addr, FFT_SPEC).unwrap();
    assert_eq!(run.status, 200, "{}", run.body);

    let mut frames = Vec::new();
    let n = stream_metrics(&addr, "frames=3&interval_ms=50", |data| {
        frames.push(data.to_string());
        true
    })
    .expect("stream completed");
    assert_eq!(n, 3, "frames=3 must deliver exactly 3 events");
    assert_eq!(frames.len(), 3);

    for (i, raw) in frames.iter().enumerate() {
        let frame = JsonValue::parse(raw).expect("frame payload is JSON");
        assert_eq!(frame.get("seq").and_then(JsonValue::as_u64), Some(i as u64));
        let metrics = frame.get("metrics").expect("cumulative metrics section");
        assert!(metrics.get("serve.run_requests").is_some());
        assert!(frame.get("window").is_some(), "windowed delta section missing");
    }
    // The run happened before the first frame, so its counters land in
    // frame 0's window (deltas vs zero) and NOT in later windows — the
    // stream reports rates, not a monotone ramp.
    let first = JsonValue::parse(&frames[0]).unwrap();
    let window_requests = |f: &JsonValue| {
        f.get("window").and_then(|w| w.get("serve.run_requests")).and_then(JsonValue::as_u64)
    };
    assert_eq!(window_requests(&first), Some(1), "first window counts the pre-stream run");
    let last = JsonValue::parse(&frames[2]).unwrap();
    assert_eq!(window_requests(&last), Some(0), "idle window must report zero delta");

    // The stream registered itself in the very metrics it reports.
    let reg = server.metrics();
    assert_eq!(counter(&reg, "serve.metric_streams"), 1);
    server.shutdown();
}

#[test]
fn anomalous_run_deposits_a_flight_dump_retrievable_over_http() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    // Before any anomalous run: a structured 404, not an empty document.
    let early = http_request(&addr, "GET", "/debug/flight", "").unwrap();
    assert_eq!(early.status, 404);
    assert_eq!(error_code(&early.body), "no_flight_dump");

    // Permanently lose a WriteReply: the write can never complete, the
    // watchdog trips, and the run is anomalous — the always-on flight
    // recorder's dump must land in the debug endpoint.
    let faulted = r#"{"workload":"FFT","scale":"tiny","nodes":16,"sd_entries":256,"seed":7,
                      "faults":"lose_kind=WriteReply,lose_nth=1"}"#;
    let run = post_run(&addr, faulted).unwrap();
    assert_eq!(run.status, 200, "faulted run must still serve a report: {}", run.body);
    let doc = JsonValue::parse(&run.body).unwrap();
    assert!(
        doc.get("report").and_then(|r| r.get("watchdog")).is_some(),
        "expected a watchdog trip in the report: {}",
        run.body
    );

    let flight = http_request(&addr, "GET", "/debug/flight", "").unwrap();
    assert_eq!(flight.status, 200, "{}", flight.body);
    let dump = JsonValue::parse(&flight.body).expect("flight dump is JSON");
    let records = dump.get("records").and_then(JsonValue::as_arr).expect("dump has records");
    assert!(!records.is_empty(), "flight dump must not be empty after an anomaly");
    assert!(dump.get("total").and_then(JsonValue::as_u64).unwrap_or(0) > 0);
    server.shutdown();
}
