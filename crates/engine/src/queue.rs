//! Deterministic time-ordered event queue.

use dresar_types::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Internal heap entry: ordered by `(time, seq)` so that events scheduled
/// earlier (in program order) at the same cycle are delivered first.
#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// The queue tracks the current simulation time ([`EventQueue::now`]);
/// popping an event advances time to that event's timestamp. Scheduling in
/// the past panics in debug builds (a scheduling bug would otherwise warp
/// causality silently).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Cycle,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0, peak_len: 0 }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` at absolute cycle `time`.
    pub fn schedule_at(&mut self, time: Cycle, event: E) {
        debug_assert!(time >= self.now, "scheduling into the past: {} < {}", time, self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time: time.max(self.now), seq, event }));
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Schedules `event` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the simulation has drained.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|Reverse(e)| {
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic; also the tie-break
    /// sequence counter).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// High-water mark of pending events — the queue occupancy a sized
    /// hardware event list would have needed.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::rng::SmallRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(10, 0u32);
        q.pop();
        q.schedule_in(5, 1u32);
        assert_eq!(q.pop(), Some((15, 1)));
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule_at(i, i);
        }
        q.pop();
        q.pop();
        q.schedule_at(10, 10);
        assert_eq!(q.peak_len(), 5, "peak is the historical maximum, not the current depth");
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(42, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.now(), 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    /// Popping always yields a non-decreasing time sequence, and every
    /// scheduled event comes back exactly once (seeded randomized sweep).
    #[test]
    fn time_monotone_and_complete_for_random_schedules() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let delays: Vec<u64> =
                (0..rng.gen_range(0usize..200)).map(|_| rng.gen_range(0u64..1000)).collect();
            let mut q = EventQueue::new();
            for (i, d) in delays.iter().enumerate() {
                q.schedule_at(*d, i);
            }
            let mut popped = Vec::new();
            let mut last = 0;
            while let Some((t, e)) = q.pop() {
                assert!(t >= last, "seed {seed}");
                last = t;
                popped.push(e);
            }
            popped.sort_unstable();
            assert_eq!(popped, (0..delays.len()).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    /// FIFO among events scheduled for the same cycle, at every batch size.
    #[test]
    fn fifo_within_cycle_at_every_size() {
        for n in 1usize..64 {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule_at(7, i);
            }
            let got: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(got, (0..n).collect::<Vec<_>>());
        }
    }
}
