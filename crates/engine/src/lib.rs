//! # dresar-engine
//!
//! A small, deterministic discrete-event simulation core shared by every
//! simulator in the workspace.
//!
//! * [`queue::EventQueue`] — the time-ordered event queue. Ties at the same
//!   cycle are broken by insertion order, so a simulation is a pure function
//!   of its inputs (a requirement for reproducing figures exactly across
//!   runs and machines).
//! * [`resource`] — busy-until resource models used for serialized units
//!   (links, directory controllers) and bank-interleaved units (DRAM).

#![warn(missing_docs)]

pub mod queue;
pub mod resource;

pub use queue::EventQueue;
pub use resource::{BankedResource, Resource};
