//! Busy-until resource models.
//!
//! A [`Resource`] serializes all users (a link transmitter, a directory
//! controller). A [`BankedResource`] models an interleaved unit — the
//! paper's 4-way interleaved DRAM (Table 2) — where requests to different
//! banks proceed in parallel but each bank serializes.

use dresar_types::Cycle;

/// A unit that serves one request at a time.
///
/// `acquire(now, duration)` books the resource for `duration` cycles
/// starting no earlier than `now` and no earlier than the previous booking's
/// end, returning the *start* time of the booking. Completion time is
/// `start + duration`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Resource {
    busy_until: Cycle,
    /// Total cycles the resource has been occupied (utilization metric).
    occupied: Cycle,
    /// Bookings served.
    acquisitions: u64,
    /// Cycles requests spent waiting for the resource to free up
    /// (backpressure: sum of `start - now` over all bookings).
    stalled: Cycle,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Books the resource; returns the cycle service actually starts.
    pub fn acquire(&mut self, now: Cycle, duration: Cycle) -> Cycle {
        let start = now.max(self.busy_until);
        self.busy_until = start + duration;
        self.occupied += duration;
        self.acquisitions += 1;
        self.stalled += start - now;
        start
    }

    /// Cycle at which the resource next becomes free.
    pub fn free_at(&self) -> Cycle {
        self.busy_until
    }

    /// Whether the resource is idle at `now`.
    pub fn idle_at(&self, now: Cycle) -> bool {
        self.busy_until <= now
    }

    /// Total occupied cycles so far.
    pub fn occupied_cycles(&self) -> Cycle {
        self.occupied
    }

    /// Bookings served so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Total cycles requests waited behind earlier bookings (backpressure).
    pub fn stall_cycles(&self) -> Cycle {
        self.stalled
    }
}

/// An interleaved unit with `banks` independent [`Resource`]s, selected by a
/// caller-supplied key (typically low-order block-address bits).
#[derive(Debug, Clone)]
pub struct BankedResource {
    banks: Vec<Resource>,
}

impl BankedResource {
    /// Creates `banks` idle banks. Panics if `banks == 0`.
    pub fn new(banks: usize) -> Self {
        assert!(banks > 0, "need at least one bank");
        BankedResource { banks: vec![Resource::new(); banks] }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Books the bank selected by `key % banks`; returns the start cycle.
    pub fn acquire(&mut self, key: u64, now: Cycle, duration: Cycle) -> Cycle {
        let idx = (key % self.banks.len() as u64) as usize;
        self.banks[idx].acquire(now, duration)
    }

    /// Total occupied cycles across all banks.
    pub fn occupied_cycles(&self) -> Cycle {
        self.banks.iter().map(Resource::occupied_cycles).sum()
    }

    /// Bookings served across all banks.
    pub fn acquisitions(&self) -> u64 {
        self.banks.iter().map(Resource::acquisitions).sum()
    }

    /// Cycles requests waited on busy banks, across all banks.
    pub fn stall_cycles(&self) -> Cycle {
        self.banks.iter().map(Resource::stall_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::rng::SmallRng;

    #[test]
    fn resource_serializes_back_to_back() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(0, 10), 0);
        assert_eq!(r.acquire(0, 10), 10); // queued behind the first
        assert_eq!(r.acquire(5, 10), 20);
        assert_eq!(r.free_at(), 30);
        assert_eq!(r.occupied_cycles(), 30);
    }

    #[test]
    fn resource_idles_when_gap() {
        let mut r = Resource::new();
        r.acquire(0, 5);
        assert!(r.idle_at(5));
        assert!(!r.idle_at(4));
        // Arriving after the resource freed starts immediately.
        assert_eq!(r.acquire(100, 5), 100);
    }

    #[test]
    fn banks_proceed_in_parallel() {
        let mut m = BankedResource::new(4);
        // Same cycle, different banks: all start at 0.
        for b in 0..4u64 {
            assert_eq!(m.acquire(b, 0, 40), 0);
        }
        // Fifth request conflicts with bank 0 and queues.
        assert_eq!(m.acquire(4, 0, 40), 40);
        assert_eq!(m.banks(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        BankedResource::new(0);
    }

    /// Bookings on one resource never overlap and starts are monotone
    /// (seeded randomized sweep).
    #[test]
    fn bookings_never_overlap() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut r = Resource::new();
            let mut now = 0;
            let mut prev_end = 0;
            for _ in 0..50 {
                now += rng.gen_range(0u64..100);
                let dur = rng.gen_range(1u64..20);
                let start = r.acquire(now, dur);
                assert!(start >= prev_end, "seed {seed}");
                assert!(start >= now, "seed {seed}");
                prev_end = start + dur;
            }
        }
    }

    /// A banked resource with one bank behaves exactly like a Resource.
    #[test]
    fn single_bank_equivalent_to_plain_resource() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xbab5);
            let mut banked = BankedResource::new(1);
            let mut plain = Resource::new();
            let mut now = 0;
            for _ in 0..40 {
                now += rng.gen_range(0u64..50);
                let dur = rng.gen_range(1u64..10);
                let key = rng.gen_range(0u64..1000);
                assert_eq!(banked.acquire(key, now, dur), plain.acquire(now, dur), "seed {seed}");
            }
        }
    }
}
