//! # dresar-workloads
//!
//! Workload generators for the `dresar` simulators, reproducing the
//! paper's evaluation mix (§2, §5.1):
//!
//! * [`scientific`] — the five numerical kernels, implemented as *real*
//!   shared-memory computations whose every load/store to the shared arrays
//!   is recorded into per-processor reference streams (execution-driven in
//!   spirit, like the paper's RSIM runs):
//!   - Fast Fourier Transform ([`scientific::fft`]),
//!   - Successive Over-Relaxation ([`scientific::sor`]),
//!   - Transitive Closure ([`scientific::tc`]),
//!   - Floyd–Warshall all-pairs shortest paths ([`scientific::fwa`]),
//!   - Gaussian Elimination ([`scientific::gauss`]).
//! * [`commercial`] — synthetic TPC-C (OLTP) and TPC-D (DSS) memory-
//!   reference traces. The paper used proprietary IBM COMPASS traces; the
//!   generator is calibrated to the published characteristics instead (see
//!   DESIGN.md's substitution table): hot-block skew (Figure 2) and the
//!   38% / 62% dirty-read fractions (Figure 1).
//! * [`builder`] — the stream-recording substrate shared by all kernels.
//! * [`scale`] — paper-scale vs reduced vs test-size presets.

#![warn(missing_docs)]

pub mod builder;
pub mod commercial;
pub mod scale;
pub mod scientific;

pub use builder::StreamRecorder;
pub use scale::Scale;

use dresar_types::Workload;

/// Generates the paper's five scientific workloads at the given scale.
pub fn scientific_suite(processors: usize, scale: Scale) -> Vec<Workload> {
    vec![
        scientific::fft(processors, scale.fft_points()),
        scientific::tc(processors, scale.matrix_n()),
        scientific::sor(processors, scale.grid_n(), scale.sor_iters()),
        scientific::fwa(processors, scale.matrix_n()),
        scientific::gauss(processors, scale.matrix_n()),
    ]
}

/// Generates the two commercial workloads at the given scale.
pub fn commercial_suite(processors: usize, scale: Scale, seed: u64) -> Vec<Workload> {
    vec![
        commercial::tpcc(processors, scale.commercial_refs(), seed),
        commercial::tpcd(processors, scale.commercial_refs(), seed ^ 0x9e37_79b9),
    ]
}
