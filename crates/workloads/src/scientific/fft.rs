//! Parallel 1-D radix-2 FFT (Stockham autosort formulation).
//!
//! The Stockham variant ping-pongs between two arrays each stage, so every
//! processor writes only the output elements it owns while reading pairs of
//! input elements that scatter across the whole previous-stage array. At
//! the later (large-stride) stages those reads land in partitions freshly
//! written by *other* processors — exactly the communication-intensive
//! dirty-read behaviour the paper measures for FFT (60–70% of read misses
//! are cache-to-cache, Figure 1).

use crate::builder::{partition, StreamRecorder};
use dresar_types::{Addr, Workload};
use std::f64::consts::PI;

const ELEM: u64 = 16; // one complex number: two f64s
const BASE_A: Addr = 0x1000_0000;
const BASE_B: Addr = 0x2000_0000;
const SYNC: Addr = 0x2800_0000;

/// Complex number as a pair (re, im).
type C = (f64, f64);

#[inline]
fn c_add(a: C, b: C) -> C {
    (a.0 + b.0, a.1 + b.1)
}
#[inline]
fn c_sub(a: C, b: C) -> C {
    (a.0 - b.0, a.1 - b.1)
}
#[inline]
fn c_mul(a: C, b: C) -> C {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// Runs the parallel FFT over a deterministic pseudo-input, returning the
/// recorded workload and the transform result (for verification).
pub fn fft_with_result(processors: usize, n: usize) -> (Workload, Vec<C>) {
    assert!(n.is_power_of_two() && n >= 2, "FFT size must be a power of two >= 2");
    assert!(processors >= 1);
    let mut rec = StreamRecorder::new(processors, 5);

    // Deterministic input signal; each processor initializes (writes) its
    // own partition — cold, conflict-free stores.
    let mut a: Vec<C> = (0..n)
        .map(|i| {
            let x = i as f64;
            ((x * 0.3).sin() + 0.25 * (x * 1.7).cos(), 0.0)
        })
        .collect();
    let mut b: Vec<C> = vec![(0.0, 0.0); n];
    for p in 0..processors {
        let (s, e) = partition(n, processors, p);
        for i in s..e {
            rec.write(p, BASE_A + i as u64 * ELEM);
        }
    }
    rec.sync_barrier(SYNC);

    // Stockham stages: x -> y, halving the butterfly group size `half`
    // and doubling the stride `s` each stage.
    let mut half = n / 2;
    let mut stride = 1usize;
    let mut src_is_a = true;
    while half >= 1 {
        let (src_base, dst_base) = if src_is_a { (BASE_A, BASE_B) } else { (BASE_B, BASE_A) };
        let theta0 = 2.0 * PI / (2.0 * half as f64);
        // Snapshot source (kernels run phase-parallel; sequential
        // generation is safe because writes only touch the destination).
        for p in 0..processors {
            let (out_s, out_e) = partition(n, processors, p);
            for k in out_s..out_e {
                // Decompose output index k = q + stride*(2p' + r).
                let q = k % stride;
                let rem = k / stride;
                let r = rem & 1;
                let pp = rem >> 1;
                let i0 = q + stride * pp;
                let i1 = q + stride * (pp + half);
                rec.read(p, src_base + i0 as u64 * ELEM);
                rec.read(p, src_base + i1 as u64 * ELEM);
                let (x, y) = if src_is_a { (&a, &mut b) } else { (&b, &mut a) };
                let c0 = x[i0];
                let c1 = x[i1];
                let w = {
                    let ang = -theta0 * pp as f64;
                    (ang.cos(), ang.sin())
                };
                y[k] = if r == 0 { c_add(c0, c1) } else { c_mul(c_sub(c0, c1), w) };
                rec.write(p, dst_base + k as u64 * ELEM);
            }
        }
        rec.sync_barrier(SYNC);
        half /= 2;
        stride *= 2;
        src_is_a = !src_is_a;
    }

    let result = if src_is_a { a } else { b };
    (rec.into_workload("fft"), result)
}

/// The FFT workload alone.
pub fn fft(processors: usize, n: usize) -> Workload {
    fft_with_result(processors, n).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[C]) -> Vec<C> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for (j, &x) in input.iter().enumerate() {
                    let ang = -2.0 * PI * (k * j) as f64 / n as f64;
                    acc = c_add(acc, c_mul(x, (ang.cos(), ang.sin())));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let n = 64;
        let input: Vec<C> = (0..n)
            .map(|i| {
                let x = i as f64;
                ((x * 0.3).sin() + 0.25 * (x * 1.7).cos(), 0.0)
            })
            .collect();
        let (_, got) = fft_with_result(4, n);
        let want = naive_dft(&input);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.0 - w.0).abs() < 1e-6 && (g.1 - w.1).abs() < 1e-6, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn stream_shape() {
        let (w, _) = fft_with_result(4, 256);
        assert!(w.validate().is_ok());
        // init writes + log2(256)=8 stages of 3 refs per element, plus
        // 9 sync barriers of (2 per proc + 1 flag write + P-1 flag reads).
        let barrier_refs = 9 * (2 * 4 + 1 + 3);
        assert_eq!(w.total_refs(), 256 + 8 * 256 * 3 + barrier_refs);
        // One barrier after init + one per stage.
        let barriers = w.streams[0]
            .iter()
            .filter(|i| matches!(i, dresar_types::StreamItem::Barrier(_)))
            .count();
        assert_eq!(barriers, 9);
    }

    #[test]
    fn works_with_single_processor() {
        let (w, r) = fft_with_result(1, 16);
        assert!(w.validate().is_ok());
        assert_eq!(r.len(), 16);
    }

    #[test]
    fn late_stages_read_across_partitions() {
        // With 4 processors and n=256, the last stage's reads must touch
        // addresses outside the reader's own quarter.
        let (w, _) = fft_with_result(4, 256);
        let own = |p: usize, addr: u64| {
            let i = ((addr & 0x0fff_ffff) / ELEM) as usize;
            let (s, e) = partition(256, 4, p);
            (s..e).contains(&i)
        };
        let mut cross_reads = 0usize;
        for (p, stream) in w.streams.iter().enumerate() {
            for item in stream {
                if let dresar_types::StreamItem::Ref(r) = item {
                    if matches!(r.kind, dresar_types::RefKind::Read) && !own(p, r.addr) {
                        cross_reads += 1;
                    }
                }
            }
        }
        assert!(cross_reads > 500, "expected heavy cross-partition reads, got {cross_reads}");
    }
}
