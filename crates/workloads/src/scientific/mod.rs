//! The five scientific kernels of the paper's evaluation (§2, Table 2),
//! implemented as real computations that record their shared-memory
//! reference streams.
//!
//! Each kernel both *computes its actual result* (unit tests verify the
//! mathematics against independent implementations) and records every
//! load/store to the simulated shared arrays, phase-aligned with barriers —
//! the execution-driven substitution for the paper's RSIM runs described in
//! DESIGN.md.
//!
//! Sharing patterns (and hence the Figure 1 clean/dirty mix) by design:
//!
//! | Kernel | Pattern | Dirty-read behaviour |
//! |--------|---------|----------------------|
//! | FFT    | Stockham stages, all-to-all reads of the other buffer | most remote reads hit freshly written data → CtoC-dominated |
//! | SOR    | red-black grid, halo rows | partition-interior hits cache; misses are mostly neighbour halos → CtoC-dominated |
//! | TC     | Warshall pivot-row broadcast | first reader of a modified pivot row is dirty, the rest clean → moderate |
//! | FWA    | Floyd–Warshall pivot-row broadcast | as TC |
//! | GAUSS  | pivot row normalize + broadcast | as TC, shrinking active set |
//!
//! Two FFT formulations are provided: the per-stage global exchange
//! ([`fft`], used by the evaluation suite) and the transpose-based
//! six-step ([`fft_six_step`], the SPLASH-2 communication structure).
//! Both compute identical transforms (cross-checked in tests); they differ
//! in ownership-reuse distance, which the FFT ablation in
//! `examples/`/`dresar-bench` exposes.

mod fft;
mod fft6;
mod fwa;
mod gauss;
mod sor;
mod tc;

pub use fft::{fft, fft_with_result};
pub use fft6::{fft_six_step, fft_six_step_with_result};
pub use fwa::{fwa, fwa_with_result};
pub use gauss::{gauss, gauss_with_result};
pub use sor::{sor, sor_with_result};
pub use tc::{tc, tc_with_result};
