//! Six-step (Bailey / SPLASH-2-style) parallel FFT.
//!
//! For `n = r*c` the transform factors into: transpose, `r`-point FFTs
//! along rows, twiddle scaling, transpose, `c`-point FFTs along rows, and
//! a final transpose. The row FFTs are entirely *local* to the processor
//! owning the rows (and cache-resident), so all communication concentrates
//! in the three transposes — each an all-to-all where every processor
//! reads blocks *freshly written* by every other processor. That is the
//! communication structure of the SPLASH FFT the paper ran on RSIM: short
//! ownership-reuse distances that switch directories capture well, unlike
//! the per-stage global exchange of the plain Stockham formulation in
//! [`super::fft`]. Both are exported; the evaluation suite uses this one.
//!
//! Row FFT references are recorded as a streaming read+write of the row
//! with the butterfly arithmetic charged as per-element work — the
//! butterflies themselves run register/L1-resident on a real machine.

use crate::builder::{partition, StreamRecorder};
use dresar_types::{Addr, Workload};
use std::f64::consts::PI;

const ELEM: u64 = 16;
const BASE_A: Addr = 0x1000_0000;
const BASE_B: Addr = 0x1800_0000;
const SYNC: Addr = 0x2C00_0000;

type C = (f64, f64);

#[inline]
fn c_mul(a: C, b: C) -> C {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// Sequential radix-2 Stockham FFT on a scratch buffer (used for the local
/// row transforms; verified against the naive DFT in tests).
fn stockham_seq(data: &mut [C]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let mut scratch = vec![(0.0, 0.0); n];
    let (mut half, mut stride) = (n / 2, 1usize);
    let mut in_data = true; // current source
    while half >= 1 {
        let theta0 = PI / half as f64;
        {
            let (src, dst): (&[C], &mut [C]) =
                if in_data { (data, &mut scratch) } else { (&scratch, data) };
            for (k, d) in dst.iter_mut().enumerate() {
                let q = k % stride;
                let rem = k / stride;
                let r = rem & 1;
                let p = rem >> 1;
                let c0 = src[q + stride * p];
                let c1 = src[q + stride * (p + half)];
                *d = if r == 0 {
                    (c0.0 + c1.0, c0.1 + c1.1)
                } else {
                    let ang = -theta0 * p as f64;
                    c_mul((c0.0 - c1.0, c0.1 - c1.1), (ang.cos(), ang.sin()))
                };
            }
        }
        half /= 2;
        stride *= 2;
        in_data = !in_data;
    }
    if !in_data {
        data.copy_from_slice(&scratch);
    }
}

/// Address of matrix element (row, col) in a row-major `rows x cols` view.
#[inline]
fn maddr(base: Addr, cols: usize, row: usize, col: usize) -> Addr {
    base + ((row * cols + col) as u64) * ELEM
}

/// Runs the six-step FFT over the same deterministic input as
/// [`super::fft`], returning the workload and the transform result.
///
/// `n` must be a power of four (so the matrix view is square).
pub fn fft_six_step_with_result(processors: usize, n: usize) -> (Workload, Vec<C>) {
    assert!(
        n >= 16 && n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2),
        "n must be a power of 4"
    );
    let r = 1usize << (n.trailing_zeros() / 2); // rows = cols = sqrt(n)
    let c = r;
    let mut rec = StreamRecorder::new(processors, 4);
    let fft_work = 5 * r.trailing_zeros().max(1);

    // The actual data: `a` holds the natural-order array, `b` is scratch.
    let mut a: Vec<C> = (0..n)
        .map(|i| {
            let x = i as f64;
            ((x * 0.3).sin() + 0.25 * (x * 1.7).cos(), 0.0)
        })
        .collect();
    let mut b: Vec<C> = vec![(0.0, 0.0); n];

    // Initialization: each processor writes its rows of the r x c view.
    for p in 0..processors {
        let (rs, re) = partition(r, processors, p);
        for i in rs..re {
            for j in 0..c {
                rec.write(p, maddr(BASE_A, c, i, j));
            }
        }
    }
    rec.sync_barrier(SYNC);

    // A transpose helper: dst[i][j] = src[j][i]; each processor writes its
    // own destination rows, reading columns scattered over every source
    // row owner (the all-to-all).
    let transpose = |rec: &mut StreamRecorder,
                     src_base: Addr,
                     dst_base: Addr,
                     src: &Vec<C>,
                     dst: &mut Vec<C>,
                     dim: usize| {
        for p in 0..processors {
            let (rs, re) = partition(dim, processors, p);
            for i in rs..re {
                for j in 0..dim {
                    rec.read(p, maddr(src_base, dim, j, i));
                    dst[i * dim + j] = src[j * dim + i];
                    rec.write(p, maddr(dst_base, dim, i, j));
                }
            }
        }
        rec.sync_barrier(SYNC);
    };

    // Step 1: transpose A -> B.
    transpose(&mut rec, BASE_A, BASE_B, &a, &mut b, r);

    // Step 2: r-point FFTs on the rows of B (local).
    for p in 0..processors {
        let (rs, re) = partition(r, processors, p);
        for i in rs..re {
            for j in 0..c {
                rec.read_w(p, maddr(BASE_B, c, i, j), fft_work);
            }
            let mut row: Vec<C> = b[i * c..(i + 1) * c].to_vec();
            stockham_seq(&mut row);
            b[i * c..(i + 1) * c].copy_from_slice(&row);
            for j in 0..c {
                rec.write(p, maddr(BASE_B, c, i, j));
            }
        }
    }
    rec.sync_barrier(SYNC);

    // Step 3: twiddle scaling B[j2][k1] *= W^(j2*k1) (local).
    for p in 0..processors {
        let (rs, re) = partition(r, processors, p);
        for j2 in rs..re {
            for k1 in 0..c {
                rec.read(p, maddr(BASE_B, c, j2, k1));
                let ang = -2.0 * PI * (j2 * k1) as f64 / n as f64;
                b[j2 * c + k1] = c_mul(b[j2 * c + k1], (ang.cos(), ang.sin()));
                rec.write(p, maddr(BASE_B, c, j2, k1));
            }
        }
    }
    rec.sync_barrier(SYNC);

    // Step 4: transpose B -> A.
    transpose(&mut rec, BASE_B, BASE_A, &b, &mut a, r);

    // Step 5: c-point FFTs on the rows of A (local).
    for p in 0..processors {
        let (rs, re) = partition(r, processors, p);
        for i in rs..re {
            for j in 0..c {
                rec.read_w(p, maddr(BASE_A, c, i, j), fft_work);
            }
            let mut row: Vec<C> = a[i * c..(i + 1) * c].to_vec();
            stockham_seq(&mut row);
            a[i * c..(i + 1) * c].copy_from_slice(&row);
            for j in 0..c {
                rec.write(p, maddr(BASE_A, c, i, j));
            }
        }
    }
    rec.sync_barrier(SYNC);

    // Step 6: transpose A -> B; B now holds X in natural order
    // (X[k1 + k2*r] = A[k1][k2]).
    transpose(&mut rec, BASE_A, BASE_B, &a, &mut b, r);

    (rec.into_workload("fft6"), b)
}

/// The six-step FFT workload alone.
pub fn fft_six_step(processors: usize, n: usize) -> Workload {
    fft_six_step_with_result(processors, n).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[C]) -> Vec<C> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = (0.0, 0.0);
                for (j, &x) in input.iter().enumerate() {
                    let ang = -2.0 * PI * (k * j) as f64 / n as f64;
                    acc = (
                        acc.0 + x.0 * ang.cos() - x.1 * ang.sin(),
                        acc.1 + x.0 * ang.sin() + x.1 * ang.cos(),
                    );
                }
                acc
            })
            .collect()
    }

    fn input(n: usize) -> Vec<C> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                ((x * 0.3).sin() + 0.25 * (x * 1.7).cos(), 0.0)
            })
            .collect()
    }

    #[test]
    fn stockham_seq_matches_naive() {
        let mut d = input(32);
        let want = naive_dft(&d);
        stockham_seq(&mut d);
        for (g, w) in d.iter().zip(&want) {
            assert!((g.0 - w.0).abs() < 1e-8 && (g.1 - w.1).abs() < 1e-8);
        }
    }

    #[test]
    fn six_step_matches_naive_dft() {
        let n = 64;
        let (_, got) = fft_six_step_with_result(4, n);
        let want = naive_dft(&input(n));
        for (k, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g.0 - w.0).abs() < 1e-6 && (g.1 - w.1).abs() < 1e-6, "k={k}: {g:?} vs {w:?}");
        }
    }

    #[test]
    fn six_step_matches_stockham_parallel() {
        let n = 256;
        let (_, six) = fft_six_step_with_result(4, n);
        let (_, stock) = super::super::fft::fft_with_result(4, n);
        for (g, w) in six.iter().zip(&stock) {
            assert!((g.0 - w.0).abs() < 1e-6 && (g.1 - w.1).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_non_power_of_four() {
        let r = std::panic::catch_unwind(|| fft_six_step(4, 128));
        assert!(r.is_err());
    }

    #[test]
    fn stream_is_valid_and_compact() {
        let (w, _) = fft_six_step_with_result(4, 256);
        assert!(w.validate().is_ok());
        // ~12n refs (init n + 3 transposes x 2n + 2 row-FFT passes x 2n +
        // twiddle 2n) plus barrier traffic: far leaner than the per-stage
        // Stockham stream.
        assert!(w.total_refs() < 15 * 256, "got {}", w.total_refs());
    }

    #[test]
    fn transposes_read_across_partitions() {
        let (w, _) = fft_six_step_with_result(4, 256);
        // With square 16x16 views and 4 procs, each transpose's reads hit
        // all row owners.
        let mut cross = 0usize;
        for (p, stream) in w.streams.iter().enumerate() {
            for item in stream {
                if let dresar_types::StreamItem::Ref(r) = item {
                    if matches!(r.kind, dresar_types::RefKind::Read)
                        && r.addr >= BASE_A
                        && r.addr < SYNC
                    {
                        let idx = ((r.addr & 0x07FF_FFFF) / ELEM) as usize;
                        let row = idx / 16;
                        let (rs, re) = partition(16, 4, p);
                        if !(rs..re).contains(&row) {
                            cross += 1;
                        }
                    }
                }
            }
        }
        assert!(cross > 100, "transposes must read foreign rows, got {cross}");
    }
}
