//! Transitive Closure by Warshall's algorithm.
//!
//! Boolean adjacency matrix, one byte per entry; rows are cyclically
//! assigned to processors. Iteration `k` broadcasts row `k` (owned — and
//! recently rewritten — by processor `k mod P`) to every other processor:
//! the first reader of each modified pivot-row block takes a dirty
//! cache-to-cache transfer, subsequent readers find it clean after the
//! copyback, giving the moderate (15–30%) dirty fraction the paper reports
//! for TC.

use crate::builder::StreamRecorder;
use dresar_types::{Addr, Workload};

const BASE: Addr = 0x6000_0000;
const SYNC: Addr = 0x6800_0000;

#[inline]
fn addr(n: usize, i: usize, j: usize) -> Addr {
    BASE + (i * n + j) as u64
}

/// Deterministic sparse digraph: edge (i, j) present iff a hash condition
/// holds. Density tuned so the closure grows without saturating instantly.
fn seed_graph(n: usize) -> Vec<bool> {
    let mut adj = vec![false; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let h = (i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
                adj[i * n + j] = h.is_multiple_of(37);
            }
        }
    }
    // A ring so the closure is eventually rich.
    for i in 0..n {
        adj[i * n + (i + 1) % n] = true;
    }
    adj
}

/// Runs parallel Warshall transitive closure, returning the workload and
/// the closure matrix for verification.
pub fn tc_with_result(processors: usize, n: usize) -> (Workload, Vec<bool>) {
    assert!(n >= 2 && processors >= 1);
    let mut rec = StreamRecorder::new(processors, 3);
    let mut adj = seed_graph(n);

    // Each processor writes its (cyclic) rows during initialization.
    for i in 0..n {
        let p = i % processors;
        for j in 0..n {
            rec.write(p, addr(n, i, j));
        }
    }
    rec.sync_barrier(SYNC);

    for k in 0..n {
        for i in 0..n {
            let p = i % processors;
            rec.read(p, addr(n, i, k));
            if adj[i * n + k] {
                for j in 0..n {
                    rec.read(p, addr(n, k, j));
                    rec.read(p, addr(n, i, j));
                    if adj[k * n + j] && !adj[i * n + j] {
                        adj[i * n + j] = true;
                        rec.write(p, addr(n, i, j));
                    }
                }
            }
        }
        rec.sync_barrier(SYNC);
    }

    (rec.into_workload("tc"), adj)
}

/// The TC workload alone.
pub fn tc(processors: usize, n: usize) -> Workload {
    tc_with_result(processors, n).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference closure by BFS from every vertex.
    fn bfs_closure(n: usize, adj: &[bool]) -> Vec<bool> {
        let mut out = vec![false; n * n];
        for s in 0..n {
            let mut stack = vec![s];
            let mut seen = vec![false; n];
            while let Some(u) = stack.pop() {
                for v in 0..n {
                    if adj[u * n + v] && !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            for v in 0..n {
                out[s * n + v] = seen[v];
            }
        }
        out
    }

    #[test]
    fn closure_matches_bfs() {
        let n = 24;
        let (_, got) = tc_with_result(4, n);
        let want = bfs_closure(n, &seed_graph(n));
        assert_eq!(got, want);
    }

    #[test]
    fn result_independent_of_processor_count() {
        let (_, a) = tc_with_result(1, 20);
        let (_, b) = tc_with_result(7, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_is_valid_and_barriered_per_k() {
        let (w, _) = tc_with_result(4, 16);
        assert!(w.validate().is_ok());
        let barriers = w.streams[0]
            .iter()
            .filter(|i| matches!(i, dresar_types::StreamItem::Barrier(_)))
            .count();
        assert_eq!(barriers, 1 + 16);
    }

    #[test]
    fn pivot_rows_are_read_by_non_owners() {
        let n = 16;
        let procs = 4;
        let (w, _) = tc_with_result(procs, n);
        let mut foreign_pivot_reads = 0usize;
        for (p, s) in w.streams.iter().enumerate() {
            for item in s {
                if let dresar_types::StreamItem::Ref(r) = item {
                    if matches!(r.kind, dresar_types::RefKind::Read) {
                        let idx = (r.addr - BASE) as usize;
                        let row = idx / n;
                        if row % procs != p {
                            foreign_pivot_reads += 1;
                        }
                    }
                }
            }
        }
        assert!(foreign_pivot_reads > 0);
    }
}
