//! Gaussian Elimination (LU-style forward elimination + back substitution)
//! on an augmented system `A x = b`.
//!
//! Rows are cyclically assigned. At step `k` the owner normalizes pivot row
//! `k` (rewriting it), then every processor eliminates its rows below `k`
//! using that freshly written pivot row — the classic shrinking-broadcast
//! pattern. Back substitution serializes but is short.

use crate::builder::StreamRecorder;
use dresar_types::{Addr, Workload};

const ELEM: u64 = 8;
const BASE: Addr = 0x8000_0000;
const SYNC: Addr = 0x8800_0000;

#[inline]
fn addr(ncols: usize, i: usize, j: usize) -> Addr {
    BASE + ((i * ncols + j) as u64) * ELEM
}

/// Deterministic well-conditioned system: diagonally dominant matrix.
fn seed_system(n: usize) -> (Vec<f64>, Vec<f64>) {
    let ncols = n + 1;
    let mut a = vec![0.0; n * ncols];
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((j as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
            let v = ((h % 19) as f64 - 9.0) / 10.0;
            a[i * ncols + j] = v;
            row_sum += v.abs();
        }
        a[i * ncols + i] = row_sum + 1.0; // strict diagonal dominance
        let b: f64 = (0..n).map(|j| a[i * ncols + j] * x_true[j]).sum();
        a[i * ncols + n] = b;
    }
    (a, x_true)
}

/// Runs parallel Gaussian elimination, returning the workload and the
/// solution vector for verification.
pub fn gauss_with_result(processors: usize, n: usize) -> (Workload, Vec<f64>) {
    assert!(n >= 2 && processors >= 1);
    let ncols = n + 1;
    let mut rec = StreamRecorder::new(processors, 4);
    let (mut a, _) = seed_system(n);

    for i in 0..n {
        let p = i % processors;
        for j in 0..ncols {
            rec.write(p, addr(ncols, i, j));
        }
    }
    rec.sync_barrier(SYNC);

    // Forward elimination.
    for k in 0..n {
        let owner = k % processors;
        // Owner normalizes the pivot row.
        rec.read(owner, addr(ncols, k, k));
        let pivot = a[k * ncols + k];
        for j in k..ncols {
            rec.read(owner, addr(ncols, k, j));
            a[k * ncols + j] /= pivot;
            rec.write(owner, addr(ncols, k, j));
        }
        rec.sync_barrier(SYNC);
        // All processors eliminate their rows below k.
        for i in k + 1..n {
            let p = i % processors;
            rec.read(p, addr(ncols, i, k));
            let factor = a[i * ncols + k];
            if factor == 0.0 {
                continue;
            }
            for j in k..ncols {
                rec.read(p, addr(ncols, k, j));
                rec.read(p, addr(ncols, i, j));
                a[i * ncols + j] -= factor * a[k * ncols + j];
                rec.write(p, addr(ncols, i, j));
            }
        }
        rec.sync_barrier(SYNC);
    }

    // Back substitution (each row's owner computes its x, reading the
    // already-solved suffix).
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let p = k % processors;
        let mut v = a[k * ncols + n];
        rec.read(p, addr(ncols, k, n));
        for j in k + 1..n {
            rec.read(p, addr(ncols, k, j));
            v -= a[k * ncols + j] * x[j];
        }
        x[k] = v; // pivot normalized to 1
        rec.barrier();
    }

    (rec.into_workload("gauss"), x)
}

/// The GAUSS workload alone.
pub fn gauss(processors: usize, n: usize) -> Workload {
    gauss_with_result(processors, n).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_the_system() {
        let n = 24;
        let (_, x) = gauss_with_result(4, n);
        let (_, want) = seed_system(n);
        for (g, w) in x.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
    }

    #[test]
    fn result_independent_of_processor_count() {
        let (_, a) = gauss_with_result(1, 16);
        let (_, b) = gauss_with_result(6, 16);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_is_valid() {
        let (w, _) = gauss_with_result(4, 16);
        assert!(w.validate().is_ok());
        assert!(w.total_refs() > 16 * 17);
    }
}
