//! Floyd–Warshall all-pairs shortest paths.
//!
//! Distance matrix of f64, cyclic row ownership. Like TC, iteration `k`
//! broadcasts pivot row `k`; unlike TC every (i, j) pair is visited every
//! iteration, making the reference stream denser and the pivot-row reuse
//! higher.

use crate::builder::StreamRecorder;
use dresar_types::{Addr, Workload};

const ELEM: u64 = 8;
const BASE: Addr = 0x7000_0000;
const SYNC: Addr = 0x7800_0000;
const INF: f64 = 1.0e18;

#[inline]
fn addr(n: usize, i: usize, j: usize) -> Addr {
    BASE + ((i * n + j) as u64) * ELEM
}

/// Deterministic weighted digraph.
fn seed_weights(n: usize) -> Vec<f64> {
    let mut d = vec![INF; n * n];
    for i in 0..n {
        d[i * n + i] = 0.0;
        for j in 0..n {
            if i != j {
                let h = (i as u64)
                    .wrapping_mul(0x2545_f491_4f6c_dd1d)
                    .wrapping_add((j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                if h % 11 < 3 {
                    d[i * n + j] = 1.0 + (h % 97) as f64;
                }
            }
        }
    }
    d
}

/// Runs parallel Floyd–Warshall, returning the workload and the distance
/// matrix for verification.
pub fn fwa_with_result(processors: usize, n: usize) -> (Workload, Vec<f64>) {
    assert!(n >= 2 && processors >= 1);
    let mut rec = StreamRecorder::new(processors, 4);
    let mut dist = seed_weights(n);

    for i in 0..n {
        let p = i % processors;
        for j in 0..n {
            rec.write(p, addr(n, i, j));
        }
    }
    rec.sync_barrier(SYNC);

    for k in 0..n {
        for i in 0..n {
            let p = i % processors;
            rec.read(p, addr(n, i, k));
            let dik = dist[i * n + k];
            if dik >= INF {
                continue; // no path through k from i; row skipped
            }
            for j in 0..n {
                rec.read(p, addr(n, k, j));
                rec.read(p, addr(n, i, j));
                let cand = dik + dist[k * n + j];
                if cand < dist[i * n + j] {
                    dist[i * n + j] = cand;
                    rec.write(p, addr(n, i, j));
                }
            }
        }
        rec.sync_barrier(SYNC);
    }

    (rec.into_workload("fwa"), dist)
}

/// The FWA workload alone.
pub fn fwa(processors: usize, n: usize) -> Workload {
    fwa_with_result(processors, n).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dijkstra from each source over the same seed graph.
    fn dijkstra_all(n: usize, w: &[f64]) -> Vec<f64> {
        let mut out = vec![INF; n * n];
        for s in 0..n {
            let mut dist = vec![INF; n];
            let mut done = vec![false; n];
            dist[s] = 0.0;
            for _ in 0..n {
                let mut u = usize::MAX;
                let mut best = INF;
                for v in 0..n {
                    if !done[v] && dist[v] < best {
                        best = dist[v];
                        u = v;
                    }
                }
                if u == usize::MAX {
                    break;
                }
                done[u] = true;
                for v in 0..n {
                    let e = w[u * n + v];
                    if e < INF && dist[u] + e < dist[v] {
                        dist[v] = dist[u] + e;
                    }
                }
            }
            out[s * n..(s + 1) * n].copy_from_slice(&dist);
        }
        out
    }

    #[test]
    fn matches_dijkstra() {
        let n = 20;
        let (_, got) = fwa_with_result(4, n);
        let want = dijkstra_all(n, &seed_weights(n));
        for (g, w) in got.iter().zip(&want) {
            if *w >= INF {
                assert!(*g >= INF);
            } else {
                assert!((g - w).abs() < 1e-9, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn result_independent_of_processor_count() {
        let (_, a) = fwa_with_result(1, 18);
        let (_, b) = fwa_with_result(5, 18);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_is_valid() {
        let (w, _) = fwa_with_result(4, 16);
        assert!(w.validate().is_ok());
        assert!(w.total_refs() > 16 * 16);
    }
}
