//! Red-black Successive Over-Relaxation on a 2-D grid.
//!
//! The interior rows are block-partitioned; each half-sweep updates one
//! color in place, reading the four neighbours of the opposite color.
//! Rows interior to a partition stay cached by their owner, so the misses
//! that remain after warm-up are dominated by reads of the *halo* rows the
//! neighbouring processors keep re-writing — the producer-consumer pattern
//! behind SOR's high cache-to-cache fraction in Figure 1.

use crate::builder::{partition, StreamRecorder};
use dresar_types::{Addr, Workload};

// Grid elements are modeled as 4-byte floats: with the paper's 512x512
// grid each processor's partition then fits its 128 KB L2, so steady-state
// misses concentrate on the halo rows (the paper's CtoC-dominated SOR).
const ELEM: u64 = 4;
const BASE: Addr = 0x4000_0000;
const SYNC: Addr = 0x4800_0000;
const OMEGA: f64 = 1.5;

#[inline]
fn addr(n2: usize, i: usize, j: usize) -> Addr {
    BASE + ((i * n2 + j) as u64) * ELEM
}

/// Runs red-black SOR for `iters` full sweeps on an `n x n` interior grid
/// (with a fixed boundary ring), returning the workload and the final grid
/// (including boundary) for verification.
pub fn sor_with_result(processors: usize, n: usize, iters: usize) -> (Workload, Vec<f64>) {
    assert!(n >= 2 && processors >= 1);
    let n2 = n + 2;
    let mut rec = StreamRecorder::new(processors, 6);

    // Deterministic boundary/initial condition: hot left edge.
    let mut g = vec![0.0f64; n2 * n2];
    for i in 0..n2 {
        g[i * n2] = 100.0;
    }
    // Each processor initializes (writes) its own interior rows.
    for p in 0..processors {
        let (rs, re) = partition(n, processors, p);
        for i in rs + 1..re + 1 {
            for j in 1..=n {
                rec.write(p, addr(n2, i, j));
            }
        }
    }
    rec.sync_barrier(SYNC);

    for _ in 0..iters {
        for color in 0..2usize {
            for p in 0..processors {
                let (rs, re) = partition(n, processors, p);
                for i in rs + 1..re + 1 {
                    let j0 = 1 + ((i + color) % 2);
                    let mut j = j0;
                    while j <= n {
                        rec.read(p, addr(n2, i - 1, j));
                        rec.read(p, addr(n2, i + 1, j));
                        rec.read(p, addr(n2, i, j - 1));
                        rec.read(p, addr(n2, i, j + 1));
                        rec.read(p, addr(n2, i, j));
                        let stencil = (g[(i - 1) * n2 + j]
                            + g[(i + 1) * n2 + j]
                            + g[i * n2 + j - 1]
                            + g[i * n2 + j + 1])
                            / 4.0;
                        g[i * n2 + j] = (1.0 - OMEGA) * g[i * n2 + j] + OMEGA * stencil;
                        rec.write(p, addr(n2, i, j));
                        j += 2;
                    }
                }
            }
            rec.sync_barrier(SYNC);
        }
    }

    (rec.into_workload("sor"), g)
}

/// The SOR workload alone.
pub fn sor(processors: usize, n: usize, iters: usize) -> Workload {
    sor_with_result(processors, n, iters).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_independent_of_processor_count() {
        let (_, g1) = sor_with_result(1, 16, 3);
        let (_, g4) = sor_with_result(4, 16, 3);
        assert_eq!(g1, g4, "red-black ordering must make the result deterministic");
    }

    #[test]
    fn converges_toward_laplace_solution() {
        // With a 100-degree left edge and zero elsewhere, interior values
        // near the left edge must heat up monotonically with iterations.
        let (_, g_few) = sor_with_result(2, 16, 2);
        let (_, g_many) = sor_with_result(2, 16, 30);
        let n2 = 18;
        let probe = 8 * n2 + 2; // row 8, col 2 — near the hot edge
        assert!(g_many[probe] > g_few[probe]);
        assert!(g_many[probe] > 10.0, "got {}", g_many[probe]);
    }

    #[test]
    fn stream_shape() {
        let (w, _) = sor_with_result(4, 32, 2);
        assert!(w.validate().is_ok());
        // init: 32*32 writes; per full sweep: 32*32 cells x 6 refs; plus
        // 5 sync barriers of (2 per proc + 1 flag write + P-1 flag reads).
        let barrier_refs = 5 * (2 * 4 + 1 + 3);
        assert_eq!(w.total_refs(), 32 * 32 + 2 * 32 * 32 * 6 + barrier_refs);
        let barriers = w.streams[0]
            .iter()
            .filter(|i| matches!(i, dresar_types::StreamItem::Barrier(_)))
            .count();
        assert_eq!(barriers, 1 + 2 * 2);
    }

    #[test]
    fn halo_reads_cross_partitions() {
        let (w, _) = sor_with_result(4, 32, 1);
        let n2 = 34u64;
        // Processor 1 owns interior rows 9..=16 (partition of 32 over 4).
        let owns = |p: usize, row: u64| {
            let (rs, re) = partition(32, 4, p);
            (rs as u64 + 1..re as u64 + 1).contains(&row)
        };
        let mut cross = 0;
        for (p, s) in w.streams.iter().enumerate() {
            for item in s {
                if let dresar_types::StreamItem::Ref(r) = item {
                    if matches!(r.kind, dresar_types::RefKind::Read) {
                        let row = (r.addr - BASE) / ELEM / n2;
                        if (1..=32).contains(&row) && !owns(p, row) {
                            cross += 1;
                        }
                    }
                }
            }
        }
        assert!(cross > 0, "halo reads must cross partitions");
    }
}
