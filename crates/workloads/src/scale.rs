//! Workload size presets.

/// Input-size presets. `Paper` matches Table 2/Table 3; `Reduced` keeps the
//  same sharing structure at a size a single host core sweeps quickly;
/// `Tiny` is for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's Table 2 input sizes (FFT 16K points, SOR 512x512,
    /// TC/FWA/GE 128x128, 16M commercial references).
    Paper,
    /// Reduced sizes preserving the sharing patterns (default for the
    /// figure harness).
    Reduced,
    /// Very small sizes for unit/integration tests.
    Tiny,
}

impl Scale {
    /// FFT input points (power of two).
    pub fn fft_points(self) -> usize {
        match self {
            Scale::Paper => 16 * 1024,
            Scale::Reduced => 4 * 1024,
            Scale::Tiny => 256,
        }
    }

    /// Matrix dimension for TC / FWA / GAUSS.
    pub fn matrix_n(self) -> usize {
        match self {
            Scale::Paper => 128,
            Scale::Reduced => 64,
            Scale::Tiny => 16,
        }
    }

    /// SOR grid dimension.
    pub fn grid_n(self) -> usize {
        match self {
            Scale::Paper => 512,
            Scale::Reduced => 192,
            Scale::Tiny => 32,
        }
    }

    /// SOR iterations.
    pub fn sor_iters(self) -> usize {
        match self {
            Scale::Paper => 4,
            Scale::Reduced => 3,
            Scale::Tiny => 2,
        }
    }

    /// Commercial trace length (total references across processors).
    pub fn commercial_refs(self) -> usize {
        match self {
            Scale::Paper => 16_000_000,
            Scale::Reduced => 1_500_000,
            Scale::Tiny => 40_000,
        }
    }

    /// Parses from a CLI-ish string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" | "full" => Some(Scale::Paper),
            "reduced" | "default" => Some(Scale::Reduced),
            "tiny" | "test" => Some(Scale::Tiny),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_table2() {
        assert_eq!(Scale::Paper.fft_points(), 16384);
        assert_eq!(Scale::Paper.matrix_n(), 128);
        assert_eq!(Scale::Paper.grid_n(), 512);
        assert_eq!(Scale::Paper.commercial_refs(), 16_000_000);
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("reduced"), Some(Scale::Reduced));
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Paper.fft_points() > Scale::Reduced.fft_points());
        assert!(Scale::Reduced.fft_points() > Scale::Tiny.fft_points());
    }
}
