//! The stream-recording substrate the kernels run on.
//!
//! A [`StreamRecorder`] plays the role of the shared address space: kernels
//! perform their real computation on whatever Rust data they like, and call
//! [`StreamRecorder::read`]/[`StreamRecorder::write`] with the *simulated*
//! byte address of every shared-array element they touch. Barriers are
//! stamped into every processor's stream so the simulator can align phases.

use dresar_types::{Addr, StreamItem, Workload};

/// Records per-processor reference streams while a kernel executes.
#[derive(Debug)]
pub struct StreamRecorder {
    streams: Vec<Vec<StreamItem>>,
    next_barrier: u32,
    /// Default instruction-work attached to each reference.
    work: u32,
}

impl StreamRecorder {
    /// Creates a recorder for `processors` streams with `work` non-memory
    /// instructions charged per reference (converted to cycles by the
    /// simulated core's issue width).
    pub fn new(processors: usize, work: u32) -> Self {
        assert!(processors >= 1);
        StreamRecorder { streams: vec![Vec::new(); processors], next_barrier: 0, work }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.streams.len()
    }

    /// Records a load by processor `p` at simulated address `addr`.
    #[inline]
    pub fn read(&mut self, p: usize, addr: Addr) {
        self.streams[p].push(StreamItem::read(addr, self.work));
    }

    /// Records a store by processor `p` at simulated address `addr`.
    #[inline]
    pub fn write(&mut self, p: usize, addr: Addr) {
        self.streams[p].push(StreamItem::write(addr, self.work));
    }

    /// Records a load with explicit work.
    #[inline]
    pub fn read_w(&mut self, p: usize, addr: Addr, work: u32) {
        self.streams[p].push(StreamItem::read(addr, work));
    }

    /// Records a store with explicit work.
    #[inline]
    pub fn write_w(&mut self, p: usize, addr: Addr, work: u32) {
        self.streams[p].push(StreamItem::write(addr, work));
    }

    /// Stamps a global barrier into every stream.
    pub fn barrier(&mut self) {
        let id = self.next_barrier;
        self.next_barrier += 1;
        for s in &mut self.streams {
            s.push(StreamItem::Barrier(id));
        }
    }

    /// Stamps a barrier *with its memory traffic*: a sense-reversing
    /// barrier is shared-memory code, and on a real machine its arrival
    /// counter is migratory (every processor read-modify-writes it) and
    /// its release flag is written by the last arriver and read by
    /// everyone else — a substantial share of the dirty cache-to-cache
    /// transfers the paper measures for the pivot-broadcast kernels.
    ///
    /// `sync_base` is the address of the kernel's barrier data; two
    /// cache-block-aligned generations alternate (sense reversal).
    pub fn sync_barrier(&mut self, sync_base: Addr) {
        let procs = self.streams.len();
        let generation = (self.next_barrier % 2) as Addr;
        let counter = sync_base + generation * 256;
        let flag = counter + 64;
        let releaser = self.next_barrier as usize % procs;
        for p in 0..procs {
            // Arrive: atomically bump the counter.
            self.read_w(p, counter, 2);
            self.write_w(p, counter, 2);
        }
        // The last arriver flips the release flag...
        self.write_w(releaser, flag, 2);
        self.barrier();
        // ...and every spinning processor reads the fresh flag value.
        for p in 0..procs {
            if p != releaser {
                self.read_w(p, flag, 2);
            }
        }
    }

    /// Finishes recording.
    pub fn into_workload(self, name: impl Into<String>) -> Workload {
        let w = Workload { name: name.into(), streams: self.streams };
        debug_assert!(w.validate().is_ok());
        w
    }
}

/// Block-contiguous partition of `n` items over `procs` processors:
/// processor `p` owns `[start, end)`.
pub fn partition(n: usize, procs: usize, p: usize) -> (usize, usize) {
    let base = n / procs;
    let extra = n % procs;
    let start = p * base + p.min(extra);
    let len = base + usize::from(p < extra);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_refs_and_barriers() {
        let mut r = StreamRecorder::new(2, 3);
        r.read(0, 100);
        r.barrier();
        r.write(1, 200);
        let w = r.into_workload("t");
        assert!(w.validate().is_ok());
        assert_eq!(w.total_refs(), 2);
        assert_eq!(w.streams[0].len(), 2); // read + barrier
        assert_eq!(w.streams[1].len(), 2); // barrier + write
    }

    #[test]
    fn partition_covers_everything_disjointly() {
        for n in [1usize, 7, 16, 100, 129] {
            for procs in [1usize, 2, 3, 16] {
                let mut covered = vec![false; n];
                for p in 0..procs {
                    let (s, e) = partition(n, procs, p);
                    for c in covered.iter_mut().take(e).skip(s) {
                        assert!(!*c, "overlap in partition({n}, {procs}, {p})");
                        *c = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} procs={procs}");
            }
        }
    }

    #[test]
    fn partition_is_balanced() {
        for p in 0..16 {
            let (s, e) = partition(128, 16, p);
            assert_eq!(e - s, 8);
        }
        // Remainders spread over the first processors.
        let sizes: Vec<usize> = (0..3)
            .map(|p| {
                let (s, e) = partition(10, 3, p);
                e - s
            })
            .collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }
}
