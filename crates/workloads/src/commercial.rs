//! Synthetic commercial workloads (TPC-C / TPC-D substitutes).
//!
//! The paper drove its trace simulator with proprietary IBM COMPASS traces
//! of TPC-C (DB2, 1 GB) and TPC-D. Those traces are not available, so this
//! module synthesizes reference streams calibrated to the *published*
//! characteristics the switch-directory result depends on:
//!
//! * **Footprint & skew** (Figure 2): a ~130K-block footprint at 16M
//!   references, with a log-uniform popularity distribution over the
//!   "communication intensive" blocks so that ~10% of blocks attract the
//!   bulk of the cache-to-cache transfers.
//! * **Dirty-read mix** (Figure 1): TPC-C ≈ 38% of read misses serviced
//!   cache-to-cache, TPC-D ≈ 62%. Dirty reads are produced by two
//!   mechanisms: *migratory* blocks (read-modify-write by one processor at
//!   a time — OLTP row/index updates) and *exchange* blocks (written by one
//!   processor, scanned by a neighbour — DSS temp partitions).
//!
//! The access-class mix per workload is the tunable surface; the presets
//! [`tpcc`] and [`tpcd`] encode mixes that land in the paper's bands on the
//! Table 3 trace simulator (asserted by `dresar-trace-sim`'s tests).

use crate::builder::StreamRecorder;
use dresar_types::rng::SmallRng;
use dresar_types::{Addr, Workload};

const BLOCK: u64 = 32;
const SHARED_BASE: Addr = 0xA000_0000;
const PRIVATE_BASE: Addr = 0xE000_0000;

/// Access-class mix (fractions must sum to <= 1; the remainder is private
/// traffic).
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Fraction of references to migratory (read-modify-write) blocks.
    pub migratory: f64,
    /// Fraction of references to producer-consumer exchange blocks.
    pub exchange: f64,
    /// Fraction of references to read-mostly shared blocks.
    pub shared_ro: f64,
    /// Probability a migratory access is the modifying store of its burst.
    pub migratory_write: f64,
    /// Scan-style exchange: consumers walk the producer's partition
    /// *sequentially* (DSS table scans) instead of re-visiting hot blocks.
    /// Long reuse distances defeat small switch directories — the reason
    /// the paper's TPC-D benefits far less than TPC-C.
    pub exchange_scan: bool,
    /// Fraction of exchange accesses that *produce* (write) rather than
    /// consume; higher values keep scanned data freshly dirty.
    pub produce_frac: f64,
    /// Instruction work attached to each reference.
    pub work: u32,
}

/// Full generator parameters.
#[derive(Debug, Clone)]
pub struct CommercialParams {
    /// Workload name ("tpcc" / "tpcd").
    pub name: String,
    /// Number of processors.
    pub processors: usize,
    /// Total references across all processors.
    pub total_refs: usize,
    /// Distinct shared blocks touched (scales with trace length).
    pub footprint_blocks: usize,
    /// Access-class mix.
    pub mix: Mix,
    /// RNG seed (the generator is deterministic given the seed).
    pub seed: u64,
}

impl CommercialParams {
    /// The TPC-C (OLTP) preset: update-heavy, migratory-dominated sharing.
    pub fn tpcc(processors: usize, total_refs: usize, seed: u64) -> Self {
        CommercialParams {
            name: "tpcc".into(),
            processors,
            total_refs,
            footprint_blocks: (total_refs / 120).max(4096),
            mix: Mix {
                migratory: 0.18,
                exchange: 0.04,
                shared_ro: 0.24,
                migratory_write: 0.45,
                exchange_scan: false,
                produce_frac: 0.35,
                work: 24,
            },
            seed,
        }
    }

    /// The TPC-D (DSS) preset: scan-heavy over freshly produced partitions,
    /// giving the higher dirty fraction the paper measured.
    pub fn tpcd(processors: usize, total_refs: usize, seed: u64) -> Self {
        CommercialParams {
            name: "tpcd".into(),
            processors,
            total_refs,
            footprint_blocks: (total_refs / 45).max(4096),
            mix: Mix {
                migratory: 0.05,
                exchange: 0.40,
                shared_ro: 0.04,
                migratory_write: 0.50,
                exchange_scan: true,
                produce_frac: 0.50,
                work: 30,
            },
            seed,
        }
    }
}

/// Log-uniform block rank: dense near 0, sparse toward `n` — the skew that
/// concentrates cache-to-cache transfers on a small hot set (Figure 2).
#[inline]
fn skewed_rank(rng: &mut SmallRng, n: usize) -> usize {
    let u: f64 = rng.gen();
    let r = ((n as f64).powf(u) - 1.0) as usize;
    r.min(n - 1)
}

/// Generates the workload.
pub fn generate(params: &CommercialParams) -> Workload {
    assert!(params.processors >= 1 && params.total_refs > 0);
    let mut rec = StreamRecorder::new(params.processors, params.mix.work);
    let per_proc = params.total_refs / params.processors;

    // Shared region layout: migratory blocks first, then exchange rings,
    // then read-mostly; the remainder of the footprint backs private data.
    let shared_blocks = (params.footprint_blocks / 2).max(1024);
    let migratory_blocks = shared_blocks / 4;
    // Scan-style workloads stream over a region far larger than any cache.
    let exchange_blocks =
        if params.mix.exchange_scan { shared_blocks / 2 } else { shared_blocks / 4 };
    let shared_ro_blocks = shared_blocks - migratory_blocks - exchange_blocks;
    let private_blocks = (params.footprint_blocks - shared_blocks) / params.processors.max(1);

    let mig_addr = |b: usize| SHARED_BASE + (b as u64) * BLOCK;
    let exch_addr = |b: usize| SHARED_BASE + ((migratory_blocks + b) as u64) * BLOCK;
    let ro_addr =
        |b: usize| SHARED_BASE + ((migratory_blocks + exchange_blocks + b) as u64) * BLOCK;
    let priv_addr =
        |p: usize, b: usize| PRIVATE_BASE + ((p * private_blocks.max(1) + b) as u64) * BLOCK;

    let m = params.mix;
    for p in 0..params.processors {
        let mut rng =
            SmallRng::seed_from_u64(params.seed ^ (p as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Sequential cursors for scan-style exchange (one per processor).
        // The consumer trails the producer by half the region: the data is
        // still dirty when scanned, but the ownership hint was installed
        // tens of thousands of insertions ago — far beyond any switch
        // directory's reach (the paper's TPC-D behaviour).
        let mut scan_cursor = p * 37 + exchange_blocks / 2;
        let mut produce_cursor = p * 13;
        for _ in 0..per_proc {
            let class: f64 = rng.gen();
            if class < m.migratory {
                // Migratory burst element: mostly read+modify of a hot
                // block another processor touched last.
                let b = skewed_rank(&mut rng, migratory_blocks);
                let a = mig_addr(b);
                rec.read(p, a);
                if rng.gen::<f64>() < m.migratory_write {
                    rec.write(p, a);
                }
            } else if class < m.migratory + m.exchange {
                // Producer-consumer ring: this processor consumes blocks
                // its ring predecessor produces, and occasionally produces
                // its own partition slice.
                let produce = rng.gen::<f64>() < m.produce_frac;
                if m.exchange_scan {
                    // DSS-style sequential scan: march through the region
                    // with long reuse distances.
                    if produce {
                        produce_cursor += 1;
                        let own = produce_cursor * params.processors + p;
                        rec.write(p, exch_addr(own % exchange_blocks));
                    } else {
                        scan_cursor += 1;
                        let pred = (p + params.processors - 1) % params.processors;
                        let theirs = scan_cursor * params.processors + pred;
                        rec.read(p, exch_addr(theirs % exchange_blocks));
                    }
                } else {
                    let b = skewed_rank(&mut rng, exchange_blocks);
                    if produce {
                        let own = (b / params.processors) * params.processors + p;
                        rec.write(p, exch_addr(own % exchange_blocks));
                    } else {
                        let pred = (p + params.processors - 1) % params.processors;
                        let theirs = (b / params.processors) * params.processors + pred;
                        rec.read(p, exch_addr(theirs % exchange_blocks));
                    }
                }
            } else if class < m.migratory + m.exchange + m.shared_ro {
                let b = skewed_rank(&mut rng, shared_ro_blocks);
                rec.read(p, ro_addr(b));
            } else {
                // Private traffic: skewed within the processor's region,
                // mixed reads/writes.
                let b = skewed_rank(&mut rng, private_blocks.max(1));
                let a = priv_addr(p, b);
                if rng.gen::<f64>() < 0.25 {
                    rec.write(p, a);
                } else {
                    rec.read(p, a);
                }
            }
        }
    }
    rec.into_workload(params.name.clone())
}

/// TPC-C preset workload.
pub fn tpcc(processors: usize, total_refs: usize, seed: u64) -> Workload {
    generate(&CommercialParams::tpcc(processors, total_refs, seed))
}

/// TPC-D preset workload.
pub fn tpcd(processors: usize, total_refs: usize, seed: u64) -> Workload {
    generate(&CommercialParams::tpcd(processors, total_refs, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::{RefKind, StreamItem};

    #[test]
    fn generates_requested_volume() {
        let w = tpcc(16, 32_000, 1);
        assert!(w.validate().is_ok());
        // Migratory RMWs add extra writes, so >= requested.
        assert!(w.total_refs() >= 32_000, "got {}", w.total_refs());
        assert_eq!(w.streams.len(), 16);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tpcd(8, 10_000, 7);
        let b = tpcd(8, 10_000, 7);
        assert_eq!(a.streams, b.streams);
        let c = tpcd(8, 10_000, 8);
        assert_ne!(a.streams, c.streams);
    }

    #[test]
    fn tpcd_scans_touch_more_distinct_shared_blocks() {
        // DSS scans stream across the exchange region, so TPC-D's shared
        // reads cover far more distinct blocks than TPC-C's hot-set
        // revisits — the structural difference behind their Figure 8 gap.
        let distinct_shared_read_blocks = |w: &Workload| {
            w.streams
                .iter()
                .flatten()
                .filter_map(|i| match i {
                    StreamItem::Ref(r)
                        if matches!(r.kind, RefKind::Read)
                            && r.addr >= SHARED_BASE
                            && r.addr < PRIVATE_BASE =>
                    {
                        Some(r.addr / BLOCK)
                    }
                    _ => None,
                })
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let shared_reads = |w: &Workload| {
            w.streams
                .iter()
                .flatten()
                .filter(|i| {
                    matches!(i, StreamItem::Ref(r)
                        if matches!(r.kind, RefKind::Read)
                            && r.addr >= SHARED_BASE && r.addr < PRIVATE_BASE)
                })
                .count()
        };
        let c = tpcc(8, 400_000, 3);
        let d = tpcd(8, 400_000, 3);
        let revisit_c = shared_reads(&c) as f64 / distinct_shared_read_blocks(&c) as f64;
        let revisit_d = shared_reads(&d) as f64 / distinct_shared_read_blocks(&d) as f64;
        assert!(
            revisit_c > 1.5 * revisit_d,
            "OLTP must revisit shared blocks far more than DSS scans: {revisit_c:.1} vs {revisit_d:.1}"
        );
    }

    #[test]
    fn accesses_are_skewed() {
        let w = tpcc(4, 40_000, 5);
        let mut counts = std::collections::HashMap::<u64, u64>::new();
        for s in &w.streams {
            for i in s {
                if let StreamItem::Ref(r) = i {
                    if r.addr >= SHARED_BASE && r.addr < PRIVATE_BASE {
                        *counts.entry(r.addr / BLOCK).or_default() += 1;
                    }
                }
            }
        }
        let total: u64 = counts.values().sum();
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top10 = v.len().div_ceil(10);
        let covered: u64 = v[..top10].iter().sum();
        assert!(
            covered as f64 / total as f64 > 0.5,
            "top 10% of blocks must take >50% of shared accesses, got {:.2}",
            covered as f64 / total as f64
        );
    }

    #[test]
    fn private_regions_do_not_overlap() {
        let w = tpcc(4, 20_000, 9);
        let mut owners = std::collections::HashMap::<u64, usize>::new();
        for (p, s) in w.streams.iter().enumerate() {
            for i in s {
                if let StreamItem::Ref(r) = i {
                    if r.addr >= PRIVATE_BASE {
                        let prev = owners.insert(r.addr / BLOCK, p);
                        assert!(prev.is_none() || prev == Some(p), "private block shared");
                    }
                }
            }
        }
    }
}
