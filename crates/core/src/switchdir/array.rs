//! The set-associative switch-directory entry array (paper §4.2).
//!
//! Entry layout follows the paper: for a 16-processor machine an entry is
//! ~10 bits of payload — owner pid, first requester pid, two state bits —
//! plus the tag and, for the Accumulate ablation, the sharer bit vector.
//! Replacement is LRU with two refinements the protocol requires:
//!
//! * **TRANSIENT entries are pinned**: a sunk read depends on the entry
//!   surviving until the owner's copyback/writeback passes, so TRANSIENT
//!   ways are never victims. MODIFIED entries are pure hints and always
//!   safe to drop.
//! * A **pending-buffer bound** caps the number of simultaneous TRANSIENT
//!   entries per switch (§4.3's small 8–16 entry buffer for 8x8 switches);
//!   when full, new read hits fall through to the home path.

use dresar_types::config::SwitchDirConfig;
use dresar_types::{BlockAddr, NodeId, SharerSet};

/// State of a switch-directory entry (Figure 4a; INVALID = absent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdState {
    /// The recorded owner holds the block dirty.
    Modified,
    /// This switch sank a read and awaits the owner's copyback/writeback.
    Transient,
}

/// Read-only view of an entry, for the FSM and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdEntryView {
    /// Entry state.
    pub state: SdState,
    /// Recorded owner pid.
    pub owner: NodeId,
    /// First requester (receives the owner's direct CtoC data).
    pub first_requester: NodeId,
    /// All requesters this switch has served or queued (bit vector).
    pub sharers: SharerSet,
}

#[derive(Debug, Clone)]
struct Way {
    valid: bool,
    tag: u64,
    state: SdState,
    owner: NodeId,
    first_requester: NodeId,
    sharers: SharerSet,
    lru: u64,
}

impl Way {
    const EMPTY: Way = Way {
        valid: false,
        tag: 0,
        state: SdState::Modified,
        owner: 0,
        first_requester: 0,
        sharers: SharerSet::EMPTY,
        lru: 0,
    };
}

/// The entry array.
#[derive(Debug, Clone)]
pub struct SdArray {
    ways: usize,
    set_mask: u64,
    set_shift: u32,
    data: Vec<Way>,
    stamp: u64,
    transients: usize,
    valid: usize,
    last_evicted: Option<(BlockAddr, SdState)>,
    pending_limit: usize,
}

impl SdArray {
    /// Builds an array from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration does not validate.
    pub fn new(cfg: SwitchDirConfig) -> Self {
        cfg.validate().expect("invalid switch-directory config");
        let sets = (cfg.entries / cfg.ways) as u64;
        SdArray {
            ways: cfg.ways as usize,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            data: vec![Way::EMPTY; cfg.entries as usize],
            stamp: 0,
            transients: 0,
            valid: 0,
            last_evicted: None,
            pending_limit: cfg.pending_buffer_entries.max(1) as usize,
        }
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        (block.0 & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, block: BlockAddr) -> u64 {
        block.0 >> self.set_shift
    }

    fn find(&self, block: BlockAddr) -> Option<usize> {
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = set * self.ways;
        (base..base + self.ways).find(|&i| self.data[i].valid && self.data[i].tag == tag)
    }

    /// Looks up an entry without touching LRU.
    pub fn peek(&self, block: BlockAddr) -> Option<SdEntryView> {
        self.find(block).map(|i| {
            let w = &self.data[i];
            SdEntryView {
                state: w.state,
                owner: w.owner,
                first_requester: w.first_requester,
                sharers: w.sharers.clone(),
            }
        })
    }

    /// Installs (or refreshes) a MODIFIED entry for `block` owned by
    /// `owner`. Returns `false` when the set has no victim (all ways pinned
    /// TRANSIENT).
    pub fn insert_modified(&mut self, block: BlockAddr, owner: NodeId) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(i) = self.find(block) {
            let w = &mut self.data[i];
            if w.state == SdState::Transient {
                // A transfer is in flight for the previous owner; do not
                // clobber the bookkeeping. (New ownership implies the old
                // CtoC will NAK and the requester falls back to the home.)
                return false;
            }
            w.owner = owner;
            w.first_requester = owner;
            w.sharers = SharerSet::EMPTY;
            w.lru = stamp;
            return true;
        }
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = set * self.ways;
        let victim = (base..base + self.ways)
            .filter(|&i| !self.data[i].valid || self.data[i].state != SdState::Transient)
            .min_by_key(|&i| if self.data[i].valid { (1, self.data[i].lru) } else { (0, 0) });
        match victim {
            Some(i) => {
                if self.data[i].valid {
                    // A valid MODIFIED hint is silently dropped — record the
                    // victim (and its state) so observers can count
                    // replacement pressure and cross-check the TRANSIENT pin.
                    let v = &self.data[i];
                    self.last_evicted = Some((
                        BlockAddr((v.tag << self.set_shift) | (i / self.ways) as u64),
                        v.state,
                    ));
                } else {
                    self.valid += 1;
                }
                self.data[i] = Way {
                    valid: true,
                    tag,
                    state: SdState::Modified,
                    owner,
                    first_requester: owner,
                    sharers: SharerSet::EMPTY,
                    lru: stamp,
                };
                true
            }
            None => false,
        }
    }

    /// Transitions a MODIFIED entry to TRANSIENT with `requester` as the
    /// first waiter. Returns `false` if the pending-buffer bound is
    /// reached (the caller then forwards the read to the home instead).
    pub fn make_transient(&mut self, block: BlockAddr, requester: NodeId) -> bool {
        if self.transients >= self.pending_limit {
            return false;
        }
        if let Some(i) = self.find(block) {
            let w = &mut self.data[i];
            if w.state == SdState::Transient {
                return false; // already tracking a transfer for this block
            }
            w.state = SdState::Transient;
            w.first_requester = requester;
            w.sharers = SharerSet::singleton(requester);
            self.stamp += 1;
            w.lru = self.stamp;
            self.transients += 1;
            true
        } else {
            false
        }
    }

    /// Adds a waiter to a TRANSIENT entry's bit vector (Accumulate policy).
    pub fn add_sharer(&mut self, block: BlockAddr, requester: NodeId) -> bool {
        if let Some(i) = self.find(block) {
            let w = &mut self.data[i];
            if w.state == SdState::Transient {
                w.sharers.insert(requester);
                return true;
            }
        }
        false
    }

    /// Removes an entry; returns `true` if it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        if let Some(i) = self.find(block) {
            if self.data[i].state == SdState::Transient {
                self.transients -= 1;
            }
            self.data[i].valid = false;
            self.valid -= 1;
            true
        } else {
            false
        }
    }

    /// Number of valid entries (O(1): maintained incrementally).
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(self.valid, self.data.iter().filter(|w| w.valid).count());
        self.valid
    }

    /// Takes the most recent eviction victim and its pre-eviction state (a
    /// valid entry dropped by [`SdArray::insert_modified`]), clearing it.
    /// The state is always `Modified` while the TRANSIENT pin holds.
    pub fn take_last_evicted(&mut self) -> Option<(BlockAddr, SdState)> {
        self.last_evicted.take()
    }

    /// Number of TRANSIENT entries.
    pub fn transient_count(&self) -> usize {
        self.transients
    }

    /// Reconstructs the block address of the way at index `i`.
    fn block_of(&self, i: usize) -> BlockAddr {
        BlockAddr((self.data[i].tag << self.set_shift) | (i / self.ways) as u64)
    }

    /// Iterates over all valid entries as `(block, view)` pairs, in array
    /// order (deterministic). Used by the coherence checker and the fault
    /// machinery.
    pub fn entries(&self) -> impl Iterator<Item = (BlockAddr, SdEntryView)> + '_ {
        (0..self.data.len()).filter(|&i| self.data[i].valid).map(|i| {
            let w = &self.data[i];
            (
                self.block_of(i),
                SdEntryView {
                    state: w.state,
                    owner: w.owner,
                    first_requester: w.first_requester,
                    sharers: w.sharers.clone(),
                },
            )
        })
    }

    /// ECC-scrub fault: invalidates one MODIFIED entry chosen by `nonce`
    /// (deterministic in the nonce and array contents). TRANSIENT entries
    /// are never scrubbed — they pin in-flight protocol state the same way
    /// a real scrub engine skips busy lines. Returns the victim block.
    pub fn scrub_one(&mut self, nonce: u64) -> Option<BlockAddr> {
        let modified: Vec<usize> = (0..self.data.len())
            .filter(|&i| self.data[i].valid && self.data[i].state == SdState::Modified)
            .collect();
        if modified.is_empty() {
            return None;
        }
        let i = modified[(nonce % modified.len() as u64) as usize];
        let block = self.block_of(i);
        self.data[i].valid = false;
        self.valid -= 1;
        Some(block)
    }

    /// Forced eviction storm: drops up to `n` MODIFIED entries starting at
    /// a `nonce`-derived rotation of the array (deterministic). Returns how
    /// many were dropped. TRANSIENT entries survive.
    pub fn force_evict(&mut self, n: u32, nonce: u64) -> u32 {
        if self.data.is_empty() || n == 0 {
            return 0;
        }
        let len = self.data.len();
        let start = (nonce % len as u64) as usize;
        let mut dropped = 0u32;
        for off in 0..len {
            if dropped >= n {
                break;
            }
            let i = (start + off) % len;
            if self.data[i].valid && self.data[i].state == SdState::Modified {
                self.data[i].valid = false;
                self.valid -= 1;
                dropped += 1;
            }
        }
        dropped
    }

    /// Disable fault: drops every MODIFIED entry (they are pure hints;
    /// TRANSIENT entries stay to drain their in-flight transfers). Returns
    /// how many were dropped.
    pub fn drop_modified(&mut self) -> u32 {
        let mut dropped = 0u32;
        for i in 0..self.data.len() {
            if self.data[i].valid && self.data[i].state == SdState::Modified {
                self.data[i].valid = false;
                self.valid -= 1;
                dropped += 1;
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::rng::SmallRng;

    fn small() -> SdArray {
        // 4 sets x 2 ways.
        SdArray::new(SwitchDirConfig {
            entries: 8,
            ways: 2,
            lookup_ports: 2,
            pending_buffer_entries: 8,
        })
    }

    #[test]
    fn insert_and_peek() {
        let mut a = small();
        assert!(a.insert_modified(BlockAddr(5), 3));
        let e = a.peek(BlockAddr(5)).unwrap();
        assert_eq!(e.state, SdState::Modified);
        assert_eq!(e.owner, 3);
        assert_eq!(a.occupancy(), 1);
    }

    #[test]
    fn reinsert_updates_owner() {
        let mut a = small();
        a.insert_modified(BlockAddr(5), 3);
        assert!(a.insert_modified(BlockAddr(5), 9));
        assert_eq!(a.peek(BlockAddr(5)).unwrap().owner, 9);
        assert_eq!(a.occupancy(), 1);
    }

    #[test]
    fn lru_prefers_modified_victims() {
        let mut a = small();
        // Set 0 holds blocks 0 and 4 (4 sets).
        a.insert_modified(BlockAddr(0), 1);
        a.insert_modified(BlockAddr(4), 2);
        // Pin block 0 as TRANSIENT; inserting block 8 must evict block 4
        // even though block 0 is older.
        assert!(a.make_transient(BlockAddr(0), 7));
        assert!(a.insert_modified(BlockAddr(8), 3));
        assert!(a.peek(BlockAddr(0)).is_some(), "transient entry survives");
        assert!(a.peek(BlockAddr(4)).is_none());
        assert!(a.peek(BlockAddr(8)).is_some());
    }

    #[test]
    fn all_transient_set_refuses_insert() {
        let mut a = small();
        a.insert_modified(BlockAddr(0), 1);
        a.insert_modified(BlockAddr(4), 2);
        a.make_transient(BlockAddr(0), 7);
        a.make_transient(BlockAddr(4), 8);
        assert!(!a.insert_modified(BlockAddr(8), 3), "no evictable way");
        assert_eq!(a.transient_count(), 2);
    }

    #[test]
    fn pending_limit_enforced() {
        let mut a = SdArray::new(SwitchDirConfig {
            entries: 8,
            ways: 2,
            lookup_ports: 2,
            pending_buffer_entries: 1,
        });
        a.insert_modified(BlockAddr(0), 1);
        a.insert_modified(BlockAddr(1), 2);
        assert!(a.make_transient(BlockAddr(0), 7));
        assert!(!a.make_transient(BlockAddr(1), 8), "pending buffer full");
        a.invalidate(BlockAddr(0));
        assert!(a.make_transient(BlockAddr(1), 8), "slot freed by invalidate");
    }

    #[test]
    fn transient_not_clobbered_by_new_write_reply() {
        let mut a = small();
        a.insert_modified(BlockAddr(0), 1);
        a.make_transient(BlockAddr(0), 7);
        assert!(!a.insert_modified(BlockAddr(0), 9));
        let e = a.peek(BlockAddr(0)).unwrap();
        assert_eq!(e.state, SdState::Transient);
        assert_eq!(e.owner, 1);
    }

    #[test]
    fn add_sharer_only_on_transient() {
        let mut a = small();
        a.insert_modified(BlockAddr(0), 1);
        assert!(!a.add_sharer(BlockAddr(0), 5));
        a.make_transient(BlockAddr(0), 7);
        assert!(a.add_sharer(BlockAddr(0), 5));
        let e = a.peek(BlockAddr(0)).unwrap();
        assert!(e.sharers.contains(5) && e.sharers.contains(7));
        assert_eq!(e.first_requester, 7);
    }

    #[test]
    fn eviction_victims_are_surfaced() {
        let mut a = small();
        assert!(a.take_last_evicted().is_none());
        a.insert_modified(BlockAddr(0), 1);
        a.insert_modified(BlockAddr(4), 2);
        // Set 0 is full; inserting block 8 evicts LRU block 0.
        a.insert_modified(BlockAddr(8), 3);
        assert_eq!(a.take_last_evicted(), Some((BlockAddr(0), SdState::Modified)));
        assert!(a.take_last_evicted().is_none(), "take clears the record");
        assert_eq!(a.occupancy(), 2);
    }

    #[test]
    fn entries_iteration_reconstructs_blocks() {
        let mut a = small();
        a.insert_modified(BlockAddr(5), 3);
        a.insert_modified(BlockAddr(9), 4);
        a.make_transient(BlockAddr(9), 7);
        let got: Vec<(BlockAddr, SdState)> = a.entries().map(|(b, e)| (b, e.state)).collect();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&(BlockAddr(5), SdState::Modified)));
        assert!(got.contains(&(BlockAddr(9), SdState::Transient)));
    }

    #[test]
    fn scrub_skips_transients_and_is_deterministic() {
        let mut a = small();
        a.insert_modified(BlockAddr(0), 1);
        a.make_transient(BlockAddr(0), 7);
        assert_eq!(a.scrub_one(3), None, "only a TRANSIENT entry present");
        a.insert_modified(BlockAddr(1), 2);
        a.insert_modified(BlockAddr(2), 3);
        let mut b = a.clone();
        assert_eq!(a.scrub_one(11), b.scrub_one(11), "same nonce, same victim");
        assert_eq!(a.occupancy(), 2);
        assert_eq!(a.transient_count(), 1);
    }

    #[test]
    fn force_evict_and_drop_modified_spare_transients() {
        let mut a = small();
        for blk in 0..6u64 {
            a.insert_modified(BlockAddr(blk), 1);
        }
        a.make_transient(BlockAddr(0), 7);
        assert_eq!(a.force_evict(2, 99), 2);
        assert_eq!(a.occupancy(), 4);
        assert_eq!(a.drop_modified(), 3);
        assert_eq!(a.occupancy(), 1);
        assert_eq!(a.peek(BlockAddr(0)).unwrap().state, SdState::Transient);
        assert_eq!(a.transient_count(), 1);
        assert_eq!(a.drop_modified(), 0);
    }

    /// The transient counter always equals the number of TRANSIENT
    /// entries, and occupancy never exceeds capacity (seeded randomized
    /// sweep).
    #[test]
    fn transient_accounting_stays_exact() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut a = small();
            for step in 0..300 {
                let op = rng.gen_range(0u8..3);
                let block = BlockAddr(rng.gen_range(0u64..32));
                let n = rng.gen_range(0u8..16);
                match op {
                    0 => {
                        a.insert_modified(block, n);
                    }
                    1 => {
                        a.make_transient(block, n);
                    }
                    _ => {
                        a.invalidate(block);
                    }
                }
                let actual = (0..32u64)
                    .filter(|&x| {
                        a.peek(BlockAddr(x)).is_some_and(|e| e.state == SdState::Transient)
                    })
                    .count();
                assert_eq!(a.transient_count(), actual, "seed {seed} step {step}");
                assert!(a.occupancy() <= 8, "seed {seed} step {step}");
            }
        }
    }
}
