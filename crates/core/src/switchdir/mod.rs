//! The switch directory device (DRESAR, paper §3.2–§4.3).
//!
//! Each crossbar switch embeds one [`SwitchDirectory`]: a small set-
//! associative SRAM array of ownership entries with three states —
//! **MODIFIED** (the recorded owner holds the block dirty), **TRANSIENT**
//! (this switch sank a read and a cache-to-cache transfer is in flight) and
//! **INVALID** (absent). [`SwitchDirectory::snoop`] implements the protocol
//! FSM of the paper's Figure 4 for the seven Table 1 message types and
//! returns what the switch should do with the message (forward, sink, or
//! sink-and-generate).
//!
//! Module layout:
//! * [`array`] — the entry array with TRANSIENT-pinned LRU replacement and
//!   the pending-buffer capacity bound of §4.3.
//! * the FSM itself lives on [`SwitchDirectory`] in this module;
//! * [`ports`] — the multiported-SRAM cycle-budget scheduler of §4.2
//!   ("four incoming requests need switch directory processing within four
//!   cycles").

pub mod array;
pub mod ports;

use dresar_obs::{NullProbe, Probe, SdProbeEvent, SwitchLoc};
use dresar_types::config::SwitchDirConfig;
use dresar_types::msg::{Message, MsgType};
use dresar_types::{BlockAddr, Cycle, FromJson, JsonError, JsonValue, NodeId, ToJson};

pub use array::{SdEntryView, SdState};
pub use ports::PortScheduler;

/// Policy for a `ReadRequest` that hits a TRANSIENT entry (paper §3.2
/// discusses both alternatives; the paper *chose* `Retry` "because
/// communication intensive blocks have very few sharers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransientReadPolicy {
    /// Sink the read and NAK the requester (the paper's choice).
    #[default]
    Retry,
    /// Sink the read and remember the requester in the entry's bit vector;
    /// it is served with data when the owner's copyback/writeback passes
    /// (the paper's rejected-for-complexity alternative — kept as an
    /// ablation).
    Accumulate,
}

/// A message the switch directory asks the switch to emit (the "CtoC &
/// Reply Unit" of Figure 6). Routes are computed by the caller, which knows
/// the switch's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenMsg {
    /// Send a cache-to-cache transfer request down to the owner.
    CtoCRequest {
        /// Owner cache to interrogate.
        owner: NodeId,
        /// Processor the data should go to.
        requester: NodeId,
    },
    /// NAK a requester (it retries after backoff).
    Retry {
        /// Destination processor.
        to: NodeId,
    },
    /// Reply with data captured from a passing writeback/copyback.
    DataReply {
        /// Destination processor.
        to: NodeId,
    },
}

/// What the switch should do with the snooped message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnoopAction {
    /// Forward unchanged (possibly after in-place marking).
    Forward,
    /// Consume the message.
    Sink,
    /// Consume the message and emit the generated messages.
    SinkSend(Vec<GenMsg>),
    /// Forward the (marked) message and also emit generated messages
    /// (writeback passing a TRANSIENT entry: data replies to waiters plus
    /// the marked writeback continuing to the home).
    ForwardSend(Vec<GenMsg>),
}

/// Counters per switch directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SdStats {
    /// Entries installed by passing write replies.
    pub inserts: u64,
    /// Installs skipped because every way of the set was pinned TRANSIENT
    /// or the pending buffer was full.
    pub inserts_blocked: u64,
    /// Read hits that fell through to the home path because the §4.3
    /// pending buffer was full. Dedicated (not folded into
    /// `inserts_blocked`) so a full buffer is never a silent overflow:
    /// flow control backs off via the home path and this counter records
    /// every refusal.
    pub pending_refused: u64,
    /// Reads served (MODIFIED hit, CtoC request generated).
    pub read_hits: u64,
    /// Reads sunk+NAK'd on TRANSIENT entries.
    pub transient_retries: u64,
    /// Readers accumulated into TRANSIENT bit vectors (Accumulate policy).
    pub readers_accumulated: u64,
    /// Entries invalidated by writes/CtoC/writebacks passing through.
    pub invalidations: u64,
    /// Writes / foreign CtoC requests NAK'd on TRANSIENT entries.
    pub write_retries: u64,
    /// Copybacks marked with served-sharer pids.
    pub copybacks_marked: u64,
    /// Writebacks whose data answered waiting readers.
    pub writeback_replies: u64,
    /// Messages snooped in total.
    pub snoops: u64,
    /// Valid entries displaced by replacement (LRU victims of new inserts).
    pub evictions: u64,
    /// Replacement victims that were TRANSIENT — structurally zero while the
    /// TRANSIENT pin holds; a nonzero value flags a protocol bug, so the
    /// breakdown doubles as a telemetry cross-check.
    pub evictions_transient: u64,
    /// High-water mark of valid entries in the array.
    pub peak_occupancy: u64,
    /// High-water mark of TRANSIENT entries — the pending-buffer occupancy
    /// a sized §4.3 buffer would have needed.
    pub peak_transients: u64,
}

impl SdStats {
    /// Sums another instance's counters into this one (aggregation across
    /// switches). Peaks take the max: the merged value answers "how large
    /// would the busiest single switch's array/buffer have to be".
    pub fn merge(&mut self, other: &SdStats) {
        self.inserts += other.inserts;
        self.inserts_blocked += other.inserts_blocked;
        self.pending_refused += other.pending_refused;
        self.read_hits += other.read_hits;
        self.transient_retries += other.transient_retries;
        self.readers_accumulated += other.readers_accumulated;
        self.invalidations += other.invalidations;
        self.write_retries += other.write_retries;
        self.copybacks_marked += other.copybacks_marked;
        self.writeback_replies += other.writeback_replies;
        self.snoops += other.snoops;
        self.evictions += other.evictions;
        self.evictions_transient += other.evictions_transient;
        self.peak_occupancy = self.peak_occupancy.max(other.peak_occupancy);
        self.peak_transients = self.peak_transients.max(other.peak_transients);
    }
}

impl ToJson for SdStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("inserts", self.inserts)
            .field("inserts_blocked", self.inserts_blocked)
            .field("pending_refused", self.pending_refused)
            .field("read_hits", self.read_hits)
            .field("transient_retries", self.transient_retries)
            .field("readers_accumulated", self.readers_accumulated)
            .field("invalidations", self.invalidations)
            .field("write_retries", self.write_retries)
            .field("copybacks_marked", self.copybacks_marked)
            .field("writeback_replies", self.writeback_replies)
            .field("snoops", self.snoops)
            .field("evictions", self.evictions)
            .field("evictions_transient", self.evictions_transient)
            .field("peak_occupancy", self.peak_occupancy)
            .field("peak_transients", self.peak_transients)
            .build()
    }
}

impl FromJson for SdStats {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(SdStats {
            inserts: JsonError::want_u64(v, "inserts")?,
            inserts_blocked: JsonError::want_u64(v, "inserts_blocked")?,
            // Tolerant: documents written before the counter existed.
            pending_refused: v.get("pending_refused").and_then(JsonValue::as_u64).unwrap_or(0),
            read_hits: JsonError::want_u64(v, "read_hits")?,
            transient_retries: JsonError::want_u64(v, "transient_retries")?,
            readers_accumulated: JsonError::want_u64(v, "readers_accumulated")?,
            invalidations: JsonError::want_u64(v, "invalidations")?,
            write_retries: JsonError::want_u64(v, "write_retries")?,
            copybacks_marked: JsonError::want_u64(v, "copybacks_marked")?,
            writeback_replies: JsonError::want_u64(v, "writeback_replies")?,
            snoops: JsonError::want_u64(v, "snoops")?,
            evictions: JsonError::want_u64(v, "evictions")?,
            evictions_transient: JsonError::want_u64(v, "evictions_transient")?,
            peak_occupancy: JsonError::want_u64(v, "peak_occupancy")?,
            peak_transients: JsonError::want_u64(v, "peak_transients")?,
        })
    }
}

/// One switch's directory cache plus its protocol FSM.
#[derive(Debug, Clone)]
pub struct SwitchDirectory {
    array: array::SdArray,
    policy: TransientReadPolicy,
    stats: SdStats,
    /// Degraded mode (fault-injected whole-switch disable): no new entries
    /// are installed and no reads are served; existing TRANSIENT entries
    /// keep draining so in-flight transfers complete correctly.
    disabled: bool,
}

impl SwitchDirectory {
    /// Builds a directory from the configuration.
    pub fn new(cfg: SwitchDirConfig) -> Self {
        Self::with_policy(cfg, TransientReadPolicy::default())
    }

    /// Builds a directory with an explicit TRANSIENT-read policy.
    pub fn with_policy(cfg: SwitchDirConfig, policy: TransientReadPolicy) -> Self {
        SwitchDirectory {
            array: array::SdArray::new(cfg),
            policy,
            stats: SdStats::default(),
            disabled: false,
        }
    }

    /// Counters.
    pub fn stats(&self) -> SdStats {
        self.stats
    }

    /// Entry view for tests/diagnostics.
    pub fn peek(&self, block: BlockAddr) -> Option<SdEntryView> {
        self.array.peek(block)
    }

    /// Number of TRANSIENT entries currently held (pending-buffer load).
    pub fn transient_count(&self) -> usize {
        self.array.transient_count()
    }

    /// Snoops a message traversing this switch, applying the Figure 4 FSM.
    /// May mutate `msg` in place (attaching carried sharer pids to
    /// copybacks/writebacks). Message types outside Table 1 are forwarded
    /// untouched.
    pub fn snoop(&mut self, msg: &mut Message) -> SnoopAction {
        self.snoop_probed(msg, SwitchLoc::default(), 0, &mut NullProbe)
    }

    /// [`SwitchDirectory::snoop`] with observability: emits an
    /// [`SdProbeEvent`] for every notable outcome. With [`NullProbe`] this
    /// monomorphizes to exactly the uninstrumented FSM.
    pub fn snoop_probed<P: Probe>(
        &mut self,
        msg: &mut Message,
        loc: SwitchLoc,
        t: Cycle,
        probe: &mut P,
    ) -> SnoopAction {
        let action = self.snoop_impl(msg, loc, t, probe);
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.array.occupancy() as u64);
        self.stats.peak_transients =
            self.stats.peak_transients.max(self.array.transient_count() as u64);
        action
    }

    fn snoop_impl<P: Probe>(
        &mut self,
        msg: &mut Message,
        loc: SwitchLoc,
        t: Cycle,
        probe: &mut P,
    ) -> SnoopAction {
        if !msg.kind.switch_dir_relevant() {
            return SnoopAction::Forward;
        }
        self.stats.snoops += 1;
        let block = msg.block;
        match msg.kind {
            MsgType::WriteReply => {
                if self.disabled {
                    // Degraded mode: never install new hints; the reply
                    // streams on to the writer untouched.
                    return SnoopAction::Forward;
                }
                // Capture ownership as the reply streams toward the writer.
                let owner = msg.requester;
                if self.array.insert_modified(block, owner) {
                    self.stats.inserts += 1;
                    probe.sd_event(t, loc, block, SdProbeEvent::Insert);
                    if let Some((victim, state)) = self.array.take_last_evicted() {
                        self.stats.evictions += 1;
                        if state == SdState::Transient {
                            self.stats.evictions_transient += 1;
                        }
                        probe.sd_event(t, loc, victim, SdProbeEvent::Evict);
                    }
                } else {
                    self.stats.inserts_blocked += 1;
                    probe.sd_event(t, loc, block, SdProbeEvent::InsertBlocked);
                }
                SnoopAction::Forward
            }
            MsgType::ReadRequest => self.snoop_read(block, msg.requester, loc, t, probe),
            MsgType::WriteRequest => match self.array.peek(block) {
                Some(e) if e.state == SdState::Modified => {
                    self.array.invalidate(block);
                    self.stats.invalidations += 1;
                    probe.sd_event(t, loc, block, SdProbeEvent::Invalidate);
                    SnoopAction::Forward
                }
                Some(_) => {
                    // TRANSIENT: a CtoC is in flight from this switch; NAK
                    // the writer and retry later (paper §3.2).
                    self.stats.write_retries += 1;
                    probe.sd_event(
                        t,
                        loc,
                        block,
                        SdProbeEvent::WriteNak { requester: msg.requester },
                    );
                    SnoopAction::SinkSend(vec![GenMsg::Retry { to: msg.requester }])
                }
                None => SnoopAction::Forward,
            },
            MsgType::CtoCRequest => match self.array.peek(block) {
                Some(e) if e.state == SdState::Modified => {
                    // The block is about to stop being dirty-owned: the
                    // recorded hint is stale the moment the transfer
                    // completes.
                    self.array.invalidate(block);
                    self.stats.invalidations += 1;
                    probe.sd_event(t, loc, block, SdProbeEvent::Invalidate);
                    SnoopAction::Forward
                }
                Some(_) => {
                    // Another switch (or the home) races our in-flight CtoC:
                    // sink it and NAK its requester; ours will complete and
                    // the retry falls back to the (by then updated) home.
                    self.stats.write_retries += 1;
                    probe.sd_event(
                        t,
                        loc,
                        block,
                        SdProbeEvent::WriteNak { requester: msg.requester },
                    );
                    SnoopAction::SinkSend(vec![GenMsg::Retry { to: msg.requester }])
                }
                None => SnoopAction::Forward,
            },
            MsgType::CopyBack => match self.array.peek(block) {
                Some(e) if e.state == SdState::Transient => {
                    // Mark the copyback with every pid this switch served or
                    // queued so the home's full-map vector stays exact, and
                    // (Accumulate policy) answer queued readers beyond the
                    // first from the copyback's data.
                    let served = e.sharers.clone();
                    msg.carried_sharers = msg.carried_sharers.clone().union(served.clone());
                    self.stats.copybacks_marked += 1;
                    probe.sd_event(
                        t,
                        loc,
                        block,
                        SdProbeEvent::CopybackMarked { served: served.len() as u32 },
                    );
                    let first = e.first_requester;
                    self.array.invalidate(block);
                    let extra: Vec<GenMsg> = served
                        .iter()
                        .filter(|&p| p != first)
                        .map(|p| GenMsg::DataReply { to: p })
                        .collect();
                    if extra.is_empty() {
                        SnoopAction::Forward
                    } else {
                        SnoopAction::ForwardSend(extra)
                    }
                }
                Some(_) => {
                    // Stale MODIFIED hint for a block completing a transfer
                    // elsewhere.
                    self.array.invalidate(block);
                    self.stats.invalidations += 1;
                    probe.sd_event(t, loc, block, SdProbeEvent::Invalidate);
                    SnoopAction::Forward
                }
                None => SnoopAction::Forward,
            },
            MsgType::WriteBack => match self.array.peek(block) {
                Some(e) if e.state == SdState::Transient => {
                    // The owner evicted before our CtoC request reached it:
                    // serve every waiting reader from the writeback's data
                    // and mark the writeback so the home records them as
                    // sharers (paper §3.2).
                    let served = e.sharers.clone();
                    msg.carried_sharers = msg.carried_sharers.clone().union(served.clone());
                    self.array.invalidate(block);
                    self.stats.writeback_replies += served.len() as u64;
                    probe.sd_event(
                        t,
                        loc,
                        block,
                        SdProbeEvent::WritebackServed { served: served.len() as u32 },
                    );
                    let replies: Vec<GenMsg> =
                        served.iter().map(|p| GenMsg::DataReply { to: p }).collect();
                    if replies.is_empty() {
                        SnoopAction::Forward
                    } else {
                        SnoopAction::ForwardSend(replies)
                    }
                }
                Some(_) => {
                    self.array.invalidate(block);
                    self.stats.invalidations += 1;
                    probe.sd_event(t, loc, block, SdProbeEvent::Invalidate);
                    SnoopAction::Forward
                }
                None => SnoopAction::Forward,
            },
            MsgType::Retry => SnoopAction::Forward,
            other => {
                // Guarded by `switch_dir_relevant` above; reaching this arm
                // means the Table 1 filter and the FSM disagree. Forwarding
                // untouched is always protocol-safe for a hint cache.
                debug_assert!(false, "snooped irrelevant message {other:?}");
                SnoopAction::Forward
            }
        }
    }

    fn snoop_read<P: Probe>(
        &mut self,
        block: BlockAddr,
        requester: NodeId,
        loc: SwitchLoc,
        t: Cycle,
        probe: &mut P,
    ) -> SnoopAction {
        match self.array.peek(block) {
            None => SnoopAction::Forward,
            Some(e) if e.state == SdState::Modified => {
                if e.owner == requester {
                    // Stale hint: the recorded owner itself is asking (its
                    // writeback must be in flight). Let the home sort it
                    // out; the writeback will clean this entry as it passes.
                    return SnoopAction::Forward;
                }
                // The switch-directory hit: sink the read and re-route it
                // straight to the owner cache.
                if self.array.make_transient(block, requester) {
                    self.stats.read_hits += 1;
                    probe.sd_event(
                        t,
                        loc,
                        block,
                        SdProbeEvent::ReadHit { owner: e.owner, requester },
                    );
                    SnoopAction::SinkSend(vec![GenMsg::CtoCRequest { owner: e.owner, requester }])
                } else {
                    // Pending buffer full: cannot track another transient
                    // block, fall through to the home path (§4.3 feedback).
                    // Never a silent overflow: the refusal is counted.
                    self.stats.pending_refused += 1;
                    probe.sd_event(t, loc, block, SdProbeEvent::InsertBlocked);
                    SnoopAction::Forward
                }
            }
            Some(e) => {
                debug_assert_eq!(e.state, SdState::Transient);
                if e.sharers.contains(requester) || e.first_requester == requester {
                    // Duplicate/retried read from a pid we already track:
                    // NAK (its data or NAK is already on the way).
                    self.stats.transient_retries += 1;
                    probe.sd_event(t, loc, block, SdProbeEvent::TransientNak { requester });
                    return SnoopAction::SinkSend(vec![GenMsg::Retry { to: requester }]);
                }
                match self.policy {
                    TransientReadPolicy::Retry => {
                        self.stats.transient_retries += 1;
                        probe.sd_event(t, loc, block, SdProbeEvent::TransientNak { requester });
                        SnoopAction::SinkSend(vec![GenMsg::Retry { to: requester }])
                    }
                    TransientReadPolicy::Accumulate => {
                        self.array.add_sharer(block, requester);
                        self.stats.readers_accumulated += 1;
                        probe.sd_event(
                            t,
                            loc,
                            block,
                            SdProbeEvent::ReaderAccumulated { requester },
                        );
                        SnoopAction::Sink
                    }
                }
            }
        }
    }

    /// Number of valid entries in the array (O(1)).
    pub fn occupancy(&self) -> usize {
        self.array.occupancy()
    }

    /// Iterates over all valid entries as `(block, view)` pairs (array
    /// order, deterministic). The coherence checker uses this to verify
    /// SD contents against home-directory truth.
    pub fn entries(&self) -> impl Iterator<Item = (BlockAddr, SdEntryView)> + '_ {
        self.array.entries()
    }

    /// Whether the directory is in degraded (disabled) mode.
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Fault hook: enters or leaves degraded mode. Disabling drops every
    /// MODIFIED hint immediately (they are pure hints, always safe to
    /// lose) but keeps TRANSIENT entries so in-flight cache-to-cache
    /// transfers drain through the normal copyback/writeback path.
    /// Returns how many entries were dropped.
    pub fn set_disabled(&mut self, disabled: bool) -> u32 {
        self.disabled = disabled;
        if disabled {
            self.array.drop_modified()
        } else {
            0
        }
    }

    /// Fault hook: ECC scrub pulse — invalidates one MODIFIED entry chosen
    /// by `nonce`. Returns the victim block, if any entry was scrubbed.
    pub fn scrub(&mut self, nonce: u64) -> Option<BlockAddr> {
        self.array.scrub_one(nonce)
    }

    /// Fault hook: forced eviction storm — drops up to `n` MODIFIED
    /// entries (nonce-rotated, deterministic). Returns how many dropped.
    pub fn force_evict(&mut self, n: u32, nonce: u64) -> u32 {
        self.array.force_evict(n, nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::msg::Endpoint;
    use dresar_types::Cycle;

    fn cfg() -> SwitchDirConfig {
        SwitchDirConfig { entries: 64, ways: 4, lookup_ports: 2, pending_buffer_entries: 8 }
    }

    fn msg(kind: MsgType, block: u64, requester: NodeId) -> Message {
        Message::new(
            0,
            kind,
            BlockAddr(block),
            Endpoint::Proc(requester),
            Endpoint::Mem(0),
            requester,
            0 as Cycle,
        )
    }

    fn install(sd: &mut SwitchDirectory, block: u64, owner: NodeId) {
        let mut wr = msg(MsgType::WriteReply, block, owner);
        assert_eq!(sd.snoop(&mut wr), SnoopAction::Forward);
    }

    #[test]
    fn write_reply_installs_modified_entry() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        let e = sd.peek(BlockAddr(5)).expect("entry present");
        assert_eq!(e.state, SdState::Modified);
        assert_eq!(e.owner, 3);
        assert_eq!(sd.stats().inserts, 1);
    }

    #[test]
    fn read_hit_sinks_and_generates_ctoc() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        let mut rd = msg(MsgType::ReadRequest, 5, 7);
        let act = sd.snoop(&mut rd);
        assert_eq!(
            act,
            SnoopAction::SinkSend(vec![GenMsg::CtoCRequest { owner: 3, requester: 7 }])
        );
        let e = sd.peek(BlockAddr(5)).unwrap();
        assert_eq!(e.state, SdState::Transient);
        assert!(e.sharers.contains(7));
        assert_eq!(sd.stats().read_hits, 1);
    }

    #[test]
    fn read_miss_forwards() {
        let mut sd = SwitchDirectory::new(cfg());
        let mut rd = msg(MsgType::ReadRequest, 99, 7);
        assert_eq!(sd.snoop(&mut rd), SnoopAction::Forward);
    }

    #[test]
    fn read_from_recorded_owner_forwards() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        let mut rd = msg(MsgType::ReadRequest, 5, 3);
        assert_eq!(sd.snoop(&mut rd), SnoopAction::Forward);
        assert_eq!(sd.peek(BlockAddr(5)).unwrap().state, SdState::Modified);
    }

    #[test]
    fn transient_read_retries_under_default_policy() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        sd.snoop(&mut msg(MsgType::ReadRequest, 5, 7)); // -> transient
        let act = sd.snoop(&mut msg(MsgType::ReadRequest, 5, 9));
        assert_eq!(act, SnoopAction::SinkSend(vec![GenMsg::Retry { to: 9 }]));
        assert_eq!(sd.stats().transient_retries, 1);
    }

    #[test]
    fn transient_read_accumulates_under_alt_policy() {
        let mut sd = SwitchDirectory::with_policy(cfg(), TransientReadPolicy::Accumulate);
        install(&mut sd, 5, 3);
        sd.snoop(&mut msg(MsgType::ReadRequest, 5, 7));
        let act = sd.snoop(&mut msg(MsgType::ReadRequest, 5, 9));
        assert_eq!(act, SnoopAction::Sink);
        assert!(sd.peek(BlockAddr(5)).unwrap().sharers.contains(9));
        assert_eq!(sd.stats().readers_accumulated, 1);
    }

    #[test]
    fn duplicate_transient_reader_is_nakked_even_when_accumulating() {
        let mut sd = SwitchDirectory::with_policy(cfg(), TransientReadPolicy::Accumulate);
        install(&mut sd, 5, 3);
        sd.snoop(&mut msg(MsgType::ReadRequest, 5, 7));
        let act = sd.snoop(&mut msg(MsgType::ReadRequest, 5, 7));
        assert_eq!(act, SnoopAction::SinkSend(vec![GenMsg::Retry { to: 7 }]));
    }

    #[test]
    fn write_request_invalidates_modified_entry() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        let act = sd.snoop(&mut msg(MsgType::WriteRequest, 5, 9));
        assert_eq!(act, SnoopAction::Forward);
        assert!(sd.peek(BlockAddr(5)).is_none());
        assert_eq!(sd.stats().invalidations, 1);
    }

    #[test]
    fn write_request_on_transient_is_nakked() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        sd.snoop(&mut msg(MsgType::ReadRequest, 5, 7));
        let act = sd.snoop(&mut msg(MsgType::WriteRequest, 5, 9));
        assert_eq!(act, SnoopAction::SinkSend(vec![GenMsg::Retry { to: 9 }]));
        assert_eq!(sd.peek(BlockAddr(5)).unwrap().state, SdState::Transient);
    }

    #[test]
    fn foreign_ctoc_request_invalidates_modified() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        let mut cc = msg(MsgType::CtoCRequest, 5, 9);
        assert_eq!(sd.snoop(&mut cc), SnoopAction::Forward);
        assert!(sd.peek(BlockAddr(5)).is_none());
    }

    #[test]
    fn copyback_in_transient_is_marked_and_cleans_entry() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        sd.snoop(&mut msg(MsgType::ReadRequest, 5, 7));
        let mut cb = msg(MsgType::CopyBack, 5, 3);
        let act = sd.snoop(&mut cb);
        assert_eq!(act, SnoopAction::Forward);
        assert!(cb.carried_sharers.contains(7), "copyback must carry the served pid");
        assert!(sd.peek(BlockAddr(5)).is_none());
        assert_eq!(sd.stats().copybacks_marked, 1);
    }

    #[test]
    fn copyback_serves_accumulated_readers_beyond_first() {
        let mut sd = SwitchDirectory::with_policy(cfg(), TransientReadPolicy::Accumulate);
        install(&mut sd, 5, 3);
        sd.snoop(&mut msg(MsgType::ReadRequest, 5, 7));
        sd.snoop(&mut msg(MsgType::ReadRequest, 5, 9));
        let mut cb = msg(MsgType::CopyBack, 5, 3);
        let act = sd.snoop(&mut cb);
        assert_eq!(act, SnoopAction::ForwardSend(vec![GenMsg::DataReply { to: 9 }]));
        assert!(cb.carried_sharers.contains(7) && cb.carried_sharers.contains(9));
    }

    #[test]
    fn writeback_in_transient_answers_waiters_with_data() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        sd.snoop(&mut msg(MsgType::ReadRequest, 5, 7));
        let mut wb = msg(MsgType::WriteBack, 5, 3);
        let act = sd.snoop(&mut wb);
        assert_eq!(act, SnoopAction::ForwardSend(vec![GenMsg::DataReply { to: 7 }]));
        assert!(wb.carried_sharers.contains(7));
        assert!(sd.peek(BlockAddr(5)).is_none());
        assert_eq!(sd.stats().writeback_replies, 1);
    }

    #[test]
    fn writeback_invalidates_stale_modified_entry() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        let mut wb = msg(MsgType::WriteBack, 5, 3);
        assert_eq!(sd.snoop(&mut wb), SnoopAction::Forward);
        assert!(sd.peek(BlockAddr(5)).is_none());
    }

    #[test]
    fn retry_and_irrelevant_messages_pass_untouched() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 5, 3);
        for kind in [MsgType::Retry, MsgType::ReadReply, MsgType::CtoCData, MsgType::Invalidate] {
            let mut m = msg(kind, 5, 9);
            assert_eq!(sd.snoop(&mut m), SnoopAction::Forward, "{kind:?}");
        }
        assert_eq!(sd.peek(BlockAddr(5)).unwrap().state, SdState::Modified);
    }

    #[test]
    fn pending_buffer_limit_blocks_new_transients() {
        let mut small = SwitchDirConfig { pending_buffer_entries: 1, ..cfg() };
        small.entries = 64;
        let mut sd = SwitchDirectory::new(small);
        install(&mut sd, 1, 3);
        install(&mut sd, 2, 3);
        // First transient OK.
        let a1 = sd.snoop(&mut msg(MsgType::ReadRequest, 1, 7));
        assert!(matches!(a1, SnoopAction::SinkSend(_)));
        // Second would exceed the pending buffer: falls through to home.
        let a2 = sd.snoop(&mut msg(MsgType::ReadRequest, 2, 7));
        assert_eq!(a2, SnoopAction::Forward);
        assert_eq!(sd.transient_count(), 1);
        assert_eq!(sd.stats().pending_refused, 1, "refusal counted, never silent");
        assert_eq!(sd.stats().inserts_blocked, 0, "install blocking is a separate counter");
        // The refused read was forwarded to the home, so flow control is
        // preserved; a third attempt counts again.
        let a3 = sd.snoop(&mut msg(MsgType::ReadRequest, 2, 9));
        assert_eq!(a3, SnoopAction::Forward);
        assert_eq!(sd.stats().pending_refused, 2);
    }

    #[test]
    fn disable_drops_hints_but_drains_transients() {
        let mut sd = SwitchDirectory::new(cfg());
        install(&mut sd, 1, 3);
        install(&mut sd, 2, 4);
        sd.snoop(&mut msg(MsgType::ReadRequest, 1, 7)); // block 1 -> TRANSIENT
        assert_eq!(sd.set_disabled(true), 1, "only the MODIFIED hint dropped");
        assert!(sd.is_disabled());
        assert_eq!(sd.peek(BlockAddr(1)).unwrap().state, SdState::Transient);
        assert!(sd.peek(BlockAddr(2)).is_none());
        // No new installs while degraded.
        install(&mut sd, 5, 9);
        assert!(sd.peek(BlockAddr(5)).is_none());
        // Reads fall through to the home path.
        assert_eq!(sd.snoop(&mut msg(MsgType::ReadRequest, 5, 7)), SnoopAction::Forward);
        // The in-flight transfer still completes through the copyback path.
        let mut cb = msg(MsgType::CopyBack, 1, 3);
        assert_eq!(sd.snoop(&mut cb), SnoopAction::Forward);
        assert!(cb.carried_sharers.contains(7), "degraded switch still marks its copyback");
        assert_eq!(sd.transient_count(), 0);
        // Re-enable: installs work again.
        assert_eq!(sd.set_disabled(false), 0);
        install(&mut sd, 6, 2);
        assert_eq!(sd.peek(BlockAddr(6)).unwrap().owner, 2);
    }

    #[test]
    fn scrub_and_storm_hooks_count_against_occupancy() {
        let mut sd = SwitchDirectory::new(cfg());
        for blk in 0..6u64 {
            install(&mut sd, blk, 1);
        }
        assert!(sd.scrub(42).is_some());
        assert_eq!(sd.occupancy(), 5);
        assert_eq!(sd.force_evict(3, 7), 3);
        assert_eq!(sd.occupancy(), 2);
        let listed: Vec<_> = sd.entries().collect();
        assert_eq!(listed.len(), 2);
    }

    #[test]
    fn eviction_and_peak_counters_tracked() {
        // 4 sets x 2 ways: blocks 0, 4, 8 share set 0.
        let mut sd = SwitchDirectory::new(SwitchDirConfig {
            entries: 8,
            ways: 2,
            lookup_ports: 2,
            pending_buffer_entries: 8,
        });
        install(&mut sd, 0, 1);
        install(&mut sd, 4, 2);
        install(&mut sd, 8, 3); // evicts MODIFIED block 0
        assert_eq!(sd.stats().evictions, 1);
        assert_eq!(sd.stats().evictions_transient, 0, "TRANSIENT pin holds");
        assert_eq!(sd.stats().peak_occupancy, 2);
        sd.snoop(&mut msg(MsgType::ReadRequest, 4, 7)); // -> transient
        assert_eq!(sd.stats().peak_transients, 1);
        // Peaks persist after the transient drains.
        let mut cb = msg(MsgType::CopyBack, 4, 2);
        sd.snoop(&mut cb);
        assert_eq!(sd.transient_count(), 0);
        assert_eq!(sd.stats().peak_transients, 1);
        // Merge takes the max of peaks, the sum of evictions.
        let mut a = sd.stats();
        let b = SdStats { peak_occupancy: 9, evictions: 4, ..SdStats::default() };
        a.merge(&b);
        assert_eq!(a.peak_occupancy, 9);
        assert_eq!(a.evictions, 5);
    }

    #[test]
    fn snoop_counts_only_relevant_messages() {
        let mut sd = SwitchDirectory::new(cfg());
        sd.snoop(&mut msg(MsgType::ReadReply, 1, 1));
        assert_eq!(sd.stats().snoops, 0);
        sd.snoop(&mut msg(MsgType::ReadRequest, 1, 1));
        assert_eq!(sd.stats().snoops, 1);
    }
}
