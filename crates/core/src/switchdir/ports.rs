//! The multiported-SRAM cycle-budget model of §4.2–§4.3.
//!
//! DRESAR must process every flit that enters the crossbar *within* the
//! four cycles the base switch already spends on arbitration and
//! traversal, or it would add latency and need flow-control feedback. The
//! paper's accounting:
//!
//! * **4x4 switch (radix 2)**: up to 4 header flits arrive per window; a
//!   2-way multiported directory snoops 2 per cycle → 2 cycles of lookups,
//!   leaving 2 idle port-cycles for the FSM's state updates. Budget met.
//! * **8x8 switch (radix 4)**: up to 8 headers per window would need 4
//!   lookup cycles plus updates — over budget. §4.3's fix: a small 4-way
//!   multiported **pending buffer** holds the TRANSIENT entries, so the
//!   message types that only need a transient check (`WriteBack`,
//!   `CopyBack`, `CtoCRequest`, `Retry`) are served there, and only
//!   `ReadRequest`/`WriteRequest`/`WriteReply` occupy main-directory ports.
//!
//! [`PortScheduler`] reproduces that arithmetic for an arbitrary batch so
//! the microbenchmarks (and the ablation that removes the pending buffer)
//! can verify the budget claims quantitatively.

use dresar_types::msg::MsgType;

/// Where a message's snoop is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Main directory SRAM ports.
    MainDirectory,
    /// The pending buffer (transient-state check only).
    PendingBuffer,
}

/// Classification of Table 1 messages per §4.3: which unit must serve the
/// snoop when a pending buffer is present.
pub fn unit_for(kind: MsgType) -> Option<ServedBy> {
    match kind {
        MsgType::ReadRequest | MsgType::WriteRequest | MsgType::WriteReply => {
            Some(ServedBy::MainDirectory)
        }
        MsgType::CtoCRequest | MsgType::CopyBack | MsgType::WriteBack | MsgType::Retry => {
            Some(ServedBy::PendingBuffer)
        }
        _ => None,
    }
}

/// Outcome of scheduling one arbitration window's batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSchedule {
    /// Cycles of main-directory port time used for lookups.
    pub main_lookup_cycles: u32,
    /// Cycles of pending-buffer port time used.
    pub pending_lookup_cycles: u32,
    /// Port-cycles left in the window for FSM state updates.
    pub update_cycles_free: u32,
    /// Whether everything fit in the window (no feedback/blocking needed).
    pub within_budget: bool,
}

/// The port scheduler for one switch-directory configuration.
#[derive(Debug, Clone, Copy)]
pub struct PortScheduler {
    /// Window length: the base switch's core delay in cycles.
    pub window_cycles: u32,
    /// Main directory lookup ports (paper: 2).
    pub main_ports: u32,
    /// Pending-buffer lookup ports (paper: 4); 0 disables the pending
    /// buffer and routes everything to the main directory (the 4x4 design
    /// and the ablation case).
    pub pending_ports: u32,
}

impl PortScheduler {
    /// The paper's 4x4 DRESAR: 2-way multiported directory, no pending
    /// buffer, 4-cycle window.
    pub fn paper_4x4() -> Self {
        PortScheduler { window_cycles: 4, main_ports: 2, pending_ports: 0 }
    }

    /// The paper's 8x8 DRESAR: 2-way multiported directory plus a 4-way
    /// multiported pending buffer.
    pub fn paper_8x8() -> Self {
        PortScheduler { window_cycles: 4, main_ports: 2, pending_ports: 4 }
    }

    /// Schedules one window's batch of snoops and reports the budget.
    pub fn schedule(&self, batch: &[MsgType]) -> WindowSchedule {
        let mut main = 0u32;
        let mut pending = 0u32;
        for &k in batch {
            match unit_for(k) {
                Some(ServedBy::MainDirectory) => main += 1,
                Some(ServedBy::PendingBuffer) => {
                    if self.pending_ports > 0 {
                        pending += 1;
                    } else {
                        main += 1;
                    }
                }
                None => {}
            }
        }
        let main_cycles = main.div_ceil(self.main_ports.max(1));
        let pending_cycles =
            if self.pending_ports > 0 { pending.div_ceil(self.pending_ports) } else { 0 };
        // Lookups must finish within the window; updates use the remaining
        // main-port cycles ("state changes ... are made during the two idle
        // cycles when the directory ports are free", §4.2).
        let busy = main_cycles.max(pending_cycles);
        let update_free = self.window_cycles.saturating_sub(main_cycles) * self.main_ports.max(1);
        WindowSchedule {
            main_lookup_cycles: main_cycles,
            pending_lookup_cycles: pending_cycles,
            update_cycles_free: update_free,
            within_budget: busy <= self.window_cycles && update_free >= main,
        }
    }

    /// Worst-case batch for a switch of `radix` down-ports: every input
    /// delivers a header flit of the given kind mix. Convenience for the
    /// benchmarks.
    pub fn worst_case_within_budget(&self, inputs: usize, kinds: &[MsgType]) -> bool {
        let batch: Vec<MsgType> = (0..inputs).map(|i| kinds[i % kinds.len()]).collect();
        self.schedule(&batch).within_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MsgType::*;

    #[test]
    fn paper_claim_4x4_meets_budget() {
        // 4 arbitrary Table 1 headers in one window, 2 ports, no pending
        // buffer: 2 cycles of lookups, 2 idle cycles for <=4 updates.
        let s = PortScheduler::paper_4x4();
        let w = s.schedule(&[ReadRequest, WriteReply, WriteBack, CtoCRequest]);
        assert_eq!(w.main_lookup_cycles, 2);
        assert!(w.within_budget);
        assert_eq!(w.update_cycles_free, 4);
    }

    #[test]
    fn naive_8x8_without_pending_buffer_blows_budget() {
        // 8 headers through the 2-ported directory: 4 lookup cycles, zero
        // idle update cycles -> feedback needed.
        let s = PortScheduler { window_cycles: 4, main_ports: 2, pending_ports: 0 };
        let batch = [
            ReadRequest,
            WriteRequest,
            WriteReply,
            WriteBack,
            CopyBack,
            CtoCRequest,
            Retry,
            ReadRequest,
        ];
        let w = s.schedule(&batch);
        assert!(!w.within_budget);
    }

    #[test]
    fn paper_claim_8x8_with_pending_buffer_meets_budget() {
        let s = PortScheduler::paper_8x8();
        // Mixed worst case: 4 main-directory types + 4 pending types.
        let batch = [
            ReadRequest,
            WriteRequest,
            WriteReply,
            ReadRequest,
            WriteBack,
            CopyBack,
            CtoCRequest,
            Retry,
        ];
        let w = s.schedule(&batch);
        assert_eq!(w.main_lookup_cycles, 2);
        assert_eq!(w.pending_lookup_cycles, 1);
        assert!(w.within_budget);
    }

    #[test]
    fn all_main_types_on_8x8_still_fits() {
        // §4.3's residual worry: all 8 requests needing the main directory.
        let s = PortScheduler::paper_8x8();
        let batch = [ReadRequest; 8];
        let w = s.schedule(&batch);
        assert_eq!(w.main_lookup_cycles, 4);
        assert!(!w.within_budget, "the paper concedes this case needs 4-way multiporting");
    }

    #[test]
    fn irrelevant_messages_cost_nothing() {
        let s = PortScheduler::paper_4x4();
        let w = s.schedule(&[ReadReply, CtoCData, Invalidate, InvalAck]);
        assert_eq!(w.main_lookup_cycles, 0);
        assert!(w.within_budget);
    }

    #[test]
    fn unit_classification_matches_section_4_3() {
        assert_eq!(unit_for(ReadRequest), Some(ServedBy::MainDirectory));
        assert_eq!(unit_for(WriteRequest), Some(ServedBy::MainDirectory));
        assert_eq!(unit_for(WriteReply), Some(ServedBy::MainDirectory));
        for k in [CtoCRequest, CopyBack, WriteBack, Retry] {
            assert_eq!(unit_for(k), Some(ServedBy::PendingBuffer), "{k:?}");
        }
        assert_eq!(unit_for(ReadReply), None);
    }

    #[test]
    fn worst_case_helper() {
        assert!(PortScheduler::paper_4x4().worst_case_within_budget(4, &[ReadRequest]));
        assert!(!PortScheduler::paper_8x8().worst_case_within_budget(8, &[ReadRequest]));
        assert!(PortScheduler::paper_8x8().worst_case_within_budget(8, &[ReadRequest, WriteBack]));
    }
}
