//! # dresar — DiRectory Embedded Switch ARchitecture
//!
//! A from-scratch reproduction of *"Using Switch Directories to Speed Up
//! Cache-to-Cache Transfers in CC-NUMA Multiprocessors"* (Iyer, Bhuyan,
//! Nanda; IPPS 2000).
//!
//! The paper's idea: crossbar switches of the CC-NUMA interconnect embed
//! small SRAM **switch directories** that capture block-ownership
//! information as `WriteReply` messages stream from a home memory back to a
//! writing processor. Later `ReadRequest`s that pass such a switch and find
//! the block **MODIFIED** are *sunk* at the switch and re-routed as
//! cache-to-cache transfer requests straight to the owner's cache — skipping
//! the remaining hops to the home node, the slow DRAM full-map directory
//! lookup, and the directory-controller occupancy. Coherence with the home
//! directory is restored by *marking* the owner's copyback/writeback with
//! the pids the switch served.
//!
//! This crate provides:
//!
//! * [`switchdir`] — the switch-directory device: the set-associative SRAM
//!   entry array ([`switchdir::SwitchDirectory`]), the protocol FSM of the
//!   paper's Figure 4 ([`switchdir::SwitchDirectory::snoop`]), the pending
//!   buffer that lets 8x8 switches meet the cycle budget (§4.3), and the
//!   port-scheduling model of §4.2.
//! * [`system`] — the execution-driven 16-node CC-NUMA simulator of the
//!   evaluation (Table 2): processors with release consistency and write
//!   buffers, inclusive L1/L2 MSI caches, full-map home directories,
//!   and the BMIN interconnect with a switch directory in every switch.
//!
//! ```
//! use dresar::system::{System, RunOptions};
//! use dresar_types::config::SystemConfig;
//! use dresar_types::{StreamItem, Workload};
//!
//! // Two processors ping-pong a block: reads after the remote write are
//! // dirty cache-to-cache transfers, which switch directories accelerate.
//! let wl = Workload {
//!     name: "pingpong".into(),
//!     streams: vec![
//!         vec![StreamItem::write(0, 1), StreamItem::Barrier(0)],
//!         vec![StreamItem::Barrier(0), StreamItem::read(0, 1)],
//!         vec![StreamItem::Barrier(0)],
//!         vec![StreamItem::Barrier(0)],
//!     ],
//! };
//! let mut cfg = SystemConfig::paper_table2();
//! cfg.nodes = 4; // keep the doctest snappy
//! cfg.switch.radix = 2;
//! let report = dresar::system::System::new(cfg, &wl).run(RunOptions::default());
//! assert_eq!(report.reads.dirty(), 1);
//! # let _ = report; let _: System; // type is exported
//! ```

#![warn(missing_docs)]

pub mod switchdir;
pub mod system;

pub use switchdir::{SdStats, SnoopAction, SwitchDirectory, TransientReadPolicy};
pub use system::{ExecutionReport, RunOptions, System};
