//! Per-node processor state: stream execution, MSHRs, write buffer.

use dresar_cache::CacheHierarchy;
use dresar_stats::ReadStats;
use dresar_types::{BlockAddr, Cycle, FastMap, NodeId, StreamItem};

/// What the processor core is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Executing its stream.
    Ready,
    /// Blocked on a read to the given block.
    WaitRead(BlockAddr),
    /// Blocked because the write buffer is full.
    WaitWriteBuffer,
    /// Draining the write buffer before entering a barrier (a barrier is a
    /// release point: all prior stores must complete first).
    DrainForBarrier(u32),
    /// Waiting at a barrier.
    AtBarrier(u32),
    /// Stream drained.
    Done,
}

/// Kind of outstanding transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrKind {
    /// Read (blocks the processor).
    Read,
    /// Write / ownership (retires through the write buffer).
    Write,
}

/// A CtoC intervention that reached the (future) owner before its
/// ownership grant did. Message retransmission can reorder the home's
/// `WriteReply` past the intervention it sends for the *next* writer; the
/// grantee must serve the intervention once its fill lands — NAKing would
/// leave the home busy waiting for a copyback nobody is going to send.
#[derive(Debug, Clone, Copy)]
pub struct DeferredIntervention {
    /// Processor the data (or ownership) goes to.
    pub requester: NodeId,
    /// Ownership transfer (write-triggered) rather than a downgrade.
    pub write_intent: bool,
    /// The intervention came from a switch directory.
    pub switch_generated: bool,
    /// Original issue cycle, carried for latency accounting.
    pub issued_at: Cycle,
    /// Transaction id of the requester's miss, carried so the deferred
    /// reply joins the same causal tree as the intervention that seeded it.
    pub txn: u64,
    /// Sequence of the ownership instance the home intervened. Replay
    /// serves only if the fill installed exactly that instance — otherwise
    /// the home cancelled the transaction while the intervention was in
    /// flight (a retransmitted zombie) and serving it would hand ownership
    /// to a node the home no longer tracks.
    pub owner_seq: u64,
}

/// A miss-status holding register: one outstanding transaction per block.
#[derive(Debug, Clone, Copy)]
pub struct Mshr {
    /// Read or write.
    pub kind: MshrKind,
    /// Cycle the transaction was first issued (latency accounting).
    pub issued_at: Cycle,
    /// Transaction id: stable across retries and coalesced upgrades, stamped
    /// on every message sent on this miss's behalf.
    pub txn: u64,
    /// A write arrived while a read was outstanding: upgrade ownership as
    /// soon as the read data lands.
    pub then_write: bool,
    /// An invalidation arrived while the fill was in flight: fill, let the
    /// blocked read consume the data once, then invalidate.
    pub inval_pending: bool,
    /// A retry event is already scheduled (debounces NAK storms).
    pub retry_pending: bool,
    /// An intervention overtook the ownership grant: serve it after the
    /// fill (only ever set on `MshrKind::Write`).
    pub deferred_ctoc: Option<DeferredIntervention>,
}

/// One node's processor-side state.
#[derive(Debug)]
pub struct Node {
    /// Node id.
    pub id: NodeId,
    /// L1/L2 hierarchy.
    pub hier: CacheHierarchy,
    /// The reference stream.
    pub items: Vec<StreamItem>,
    /// Next stream index.
    pub pc: usize,
    /// Core state.
    pub state: ProcState,
    /// Outstanding transactions by block.
    pub mshrs: FastMap<BlockAddr, Mshr>,
    /// Sequence number of the ownership instance last installed Modified,
    /// per block (from the grant's `owner_seq`). Consulted only while the
    /// line is dirty, to validate incoming interventions; stale entries for
    /// relinquished blocks are harmless and overwritten by the next grant.
    pub owner_seq: FastMap<BlockAddr, u64>,
    /// Outstanding write transactions (write-buffer occupancy).
    pub writes_inflight: u32,
    /// Read statistics for this node.
    pub reads: ReadStats,
    /// Cycle the current read stall began.
    pub stall_since: Cycle,
    /// The node's local notion of time: the cycle up to which its stream
    /// has executed.
    pub local_time: Cycle,
    /// Memory references executed.
    pub refs_executed: u64,
}

impl Node {
    /// Creates a node with the given stream.
    pub fn new(id: NodeId, hier: CacheHierarchy, items: Vec<StreamItem>) -> Self {
        Node {
            id,
            hier,
            items,
            pc: 0,
            state: ProcState::Ready,
            mshrs: FastMap::default(),
            owner_seq: FastMap::default(),
            writes_inflight: 0,
            reads: ReadStats::default(),
            stall_since: 0,
            local_time: 0,
            refs_executed: 0,
        }
    }

    /// Whether the node has fully drained (stream done, no transactions).
    pub fn drained(&self) -> bool {
        self.state == ProcState::Done && self.mshrs.is_empty()
    }
}
