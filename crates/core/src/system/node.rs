//! Per-node processor state: stream execution, MSHRs, write buffer.

use dresar_cache::CacheHierarchy;
use dresar_stats::ReadStats;
use dresar_types::{BlockAddr, Cycle, NodeId, StreamItem};
use std::collections::HashMap;

/// What the processor core is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Executing its stream.
    Ready,
    /// Blocked on a read to the given block.
    WaitRead(BlockAddr),
    /// Blocked because the write buffer is full.
    WaitWriteBuffer,
    /// Draining the write buffer before entering a barrier (a barrier is a
    /// release point: all prior stores must complete first).
    DrainForBarrier(u32),
    /// Waiting at a barrier.
    AtBarrier(u32),
    /// Stream drained.
    Done,
}

/// Kind of outstanding transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrKind {
    /// Read (blocks the processor).
    Read,
    /// Write / ownership (retires through the write buffer).
    Write,
}

/// A miss-status holding register: one outstanding transaction per block.
#[derive(Debug, Clone, Copy)]
pub struct Mshr {
    /// Read or write.
    pub kind: MshrKind,
    /// Cycle the transaction was first issued (latency accounting).
    pub issued_at: Cycle,
    /// A write arrived while a read was outstanding: upgrade ownership as
    /// soon as the read data lands.
    pub then_write: bool,
    /// An invalidation arrived while the fill was in flight: fill, let the
    /// blocked read consume the data once, then invalidate.
    pub inval_pending: bool,
    /// A retry event is already scheduled (debounces NAK storms).
    pub retry_pending: bool,
}

/// One node's processor-side state.
#[derive(Debug)]
pub struct Node {
    /// Node id.
    pub id: NodeId,
    /// L1/L2 hierarchy.
    pub hier: CacheHierarchy,
    /// The reference stream.
    pub items: Vec<StreamItem>,
    /// Next stream index.
    pub pc: usize,
    /// Core state.
    pub state: ProcState,
    /// Outstanding transactions by block.
    pub mshrs: HashMap<BlockAddr, Mshr>,
    /// Outstanding write transactions (write-buffer occupancy).
    pub writes_inflight: u32,
    /// Read statistics for this node.
    pub reads: ReadStats,
    /// Cycle the current read stall began.
    pub stall_since: Cycle,
    /// The node's local notion of time: the cycle up to which its stream
    /// has executed.
    pub local_time: Cycle,
    /// Memory references executed.
    pub refs_executed: u64,
}

impl Node {
    /// Creates a node with the given stream.
    pub fn new(id: NodeId, hier: CacheHierarchy, items: Vec<StreamItem>) -> Self {
        Node {
            id,
            hier,
            items,
            pc: 0,
            state: ProcState::Ready,
            mshrs: HashMap::new(),
            writes_inflight: 0,
            reads: ReadStats::default(),
            stall_since: 0,
            local_time: 0,
            refs_executed: 0,
        }
    }

    /// Whether the node has fully drained (stream done, no transactions).
    pub fn drained(&self) -> bool {
        self.state == ProcState::Done && self.mshrs.is_empty()
    }
}
