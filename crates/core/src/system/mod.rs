//! The execution-driven CC-NUMA system simulator (paper §5.1, Table 2).
//!
//! A [`System`] assembles, per node, a 4-issue processor with release
//! consistency and a write buffer, an inclusive L1/L2 MSI hierarchy, a slice
//! of the distributed memory with its full-map directory, and — between the
//! processor and memory interfaces — the wormhole BMIN whose every switch
//! hosts a DRESAR switch directory (when enabled).
//!
//! Processors execute [`dresar_types::Workload`] reference streams: reads
//! block the core (read stall time), writes retire through the write buffer,
//! and barriers synchronize phases. Every miss becomes protocol messages
//! routed hop-by-hop through the interconnect; switch directories snoop each
//! hop and may sink, re-route or answer messages per the Figure 4 FSM.
//!
//! The simulator is deterministic: event ties break by schedule order and
//! no randomness is used outside workload generation.

mod coherence;
mod node;
mod report;

pub use coherence::{CoherenceOutcome, CoherenceViolation};
pub use node::{DeferredIntervention, Mshr, MshrKind, Node, ProcState};
pub use report::ExecutionReport;

use crate::switchdir::{GenMsg, SnoopAction, SwitchDirectory, TransientReadPolicy};
use dresar_cache::{AccessOutcome, CacheHierarchy, Eviction, LineState};
use dresar_directory::{DirAction, HomeDirectory, QueuedReq, ReqKind};
use dresar_engine::{BankedResource, EventQueue, Resource};
use dresar_faults::{
    FaultPlan, FaultSession, LaunchVerdict, SimError, StuckMsg, Watchdog, WatchdogConfig,
    WatchdogKind,
};
use dresar_interconnect::routes::{self, Route};
use dresar_interconnect::{Bmin, HopNetwork, SwitchId};
use dresar_obs::{
    MachineShape, NullProbe, ObserverConfig, ObserverSet, Probe, ServicePoint, SwitchLoc,
};
use dresar_protocol::{spec, ProtoState};
use dresar_stats::{BlockHistogram, ReadClass};
use dresar_types::addr::AddressMap;
use dresar_types::config::SystemConfig;
use dresar_types::msg::{Endpoint, Message, MsgType};
use dresar_types::{BlockAddr, Cycle, NodeId, RefKind, SharerSet, StreamItem, Workload};
use std::rc::Rc;

/// Options for one run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Abort (panic) if simulated time exceeds this bound — catches
    /// protocol livelock in tests instead of hanging.
    pub max_cycles: Cycle,
    /// Collect the per-block miss histogram (Figure 2 support).
    pub collect_histogram: bool,
    /// TRANSIENT-read policy for the switch directories.
    pub transient_policy: TransientReadPolicy,
    /// Observers to attach (latency breakdown, time series, trace, flight
    /// recorder). By default only the bounded flight recorder is on — it is
    /// the always-on black box, surfaced in the report only when the run is
    /// anomalous (watchdog trip, coherence failure, lost messages or sim
    /// errors). Pass `ObserverConfig::default()` explicitly for a fully
    /// uninstrumented run.
    pub observers: ObserverConfig,
    /// Deterministic fault-injection plan. `None` (and an inert
    /// [`FaultPlan::default`]) run fault-free.
    pub faults: Option<FaultPlan>,
    /// Coherence watchdog. When set, livelock / quiescence failures /
    /// budget overruns produce a structured [`dresar_faults::WatchdogReport`]
    /// in the [`ExecutionReport`] instead of a panic or a hang.
    pub watchdog: Option<WatchdogConfig>,
    /// Run the end-of-run coherence invariant checker and attach its
    /// [`CoherenceOutcome`] to the report.
    pub verify_coherence: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_cycles: 1 << 40,
            collect_histogram: false,
            transient_policy: TransientReadPolicy::Retry,
            observers: ObserverConfig {
                flight: Some(dresar_obs::DEFAULT_FLIGHT_CAPACITY),
                ..ObserverConfig::default()
            },
            faults: None,
            watchdog: None,
            verify_coherence: false,
        }
    }
}

/// Simulation events.
enum Ev {
    /// Processor resumes stream execution.
    Proc(NodeId),
    /// A message header arrives at `route.links[hop]`'s far side.
    Msg(Box<InFlight>),
    /// The home directory/DRAM finished processing `msg`; execute the FSM.
    HomeExec {
        /// Home node.
        home: NodeId,
        /// The processed message.
        msg: Box<Message>,
    },
    /// A NAK'd transaction re-issues.
    Retry {
        /// Retrying node.
        node: NodeId,
        /// Block of the NAK'd transaction.
        block: BlockAddr,
    },
    /// A dropped message retransmits from its source (fault injection).
    Relaunch {
        /// The message and its route, re-entering at hop 0.
        flight: Box<InFlight>,
        /// Retransmission attempt number (1 = first retry).
        attempt: u32,
    },
}

/// Handle to a message's route. Static forward/backward routes live in
/// the [`RouteTable`] arenas owned by the [`System`] — the handle is just
/// the endpoint pair, so the send path allocates nothing and 256-node
/// machines avoid n² individually boxed routes. Dynamically computed
/// routes (proc-to-proc transfers, switch-originated messages) still ride
/// an `Rc<Route>`; a `System` is single-threaded by construction (one per
/// run; sweeps parallelise across systems), so `Rc` is sufficient.
#[derive(Clone)]
enum RouteRef {
    /// Forward proc `p` -> mem `home` route from the forward table.
    Fwd(NodeId, NodeId),
    /// Backward mem `home` -> proc `p` route from the backward table.
    Bwd(NodeId, NodeId),
    /// A dynamically computed route.
    Dyn(Rc<Route>),
}

/// A message in transit.
struct InFlight {
    msg: Message,
    route: RouteRef,
    hop: usize,
}

/// Barrier rendezvous. Tracks only the arrival count — the old per-node
/// `arrived: u64` bitmask was write-only and capped the machine at 64
/// nodes (`1u64 << p` overflows for p >= 64).
#[derive(Debug, Default)]
struct BarrierState {
    count: usize,
    max_time: Cycle,
}

/// The assembled machine.
pub struct System {
    cfg: SystemConfig,
    map: AddressMap,
    bmin: Bmin,
    net: HopNetwork,
    nodes: Vec<Node>,
    homes: Vec<HomeDirectory>,
    home_ctrl: Vec<Resource>,
    dram: Vec<BankedResource>,
    sdirs: Vec<Option<SwitchDirectory>>,
    queue: EventQueue<Ev>,
    /// Precomputed proc->mem routes (structure-of-arrays arena).
    fwd_routes: routes::RouteTable,
    /// Precomputed mem->proc routes (structure-of-arrays arena).
    bwd_routes: routes::RouteTable,
    msg_seq: u64,
    /// Transaction ids: one per tracked miss, stable across retries,
    /// coalesced upgrades and cache-to-cache forwards. Distinct from
    /// `msg_seq` so message retransmission never perturbs the causal ids.
    txn_seq: u64,
    barrier: BarrierState,
    workload: String,
    writebacks: u64,
    histogram: Option<BlockHistogram>,
    end_time: Cycle,
    faults: Option<FaultSession>,
    watchdog: Option<Watchdog>,
    sim_errors: Vec<SimError>,
    lost_log: Vec<String>,
}

impl System {
    /// Builds a system for `cfg` loaded with `workload` (streams beyond
    /// `cfg.nodes` are rejected; missing streams run empty).
    ///
    /// # Panics
    /// Panics if the configuration or workload fails validation.
    pub fn new(cfg: SystemConfig, workload: &Workload) -> Self {
        cfg.validate().expect("invalid system configuration");
        workload.validate().expect("invalid workload");
        assert!(
            workload.streams.len() <= cfg.nodes,
            "workload has more streams ({}) than nodes ({})",
            workload.streams.len(),
            cfg.nodes
        );
        let map = cfg.address_map();
        let bmin = Bmin::new(cfg.nodes, cfg.switch.radix as usize);
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let stream = workload.streams.get(i).cloned().unwrap_or_default();
                Node::new(i as NodeId, CacheHierarchy::new(cfg.l1, cfg.l2), stream)
            })
            .collect();
        let sdirs =
            (0..bmin.total_switches()).map(|_| cfg.switch_dir.map(SwitchDirectory::new)).collect();
        // Static routes are a function of (endpoint pair) only; computing
        // the full n*n tables once keeps route construction off the
        // per-message hot path.
        let fwd_routes = routes::RouteTable::forward(&bmin);
        let bwd_routes = routes::RouteTable::backward(&bmin);
        System {
            map,
            bmin,
            net: HopNetwork::new(cfg.switch, cfg.nodes),
            nodes,
            homes: (0..cfg.nodes)
                .map(|_| HomeDirectory::with_protocol(8, cfg.nodes, cfg.protocol))
                .collect(),
            home_ctrl: vec![Resource::new(); cfg.nodes],
            dram: (0..cfg.nodes)
                .map(|_| BankedResource::new(cfg.memory.interleave as usize))
                .collect(),
            sdirs,
            queue: EventQueue::new(),
            fwd_routes,
            bwd_routes,
            msg_seq: 0,
            txn_seq: 0,
            barrier: BarrierState::default(),
            workload: workload.name.clone(),
            writebacks: 0,
            histogram: None,
            end_time: 0,
            faults: None,
            watchdog: None,
            sim_errors: Vec::new(),
            lost_log: Vec::new(),
            cfg,
        }
    }

    fn linear(&self, sw: SwitchId) -> usize {
        sw.stage as usize * self.bmin.switches_per_stage() + sw.index as usize
    }

    fn next_id(&mut self) -> u64 {
        self.msg_seq += 1;
        self.msg_seq
    }

    fn next_txn(&mut self) -> u64 {
        self.txn_seq += 1;
        self.txn_seq
    }

    /// Transaction id of `p`'s outstanding miss on `block` (0 if none).
    fn txn_of(&self, p: NodeId, block: BlockAddr) -> u64 {
        self.nodes[p as usize].mshrs.get(&block).map_or(0, |m| m.txn)
    }

    /// Switch traversals of `r` (routes end with one endpoint link beyond
    /// the last switch).
    #[inline]
    fn route_switch_count(&self, r: &RouteRef) -> usize {
        match r {
            RouteRef::Fwd(..) | RouteRef::Bwd(..) => self.fwd_routes.switches_per_route(),
            RouteRef::Dyn(route) => route.switches.len(),
        }
    }

    /// The `i`-th switch of `r` (copied out so no borrow outlives the call).
    #[inline]
    fn route_switch(&self, r: &RouteRef, i: usize) -> SwitchId {
        match r {
            RouteRef::Fwd(a, b) => self.fwd_routes.switches(*a, *b)[i],
            RouteRef::Bwd(a, b) => self.bwd_routes.switches(*a, *b)[i],
            RouteRef::Dyn(route) => route.switches[i],
        }
    }

    /// The `i`-th link of `r`.
    #[inline]
    fn route_link(&self, r: &RouteRef, i: usize) -> routes::LinkId {
        match r {
            RouteRef::Fwd(a, b) => self.fwd_routes.links(*a, *b)[i],
            RouteRef::Bwd(a, b) => self.bwd_routes.links(*a, *b)[i],
            RouteRef::Dyn(route) => route.links[i],
        }
    }

    /// Runs the simulation to completion and returns the report.
    ///
    /// # Panics
    /// Panics on protocol deadlock (event queue drains with undrained
    /// nodes) or when `opts.max_cycles` is exceeded (livelock guard).
    pub fn run(self, opts: RunOptions) -> ExecutionReport {
        if opts.observers.enabled() {
            let shape =
                MachineShape { nodes: self.cfg.nodes, switches: self.bmin.total_switches() };
            let mut set = ObserverSet::new(opts.observers, shape);
            let mut report = self.run_probed(opts, &mut set);
            let mut obs = set.finish();
            // The flight recorder is a black box: it records always but
            // its dump only surfaces when the run is anomalous, so healthy
            // reports stay byte-identical with or without it.
            let anomalous = report.watchdog.is_some()
                || report.coherence.as_ref().is_some_and(|c| !c.ok())
                || report.faults.is_some_and(|f| f.lost > 0)
                || !report.sim_errors.is_empty();
            if !anomalous {
                obs.flight = None;
            }
            if !obs.is_empty() {
                report.obs = Some(obs);
            }
            report
        } else {
            self.run_probed(opts, &mut NullProbe)
        }
    }

    /// [`System::run`] generic over the attached [`Probe`]. With
    /// [`NullProbe`] every hook inlines to nothing.
    pub fn run_probed<P: Probe>(mut self, opts: RunOptions, probe: &mut P) -> ExecutionReport {
        if opts.collect_histogram {
            self.histogram = Some(BlockHistogram::new());
        }
        if let Some(policy) = match opts.transient_policy {
            TransientReadPolicy::Retry => None,
            p => Some(p),
        } {
            // Rebuild switch directories with the requested policy.
            if let Some(sd_cfg) = self.cfg.switch_dir {
                for s in &mut self.sdirs {
                    *s = Some(SwitchDirectory::with_policy(sd_cfg, policy));
                }
            }
        }
        if let Some(plan) = opts.faults.filter(FaultPlan::is_active) {
            self.faults = Some(FaultSession::new(plan));
        }
        self.watchdog = opts.watchdog.map(Watchdog::new);
        for p in 0..self.cfg.nodes {
            self.queue.schedule_at(0, Ev::Proc(p as NodeId));
        }
        while let Some((t, ev)) = self.queue.pop() {
            if t > opts.max_cycles {
                if self.watchdog.is_some() {
                    let lineage = self.stuck_lineage();
                    let detail = format!(
                        "exceeded max_cycles={} (workload={}, pending events={}, lost={:?})",
                        opts.max_cycles,
                        self.workload,
                        self.queue.len(),
                        self.lost_log
                    );
                    if let Some(wd) = self.watchdog.as_mut() {
                        wd.trip(WatchdogKind::BudgetExceeded, t, lineage, detail);
                    }
                    break;
                }
                panic!(
                    "simulation exceeded {} cycles: livelock or runaway workload \
                     (workload={}, pending events={})",
                    opts.max_cycles,
                    self.workload,
                    self.queue.len()
                );
            }
            if self.watchdog.as_ref().is_some_and(|wd| wd.check_livelock(t)) {
                let lineage = self.stuck_lineage();
                let detail = format!(
                    "no forward progress (workload={}, pending events={}, lost={:?})",
                    self.workload,
                    self.queue.len(),
                    self.lost_log
                );
                if let Some(wd) = self.watchdog.as_mut() {
                    wd.trip(WatchdogKind::Livelock, t, lineage, detail);
                }
                break;
            }
            if self.faults.is_some() {
                self.apply_fault_epochs(t, probe);
            }
            self.end_time = self.end_time.max(t);
            probe.tick(t, self.queue.len());
            match ev {
                Ev::Proc(p) => self.on_proc(p, t, probe),
                Ev::Msg(infl) => self.on_msg(infl, t, probe),
                Ev::HomeExec { home, msg } => self.on_home_exec(home, *msg, t, probe),
                Ev::Retry { node, block } => self.on_retry(node, block, t, probe),
                Ev::Relaunch { flight, attempt } => {
                    let InFlight { msg, route, .. } = *flight;
                    self.launch_attempt(msg, route, t, attempt, probe);
                }
            }
        }
        let tripped = self.watchdog.as_ref().is_some_and(Watchdog::tripped);
        if !tripped {
            let stuck: Vec<&Node> = self.nodes.iter().filter(|n| !n.drained()).collect();
            if let Some(n) = stuck.first() {
                if self.watchdog.is_some() {
                    let at = self.end_time;
                    let lineage = self.stuck_lineage();
                    let detail = format!(
                        "event queue drained with {} undrained node(s) (workload={}, lost={:?})",
                        stuck.len(),
                        self.workload,
                        self.lost_log
                    );
                    if let Some(wd) = self.watchdog.as_mut() {
                        wd.trip(WatchdogKind::QuiescenceFailure, at, lineage, detail);
                    }
                } else {
                    panic!(
                        "protocol deadlock: node {} stuck in {:?} with {} MSHRs (workload={})",
                        n.id,
                        n.state,
                        n.mshrs.len(),
                        self.workload
                    );
                }
            }
        }
        self.build_report(opts.verify_coherence)
    }

    /// Lineage of every unfinished transaction, sorted for determinism
    /// (MSHR maps iterate in arbitrary order).
    fn stuck_lineage(&self) -> Vec<StuckMsg> {
        let mut lineage = Vec::new();
        for n in &self.nodes {
            for (&block, m) in &n.mshrs {
                lineage.push(StuckMsg {
                    node: n.id,
                    block,
                    kind: match m.kind {
                        MshrKind::Read => "read",
                        MshrKind::Write => "write",
                    },
                    txn: m.txn,
                    issued_at: m.issued_at,
                    retry_pending: m.retry_pending,
                });
            }
        }
        lineage.sort_by_key(|s| (s.node, s.block.0));
        lineage
    }

    /// Fires any fault epochs (ECC scrub pulses, the eviction storm, the
    /// whole-switch disable/enable latches) that became due at `t`.
    fn apply_fault_epochs<P: Probe>(&mut self, t: Cycle, _probe: &mut P) {
        let Some(fs) = self.faults.as_mut() else { return };
        let scrubs = fs.due_scrubs(t);
        let storm = fs.storm_due(t);
        let disable = fs.disable_due(t);
        let enable = fs.enable_due(t);
        let mut scrubbed = 0u64;
        let mut storm_evicted = 0u64;
        for epoch in scrubs {
            let nonce_of = |sw: u64| self.faults.as_ref().map(|f| f.scrub_nonce(epoch, sw));
            for i in 0..self.sdirs.len() {
                let Some(nonce) = nonce_of(i as u64) else { continue };
                if let Some(sd) = self.sdirs[i].as_mut() {
                    if sd.scrub(nonce).is_some() {
                        scrubbed += 1;
                    }
                }
            }
        }
        if let Some(n) = storm {
            for i in 0..self.sdirs.len() {
                let nonce =
                    self.faults.as_ref().map(|f| f.scrub_nonce(u64::MAX, i as u64)).unwrap_or(0);
                if let Some(sd) = self.sdirs[i].as_mut() {
                    storm_evicted += u64::from(sd.force_evict(n, nonce));
                }
            }
        }
        if disable {
            for sd in self.sdirs.iter_mut().flatten() {
                sd.set_disabled(true);
            }
        }
        if enable {
            for sd in self.sdirs.iter_mut().flatten() {
                sd.set_disabled(false);
            }
        }
        if let Some(fs) = self.faults.as_mut() {
            fs.stats.scrubbed += scrubbed;
            fs.stats.storm_evicted += storm_evicted;
            if disable {
                fs.stats.sd_disables += 1;
            }
            if enable {
                fs.stats.sd_enables += 1;
            }
        }
    }

    fn build_report(mut self, verify_coherence: bool) -> ExecutionReport {
        // Directory-level protocol violations (out-of-range node ids, stray
        // inval acks) become structured sim errors so a release run can
        // never silently corrupt sharer state. Home order keeps this
        // deterministic.
        for h in &mut self.homes {
            for e in h.take_errors() {
                self.sim_errors.push(SimError::Protocol { context: e.context, detail: e.detail });
            }
        }
        let mut r = ExecutionReport {
            workload: std::mem::take(&mut self.workload),
            cycles: self.end_time,
            network_hops: self.net.messages_moved(),
            writebacks: self.writebacks,
            histogram: self.histogram.take(),
            ..Default::default()
        };
        for n in &self.nodes {
            r.reads.merge(&n.reads);
            r.refs_executed += n.refs_executed;
        }
        for h in &self.homes {
            r.dir.merge(&h.stats());
        }
        for s in self.sdirs.iter().flatten() {
            r.sd.merge(&s.stats());
        }
        if verify_coherence {
            r.coherence = Some(coherence::check(&self));
        }
        r.metrics = self.snapshot_metrics(&r);
        r.faults = self.faults.as_ref().map(|fs| fs.stats);
        r.sim_errors = self.sim_errors.iter().map(SimError::to_string).collect();
        r.watchdog = self.watchdog.take().and_then(Watchdog::into_report);
        r
    }

    /// Assembles the deterministic component-metrics registry from every
    /// structure's counters. Runs once, after the simulation, so it costs
    /// the hot loops nothing. Names follow `component.sub.metric`; merge
    /// semantics are sum for counts and max-across-instances for gauges —
    /// both the `current` and `peak` side, so every gauge satisfies
    /// `current <= peak` (mixing scopes is how `sd.occupancy` once reported
    /// a current above its own high-water mark).
    fn snapshot_metrics(&self, r: &ExecutionReport) -> dresar_obs::MetricsRegistry {
        let mut m = dresar_obs::MetricsRegistry::new();

        // Simulated time (lets tools compute cycles/sec without re-parsing
        // the enclosing report).
        m.counter("sim.cycles", r.cycles);

        // Event engine: queue pressure.
        m.counter("engine.queue.scheduled", self.queue.scheduled_total());
        m.gauge("engine.queue.depth", self.queue.len() as u64, self.queue.peak_len() as u64);

        // Processor-side totals.
        m.counter("proc.refs_executed", r.refs_executed);
        m.counter("reads.clean", r.reads.clean);
        m.counter("reads.ctoc_home", r.reads.ctoc_home);
        m.counter("reads.ctoc_switch", r.reads.ctoc_switch);
        m.counter("reads.latency_cycles", r.reads.latency_cycles);
        m.counter("reads.stall_cycles", r.reads.stall_cycles);
        m.counter("reads.retries", r.reads.retries);

        // Cache hierarchy, aggregated over nodes.
        let mut cache = dresar_cache::HierarchyStats::default();
        for n in &self.nodes {
            cache.merge(&n.hier.stats());
        }
        m.counter("cache.l1_read_hits", cache.l1_read_hits);
        m.counter("cache.l2_read_hits", cache.l2_read_hits);
        m.counter("cache.read_misses", cache.read_misses);
        m.counter("cache.write_hits", cache.write_hits);
        m.counter("cache.write_upgrades", cache.write_upgrades);
        m.counter("cache.write_misses", cache.write_misses);
        m.counter("cache.fills", cache.fills);
        m.counter("cache.writebacks", cache.writebacks);
        m.counter("cache.ctoc_serves", cache.ctoc_serves);

        // Home directories (FSM occupancy peaks are max over homes).
        m.counter("home.lookups", r.dir.lookups);
        m.counter("home.reads_clean", r.dir.reads_clean);
        m.counter("home.reads_ctoc", r.dir.reads_ctoc);
        m.counter("home.writes_ctoc", r.dir.writes_ctoc);
        m.counter("home.inval_rounds", r.dir.inval_rounds);
        m.counter("home.invals_sent", r.dir.invals_sent);
        m.counter("home.naks", r.dir.naks);
        m.counter("home.queued", r.dir.queued);
        m.counter("home.marked_completions", r.dir.marked_completions);
        // Per-instance scope on both sides: `current` is the busiest single
        // home's end-of-run occupancy and `peak` the busiest single home's
        // high-water mark, so `current <= peak` holds by construction. A
        // quiesced run reports zero; residual busy/pending entries cross-
        // check the coherence audit's quiescence verdict.
        let home_busy = self.homes.iter().map(HomeDirectory::busy_now).max().unwrap_or(0);
        let home_pending = self.homes.iter().map(HomeDirectory::pending_now).max().unwrap_or(0);
        m.gauge("home.busy", home_busy, r.dir.peak_busy);
        m.gauge("home.pending", home_pending, r.dir.peak_pending);

        // Home controller + DRAM banks as contended resources.
        let (mut ctrl_acq, mut ctrl_stall, mut ctrl_busy) = (0u64, 0u64, 0u64);
        for c in &self.home_ctrl {
            ctrl_acq += c.acquisitions();
            ctrl_stall += c.stall_cycles();
            ctrl_busy += c.occupied_cycles();
        }
        m.counter("home.ctrl.acquisitions", ctrl_acq);
        m.counter("home.ctrl.stall_cycles", ctrl_stall);
        m.counter("home.ctrl.busy_cycles", ctrl_busy);
        let (mut dram_acq, mut dram_stall, mut dram_busy) = (0u64, 0u64, 0u64);
        for d in &self.dram {
            dram_acq += d.acquisitions();
            dram_stall += d.stall_cycles();
            dram_busy += d.occupied_cycles();
        }
        m.counter("dram.acquisitions", dram_acq);
        m.counter("dram.stall_cycles", dram_stall);
        m.counter("dram.busy_cycles", dram_busy);

        // Switch directories (present only when configured).
        if self.sdirs.iter().any(Option::is_some) {
            // Per-instance scope, matching `SdStats::merge` (peaks are the
            // busiest *single* switch's high-water mark): `current` must use
            // the same aggregation or it can exceed its own peak, as the
            // committed telemetry once did by summing across switches.
            let occupancy: u64 =
                self.sdirs.iter().flatten().map(|s| s.occupancy() as u64).max().unwrap_or(0);
            let transients: u64 =
                self.sdirs.iter().flatten().map(|s| s.transient_count() as u64).max().unwrap_or(0);
            m.counter("sd.snoops", r.sd.snoops);
            m.counter("sd.inserts", r.sd.inserts);
            m.counter("sd.inserts_blocked", r.sd.inserts_blocked);
            m.counter("sd.read_hits", r.sd.read_hits);
            m.counter("sd.transient_retries", r.sd.transient_retries);
            m.counter("sd.readers_accumulated", r.sd.readers_accumulated);
            m.counter("sd.invalidations", r.sd.invalidations);
            m.counter("sd.write_retries", r.sd.write_retries);
            m.counter("sd.copybacks_marked", r.sd.copybacks_marked);
            m.counter("sd.writeback_replies", r.sd.writeback_replies);
            m.counter("sd.evictions", r.sd.evictions);
            m.counter("sd.evictions_transient", r.sd.evictions_transient);
            m.gauge("sd.occupancy", occupancy, r.sd.peak_occupancy);
            m.gauge("sd.transients", transients, r.sd.peak_transients);
        }

        // Interconnect links.
        let (link_acq, link_stall) = self.net.contention();
        m.counter("net.messages", self.net.messages_moved());
        m.counter("net.flits", self.net.flits_moved());
        m.counter("net.link_acquisitions", link_acq);
        m.counter("net.link_stall_cycles", link_stall);
        m.counter("net.writebacks", self.writebacks);

        // Fault injection and robustness (present only when active, so
        // fault-free telemetry is unchanged byte-for-byte).
        if let Some(fs) = &self.faults {
            m.counter("faults.dropped", fs.stats.dropped);
            m.counter("faults.retransmissions", fs.stats.retransmissions);
            m.counter("faults.lost", fs.stats.lost);
            m.counter("faults.scrubbed", fs.stats.scrubbed);
            m.counter("faults.storm_evicted", fs.stats.storm_evicted);
            m.counter("faults.sd_disables", fs.stats.sd_disables);
            m.counter("faults.sd_enables", fs.stats.sd_enables);
        }
        if let Some(wd) = self.watchdog.as_ref().and_then(Watchdog::report) {
            m.counter("watchdog.tripped", 1);
            m.counter("watchdog.at", wd.at);
            m.counter("watchdog.stuck_transactions", wd.lineage.len() as u64);
        }
        if !self.sim_errors.is_empty() {
            m.counter("errors.sim", self.sim_errors.len() as u64);
        }

        m
    }

    // ------------------------------------------------------------------
    // Processor execution
    // ------------------------------------------------------------------

    fn on_proc<P: Probe>(&mut self, p: NodeId, t: Cycle, probe: &mut P) {
        let issue_width = self.cfg.processor.issue_width as Cycle;
        let wb_cap = self.cfg.processor.write_buffer_entries;
        let mut t = t.max(self.nodes[p as usize].local_time);
        loop {
            let node = &mut self.nodes[p as usize];
            if node.state != ProcState::Ready {
                return;
            }
            let Some(item) = node.items.get(node.pc).copied() else {
                node.state = ProcState::Done;
                node.local_time = t;
                return;
            };
            match item {
                StreamItem::Barrier(id) => {
                    node.pc += 1;
                    node.local_time = t;
                    if node.writes_inflight > 0 {
                        // Release semantics: prior stores must complete
                        // before the barrier is announced.
                        node.state = ProcState::DrainForBarrier(id);
                    } else {
                        node.state = ProcState::AtBarrier(id);
                        self.barrier_arrive(p, t);
                    }
                    return;
                }
                StreamItem::Ref(r) => {
                    t += (r.work as Cycle).div_ceil(issue_width);
                    let block = self.map.block(r.addr);
                    match r.kind {
                        RefKind::Read => match self.nodes[p as usize].hier.read(block) {
                            AccessOutcome::L1Hit { latency } | AccessOutcome::L2Hit { latency } => {
                                t += latency as Cycle;
                                let node = &mut self.nodes[p as usize];
                                node.pc += 1;
                                node.refs_executed += 1;
                            }
                            outcome => {
                                let t_miss = t + outcome.latency() as Cycle;
                                let node = &mut self.nodes[p as usize];
                                node.state = ProcState::WaitRead(block);
                                node.stall_since = t;
                                node.local_time = t;
                                if node.mshrs.contains_key(&block) {
                                    // A write to this block is already in
                                    // flight: wait for its completion; the
                                    // re-executed read will hit.
                                    return;
                                }
                                let txn = self.next_txn();
                                self.nodes[p as usize].mshrs.insert(
                                    block,
                                    Mshr {
                                        kind: MshrKind::Read,
                                        issued_at: t,
                                        then_write: false,
                                        inval_pending: false,
                                        retry_pending: false,
                                        deferred_ctoc: None,
                                        txn,
                                    },
                                );
                                probe.read_issue(p, block, t, t_miss, txn);
                                self.send_request(p, block, MsgType::ReadRequest, t_miss, probe);
                                return;
                            }
                        },
                        RefKind::Write => match self.nodes[p as usize].hier.write(block) {
                            AccessOutcome::L1Hit { latency } | AccessOutcome::L2Hit { latency } => {
                                t += latency as Cycle;
                                let node = &mut self.nodes[p as usize];
                                node.pc += 1;
                                node.refs_executed += 1;
                            }
                            outcome => {
                                let t_miss = t + outcome.latency() as Cycle;
                                let node = &mut self.nodes[p as usize];
                                if let Some(m) = node.mshrs.get_mut(&block) {
                                    // Coalesce into the outstanding
                                    // transaction; a pending read upgrades
                                    // on fill.
                                    if m.kind == MshrKind::Read {
                                        m.then_write = true;
                                    }
                                    node.pc += 1;
                                    node.refs_executed += 1;
                                    t += 1;
                                } else if node.writes_inflight >= wb_cap {
                                    node.state = ProcState::WaitWriteBuffer;
                                    node.local_time = t;
                                    return;
                                } else {
                                    node.writes_inflight += 1;
                                    node.pc += 1;
                                    node.refs_executed += 1;
                                    let txn = self.next_txn();
                                    self.nodes[p as usize].mshrs.insert(
                                        block,
                                        Mshr {
                                            kind: MshrKind::Write,
                                            issued_at: t,
                                            then_write: false,
                                            inval_pending: false,
                                            retry_pending: false,
                                            deferred_ctoc: None,
                                            txn,
                                        },
                                    );
                                    self.send_request(
                                        p,
                                        block,
                                        MsgType::WriteRequest,
                                        t_miss,
                                        probe,
                                    );
                                    t += 1;
                                }
                            }
                        },
                    }
                }
            }
        }
    }

    fn barrier_arrive(&mut self, _p: NodeId, t: Cycle) {
        self.barrier.count += 1;
        self.barrier.max_time = self.barrier.max_time.max(t);
        if self.barrier.count == self.cfg.nodes {
            let release = self.barrier.max_time + 1;
            self.barrier = BarrierState::default();
            for q in 0..self.cfg.nodes {
                let node = &mut self.nodes[q];
                if matches!(node.state, ProcState::AtBarrier(_)) {
                    node.state = ProcState::Ready;
                    node.local_time = release;
                    self.queue.schedule_at(release, Ev::Proc(q as NodeId));
                }
            }
        }
    }

    fn on_retry<P: Probe>(&mut self, p: NodeId, block: BlockAddr, t: Cycle, probe: &mut P) {
        let node = &mut self.nodes[p as usize];
        let Some(m) = node.mshrs.get_mut(&block) else {
            return; // transaction completed before the retry fired
        };
        m.retry_pending = false;
        node.reads.retries += 1;
        let kind = match m.kind {
            MshrKind::Read => {
                probe.read_retry(p, block, t, m.txn);
                MsgType::ReadRequest
            }
            MshrKind::Write => MsgType::WriteRequest,
        };
        self.send_request(p, block, kind, t, probe);
    }

    // ------------------------------------------------------------------
    // Message plumbing
    // ------------------------------------------------------------------

    fn flits(&self, msg: &Message) -> u32 {
        msg.flits(self.cfg.l2.line_bytes, self.cfg.switch.flit_bytes)
    }

    fn launch<P: Probe>(&mut self, msg: Message, route: RouteRef, t: Cycle, probe: &mut P) {
        self.launch_attempt(msg, route, t, 0, probe);
    }

    /// Launches (or retransmits) a message. With fault injection active the
    /// link may drop it: the sender's interface retries after exponential
    /// backoff until [`FaultPlan::max_retries`], then the message is
    /// permanently lost (the watchdog's problem).
    fn launch_attempt<P: Probe>(
        &mut self,
        msg: Message,
        route: RouteRef,
        t: Cycle,
        attempt: u32,
        probe: &mut P,
    ) {
        if let RouteRef::Dyn(r) = &route {
            debug_assert!(r.well_formed());
        }
        if let Some(fs) = self.faults.as_mut() {
            match fs.on_launch(msg.id, msg.kind, attempt) {
                LaunchVerdict::Deliver => {}
                LaunchVerdict::DropRetry { backoff } => {
                    self.queue.schedule_at(
                        t + backoff,
                        Ev::Relaunch {
                            flight: Box::new(InFlight { msg, route, hop: 0 }),
                            attempt: attempt + 1,
                        },
                    );
                    return;
                }
                LaunchVerdict::Lost => {
                    self.lost_log.push(format!(
                        "{:?} msg {} for block {:#x} (attempt {attempt})",
                        msg.kind, msg.id, msg.block.0
                    ));
                    return;
                }
            }
        }
        let flits = self.flits(&msg);
        probe.msg_send(t, &msg);
        let first_link = self.route_link(&route, 0);
        let arrive = self.net.traverse_link_probed(first_link, t, flits, msg.kind, probe);
        self.queue.schedule_at(arrive, Ev::Msg(Box::new(InFlight { msg, route, hop: 0 })));
    }

    fn send_request<P: Probe>(
        &mut self,
        p: NodeId,
        block: BlockAddr,
        kind: MsgType,
        t: Cycle,
        probe: &mut P,
    ) {
        // A newly issued (or re-issued) transaction is forward progress:
        // distinguishes a node computing locally from a livelocked one.
        if let Some(wd) = self.watchdog.as_mut() {
            wd.progress(t);
        }
        let home = self.map.home_of_block(block);
        let txn = self.txn_of(p, block);
        let msg =
            Message::new(self.next_id(), kind, block, Endpoint::Proc(p), Endpoint::Mem(home), p, t)
                .with_txn(txn);
        self.launch(msg, RouteRef::Fwd(p, home), t, probe);
    }

    fn send_from_proc<P: Probe>(&mut self, msg: Message, t: Cycle, probe: &mut P) {
        let src = match msg.src {
            Endpoint::Proc(p) => p,
            _ => unreachable!("send_from_proc with non-proc source"),
        };
        let route = match msg.dst {
            Endpoint::Mem(h) => RouteRef::Fwd(src, h),
            Endpoint::Proc(q) => match routes::proc_to_proc(&self.bmin, src, q, msg.block.0) {
                Ok(r) => RouteRef::Dyn(Rc::new(r)),
                Err(e) => {
                    self.sim_errors.push(e);
                    return;
                }
            },
            Endpoint::Switch { .. } => unreachable!("messages never target switches"),
        };
        self.launch(msg, route, t, probe);
    }

    fn send_from_mem<P: Probe>(&mut self, msg: Message, t: Cycle, probe: &mut P) {
        let src = match msg.src {
            Endpoint::Mem(h) => h,
            _ => unreachable!("send_from_mem with non-mem source"),
        };
        let dst = match msg.dst {
            Endpoint::Proc(p) => p,
            _ => unreachable!("memory only sends to processors"),
        };
        self.launch(msg, RouteRef::Bwd(src, dst), t, probe);
    }

    fn send_from_switch<P: Probe>(
        &mut self,
        sw: SwitchId,
        gen: GenMsg,
        orig: &Message,
        t: Cycle,
        probe: &mut P,
    ) {
        let (kind, to, owner) = match gen {
            GenMsg::CtoCRequest { owner, requester } => {
                (MsgType::CtoCRequest, owner, Some(requester))
            }
            GenMsg::Retry { to } => (MsgType::Retry, to, None),
            GenMsg::DataReply { to } => (MsgType::ReadReply, to, None),
        };
        let requester = match gen {
            GenMsg::CtoCRequest { requester, .. } => requester,
            GenMsg::Retry { to } | GenMsg::DataReply { to } => to,
        };
        let mut msg = Message::new(
            self.next_id(),
            kind,
            orig.block,
            Endpoint::Switch { stage: sw.stage, index: sw.index },
            Endpoint::Proc(to),
            requester,
            orig.issued_at,
        )
        .from_switch()
        .with_txn(orig.txn);
        if let (MsgType::CtoCRequest, Some(_)) = (kind, owner) {
            msg.owner = Some(to);
        }
        // Targets of CtoC requests and data replies are always down-
        // reachable (placement invariant); NAKs to foreign CtoC requesters
        // may need to ascend and turn around.
        let route = match routes::from_switch_to_proc_via(&self.bmin, sw, to, orig.block.0) {
            Ok(r) => RouteRef::Dyn(Rc::new(r)),
            Err(e) => {
                self.sim_errors.push(e);
                return;
            }
        };
        // Generation overlaps the switch's own pipeline: one core delay.
        let depart = t + self.net.core_delay();
        self.launch(msg, route, depart, probe);
    }

    fn switch_loc(&self, sw: SwitchId) -> SwitchLoc {
        SwitchLoc { stage: sw.stage, index: sw.index, linear: self.linear(sw) as u16 }
    }

    fn on_msg<P: Probe>(&mut self, mut infl: Box<InFlight>, t: Cycle, probe: &mut P) {
        let hop = infl.hop;
        if hop < self.route_switch_count(&infl.route) {
            let sw = self.route_switch(&infl.route, hop);
            let idx = self.linear(sw);
            let loc = self.switch_loc(sw);
            probe.msg_hop(t, &infl.msg, loc);
            let action = match self.sdirs[idx].as_mut() {
                Some(sd) => {
                    let action = sd.snoop_probed(&mut infl.msg, loc, t, probe);
                    let sd = self.sdirs[idx].as_ref().unwrap();
                    probe.sd_occupancy(t, loc, sd.occupancy(), sd.transient_count());
                    action
                }
                None => SnoopAction::Forward,
            };
            // A sunk ReadRequest reached its service point at this switch:
            // either an SD hit (CtoC generated) or an accumulated wait.
            if infl.msg.kind == MsgType::ReadRequest
                && matches!(action, SnoopAction::Sink | SnoopAction::SinkSend(_))
            {
                let is_service = match &action {
                    SnoopAction::Sink => true,
                    SnoopAction::SinkSend(gen) => {
                        gen.iter().any(|g| matches!(g, GenMsg::CtoCRequest { .. }))
                    }
                    _ => false,
                };
                if is_service {
                    probe.read_service_arrive(
                        infl.msg.requester,
                        infl.msg.block,
                        ServicePoint::Switch(loc),
                        t,
                        infl.msg.txn,
                    );
                }
            }
            match action {
                SnoopAction::Forward => self.forward_hop(infl, t, probe),
                SnoopAction::Sink => probe.msg_sink(t, &infl.msg, loc),
                SnoopAction::SinkSend(gen) => {
                    probe.msg_sink(t, &infl.msg, loc);
                    for g in gen {
                        self.send_from_switch(sw, g, &infl.msg, t, probe);
                    }
                }
                SnoopAction::ForwardSend(gen) => {
                    for g in gen {
                        self.send_from_switch(sw, g, &infl.msg, t, probe);
                    }
                    self.forward_hop(infl, t, probe);
                }
            }
        } else {
            // Endpoint delivery: the header arrived at `t`; data-bearing
            // messages complete after the tail.
            let InFlight { msg, .. } = *infl;
            let flits = self.flits(&msg);
            let t_full = t + self.net.tail_lag(flits);
            probe.msg_deliver(t_full, &msg);
            match msg.dst {
                Endpoint::Mem(h) => self.on_home_arrival(h, msg, t_full, probe),
                Endpoint::Proc(p) => self.on_proc_delivery(p, msg, t_full, probe),
                Endpoint::Switch { .. } => unreachable!("messages never terminate at switches"),
            }
        }
    }

    /// Advances `infl` one hop, reusing its allocation: the box travels
    /// through the event queue unchanged, only `hop` advances.
    fn forward_hop<P: Probe>(&mut self, mut infl: Box<InFlight>, t: Cycle, probe: &mut P) {
        let flits = self.flits(&infl.msg);
        let depart = t + self.net.core_delay();
        let link = self.route_link(&infl.route, infl.hop + 1);
        let arrive = self.net.traverse_link_probed(link, depart, flits, infl.msg.kind, probe);
        infl.hop += 1;
        self.queue.schedule_at(arrive, Ev::Msg(infl));
    }

    // ------------------------------------------------------------------
    // Home node (memory + directory controller)
    // ------------------------------------------------------------------

    fn on_home_arrival<P: Probe>(&mut self, h: NodeId, msg: Message, t: Cycle, probe: &mut P) {
        let occ = self.cfg.memory.controller_occupancy as Cycle;
        let start = self.home_ctrl[h as usize].acquire(t, occ);
        let done = match msg.kind {
            MsgType::InvalAck => start + occ,
            _ => {
                // Directory state lives in DRAM: every lookup/update pays
                // the access latency (the cost switch directories dodge).
                let dram = self.cfg.memory.access_cycles as Cycle;
                let dstart = self.dram[h as usize].acquire(msg.block.0, start + occ, dram);
                dstart + dram
            }
        };
        probe.home_service(h, msg.block, msg.kind, t, start, done);
        if msg.kind == MsgType::ReadRequest {
            probe.read_service_arrive(msg.requester, msg.block, ServicePoint::Home(h), t, msg.txn);
        }
        self.queue.schedule_at(done, Ev::HomeExec { home: h, msg: Box::new(msg) });
    }

    fn on_home_exec<P: Probe>(&mut self, h: NodeId, msg: Message, t: Cycle, probe: &mut P) {
        match msg.kind {
            MsgType::ReadRequest => {
                let act = self.homes[h as usize].handle_read_probed(
                    msg.block,
                    msg.requester,
                    h,
                    t,
                    probe,
                );
                self.apply_dir_action(h, msg.block, act, t, probe);
            }
            MsgType::WriteRequest => {
                let act = self.homes[h as usize].handle_write_probed(
                    msg.block,
                    msg.requester,
                    h,
                    t,
                    probe,
                );
                self.apply_dir_action(h, msg.block, act, t, probe);
            }
            MsgType::CopyBack => {
                let sender = match msg.src {
                    Endpoint::Proc(p) => p,
                    _ => unreachable!("copybacks originate at caches"),
                };
                // A copyback whose `owner` field is set announces that the
                // supplier retained the line OWNED (MOESI dirty sharing).
                let retained = msg.owner.is_some();
                let c = self.homes[h as usize].handle_copyback_probed(
                    msg.block,
                    sender,
                    msg.carried_sharers,
                    retained,
                    h,
                    t,
                    probe,
                );
                self.apply_completion(h, msg.block, c, t, probe);
            }
            MsgType::WriteBack => {
                let sender = match msg.src {
                    Endpoint::Proc(p) => p,
                    _ => unreachable!("writebacks originate at caches"),
                };
                let c = self.homes[h as usize].handle_writeback_probed(
                    msg.block,
                    sender,
                    msg.carried_sharers,
                    h,
                    t,
                    probe,
                );
                self.apply_completion(h, msg.block, c, t, probe);
            }
            MsgType::InvalAck => {
                let c = self.homes[h as usize].handle_inval_ack_probed(msg.block, h, t, probe);
                self.apply_completion(h, msg.block, c, t, probe);
            }
            other => unreachable!("home received unexpected {other:?}"),
        }
    }

    fn apply_completion<P: Probe>(
        &mut self,
        h: NodeId,
        block: BlockAddr,
        c: dresar_directory::Completion,
        t: Cycle,
        probe: &mut P,
    ) {
        for act in c.actions {
            self.apply_dir_action(h, block, act, t, probe);
        }
        for QueuedReq { block, requester, kind } in c.replay {
            let act = match kind {
                ReqKind::Read => {
                    self.homes[h as usize].handle_read_probed(block, requester, h, t, probe)
                }
                ReqKind::Write => {
                    self.homes[h as usize].handle_write_probed(block, requester, h, t, probe)
                }
            };
            self.apply_dir_action(h, block, act, t, probe);
        }
    }

    fn apply_dir_action<P: Probe>(
        &mut self,
        h: NodeId,
        block: BlockAddr,
        act: DirAction,
        t: Cycle,
        probe: &mut P,
    ) {
        match act {
            DirAction::ReadReplyClean { to } => {
                let txn = self.txn_of(to, block);
                probe.read_service_done(to, block, t, txn);
                let msg = Message::new(
                    self.next_id(),
                    MsgType::ReadReply,
                    block,
                    Endpoint::Mem(h),
                    Endpoint::Proc(to),
                    to,
                    t,
                )
                .with_txn(txn);
                self.send_from_mem(msg, t, probe);
            }
            DirAction::ReadReplyExcl { to, seq } => {
                // MESI/MOESI unshared fill: a ReadReply whose `owner` field
                // names the requester is the EXCLUSIVE grant (under MSI the
                // field is always absent on read replies), and `owner_seq`
                // carries the booked ownership instance.
                let txn = self.txn_of(to, block);
                probe.read_service_done(to, block, t, txn);
                let msg = Message::new(
                    self.next_id(),
                    MsgType::ReadReply,
                    block,
                    Endpoint::Mem(h),
                    Endpoint::Proc(to),
                    to,
                    t,
                )
                .with_owner(to)
                .with_owner_seq(seq)
                .with_txn(txn);
                self.send_from_mem(msg, t, probe);
            }
            DirAction::WriteReplyGrant { to, seq } => {
                let msg = Message::new(
                    self.next_id(),
                    MsgType::WriteReply,
                    block,
                    Endpoint::Mem(h),
                    Endpoint::Proc(to),
                    to,
                    t,
                )
                .with_owner_seq(seq)
                .with_txn(self.txn_of(to, block));
                self.send_from_mem(msg, t, probe);
            }
            DirAction::ForwardCtoC { owner, requester, write_intent, owner_seq } => {
                let mut msg = Message::new(
                    self.next_id(),
                    MsgType::CtoCRequest,
                    block,
                    Endpoint::Mem(h),
                    Endpoint::Proc(owner),
                    requester,
                    t,
                )
                .with_owner(owner)
                .with_owner_seq(owner_seq)
                .with_txn(self.txn_of(requester, block));
                if write_intent {
                    msg = msg.with_write_intent();
                }
                self.send_from_mem(msg, t, probe);
            }
            DirAction::Invalidate { targets, writer } => {
                // Invalidations serve the writer's transaction: they fan
                // out of it and their acks converge back into it.
                let txn = self.txn_of(writer, block);
                for target in targets.iter() {
                    let msg = Message::new(
                        self.next_id(),
                        MsgType::Invalidate,
                        block,
                        Endpoint::Mem(h),
                        Endpoint::Proc(target),
                        target,
                        t,
                    )
                    .with_txn(txn);
                    self.send_from_mem(msg, t, probe);
                }
            }
            DirAction::Nak { to } => {
                let msg = Message::new(
                    self.next_id(),
                    MsgType::Retry,
                    block,
                    Endpoint::Mem(h),
                    Endpoint::Proc(to),
                    to,
                    t,
                )
                .with_txn(self.txn_of(to, block));
                self.send_from_mem(msg, t, probe);
            }
            DirAction::Queued => {}
        }
    }

    // ------------------------------------------------------------------
    // Processor-side message handling (cache controller)
    // ------------------------------------------------------------------

    fn on_proc_delivery<P: Probe>(&mut self, p: NodeId, msg: Message, t: Cycle, probe: &mut P) {
        match msg.kind {
            MsgType::ReadReply => {
                // An `owner` field on a ReadReply is the MESI/MOESI
                // EXCLUSIVE grant (never set on MSI read replies).
                let state =
                    if msg.owner.is_some() { LineState::Exclusive } else { LineState::Shared };
                self.complete_fill(p, &msg, state, self.classify_read(&msg), t, probe)
            }
            MsgType::CtoCData => {
                if msg.write_intent {
                    self.complete_fill(p, &msg, LineState::Modified, None, t, probe);
                } else {
                    self.complete_fill(
                        p,
                        &msg,
                        LineState::Shared,
                        self.classify_read(&msg),
                        t,
                        probe,
                    );
                }
            }
            MsgType::WriteReply => {
                self.complete_fill(p, &msg, LineState::Modified, None, t, probe);
            }
            MsgType::CtoCRequest => self.on_intervention(p, msg, t, probe),
            MsgType::Invalidate => self.on_invalidate(p, msg, t, probe),
            MsgType::Retry => self.on_nak(p, msg, t, probe),
            other => unreachable!("processor received unexpected {other:?}"),
        }
    }

    fn classify_read(&self, msg: &Message) -> Option<ReadClass> {
        Some(match msg.kind {
            MsgType::ReadReply if msg.switch_generated => ReadClass::DirtyCtoCSwitch,
            MsgType::ReadReply => ReadClass::CleanMemory,
            MsgType::CtoCData if msg.switch_generated => ReadClass::DirtyCtoCSwitch,
            MsgType::CtoCData => ReadClass::DirtyCtoCHome,
            _ => return None,
        })
    }

    /// Installs arriving data and completes the block's MSHR.
    fn complete_fill<P: Probe>(
        &mut self,
        p: NodeId,
        msg: &Message,
        state: LineState,
        class: Option<ReadClass>,
        t: Cycle,
        probe: &mut P,
    ) {
        let block = msg.block;
        if let Some(wd) = self.watchdog.as_mut() {
            wd.progress(t);
        }
        // Ownership-bearing fills: MODIFIED grants and EXCLUSIVE grants both
        // record the home-booked instance (the home cannot tell them apart).
        let owning = matches!(state, LineState::Modified | LineState::Exclusive);
        let Some(m) = self.nodes[p as usize].mshrs.remove(&block) else {
            // Duplicate reply with no transaction waiting (NAK'd then served
            // twice, or delayed by fault retransmission). An ownership grant
            // must still install: the home has recorded this node as owner
            // and will direct the next intervention here. A duplicate Shared
            // fill is dropped — installing one that was delayed past a later
            // Invalidate would resurrect a line the home no longer tracks.
            if owning {
                self.nodes[p as usize].owner_seq.insert(block, msg.owner_seq);
                let evictions = self.nodes[p as usize].hier.fill(block, state);
                self.emit_evictions(p, evictions, t, probe);
            }
            return;
        };
        if owning {
            self.nodes[p as usize].owner_seq.insert(block, msg.owner_seq);
        }
        let evictions = self.nodes[p as usize].hier.fill(block, state);
        self.emit_evictions(p, evictions, t, probe);

        let node = &mut self.nodes[p as usize];
        match m.kind {
            MshrKind::Read => {
                if let Some(class) = class {
                    let latency = t.saturating_sub(m.issued_at);
                    node.reads.record(class, latency);
                    probe.read_complete(p, block, class, latency, t, m.txn);
                    if let Some(h) = self.histogram.as_mut() {
                        h.record_miss(block, class != ReadClass::CleanMemory);
                    }
                }
                if m.then_write && state == LineState::Exclusive {
                    // The coalesced write completes locally: an EXCLUSIVE
                    // holder upgrades silently. It must NOT send a
                    // WriteRequest — the home books E as ownership and NAKs
                    // owner-requests forever (livelock).
                    self.nodes[p as usize].hier.write(block);
                    if m.inval_pending {
                        self.nodes[p as usize].hier.invalidate(block);
                    }
                } else if m.then_write {
                    // A write coalesced behind this read: upgrade now.
                    let node = &mut self.nodes[p as usize];
                    node.writes_inflight += 1;
                    node.mshrs.insert(
                        block,
                        Mshr {
                            kind: MshrKind::Write,
                            issued_at: t,
                            then_write: false,
                            inval_pending: m.inval_pending,
                            retry_pending: false,
                            deferred_ctoc: None,
                            // The upgrade continues the read's transaction:
                            // one miss, one causal tree.
                            txn: m.txn,
                        },
                    );
                    self.send_request(p, block, MsgType::WriteRequest, t, probe);
                } else if m.inval_pending {
                    // Fill-then-invalidate: the blocked read consumes the
                    // data once (below), then the line dies.
                    self.nodes[p as usize].hier.invalidate(block);
                }
            }
            MshrKind::Write => {
                let node = &mut self.nodes[p as usize];
                debug_assert!(node.writes_inflight > 0);
                node.writes_inflight -= 1;
                match node.state {
                    ProcState::WaitWriteBuffer => {
                        node.state = ProcState::Ready;
                        self.queue.schedule_at(t, Ev::Proc(p));
                    }
                    ProcState::DrainForBarrier(id) if node.writes_inflight == 0 => {
                        node.state = ProcState::AtBarrier(id);
                        node.local_time = node.local_time.max(t);
                        let at = node.local_time;
                        self.barrier_arrive(p, at);
                    }
                    _ => {}
                }
            }
        }
        // Resume a processor blocked on this block.
        let node = &mut self.nodes[p as usize];
        if node.state == ProcState::WaitRead(block) {
            if m.inval_pending && m.kind == MshrKind::Read {
                // Let the pending read hit before the invalidation bites:
                // model the single use by re-filling Shared for one access.
                // (The line was invalidated above; a refill would be
                // incorrect — instead account the hit by advancing past the
                // read here.)
                node.pc += 1;
                node.refs_executed += 1;
            }
            node.reads.stall_cycles += t.saturating_sub(node.stall_since);
            node.state = ProcState::Ready;
            node.local_time = node.local_time.max(t);
            self.queue.schedule_at(t, Ev::Proc(p));
        }
        if let Some(d) = m.deferred_ctoc {
            debug_assert_eq!(m.kind, MshrKind::Write);
            let t_cache = t + self.cfg.l2.access_cycles as Cycle;
            if d.owner_seq == msg.owner_seq {
                // The intervention overtook this very grant in flight; the
                // home is still busy waiting for our copyback. Serve it now
                // that the line is installed (the granted write retired
                // above).
                self.serve_intervention(p, block, d, t_cache, probe);
            } else {
                // The deferred intervention targeted a different ownership
                // instance: the home cancelled that transaction while the
                // (retransmitted) intervention was in flight. NAK it.
                self.nak_intervention(p, block, &d, t_cache, probe);
            }
        }
    }

    fn emit_evictions<P: Probe>(
        &mut self,
        p: NodeId,
        evictions: Vec<Eviction>,
        t: Cycle,
        probe: &mut P,
    ) {
        for ev in evictions {
            if let Eviction::Writeback(victim) = ev {
                self.writebacks += 1;
                let home = self.map.home_of_block(victim);
                let msg = Message::new(
                    self.next_id(),
                    MsgType::WriteBack,
                    victim,
                    Endpoint::Proc(p),
                    Endpoint::Mem(home),
                    p,
                    t,
                );
                self.send_from_proc(msg, t, probe);
            }
        }
    }

    /// A CtoC intervention arrives at (what the sender believes is) the
    /// owner cache.
    fn on_intervention<P: Probe>(&mut self, p: NodeId, msg: Message, t: Cycle, probe: &mut P) {
        let block = msg.block;
        let t_cache = t + self.cfg.l2.access_cycles as Cycle;
        // Which resident states can service an intervention is a protocol
        // property: M always; E under MESI/MOESI; O under MOESI.
        let holds_dirty = self.nodes[p as usize].hier.probe(block).is_some_and(|s| {
            spec(self.cfg.protocol).serves_intervention(ProtoState::from_line(Some(s)))
        });
        let d = DeferredIntervention {
            requester: msg.requester,
            write_intent: msg.write_intent,
            switch_generated: msg.switch_generated,
            issued_at: msg.issued_at,
            owner_seq: msg.owner_seq,
            txn: msg.txn,
        };
        if holds_dirty {
            // Home-generated interventions name the ownership instance they
            // target; serve only if that is the instance this cache holds.
            // A mismatch means the home cancelled the transaction after the
            // (retransmitted) intervention departed — serving it would
            // transfer ownership behind the home's back. Switch-generated
            // interventions carry no sequence (seq 0): they are read-intent
            // only and any dirty holder can safely service them.
            let held = self.nodes[p as usize].owner_seq.get(&block).copied().unwrap_or(0);
            if d.switch_generated || d.owner_seq == held {
                self.serve_intervention(p, block, d, t_cache, probe);
            } else {
                self.nak_intervention(p, block, &d, t_cache, probe);
            }
            return;
        }
        if !d.switch_generated {
            if let Some(m) = self.nodes[p as usize].mshrs.get_mut(&block) {
                if m.kind == MshrKind::Write && m.deferred_ctoc.is_none() {
                    // The intervention overtook this node's own ownership
                    // grant (retransmission reorders the home's WriteReply
                    // past the intervention it sends for the next writer).
                    // The home is busy until our copyback arrives and the
                    // requester's retries will park behind it, so a NAK
                    // would wedge the block forever: serve the intervention
                    // when the fill lands — if it still names the instance
                    // the fill installs.
                    m.deferred_ctoc = Some(d);
                    return;
                }
            }
        }
        // Race: the block left this cache (eviction writeback or a
        // concurrent transfer). NAK the requester; home-side completion
        // is handled by the writeback/copyback already in flight.
        self.nak_intervention(p, block, &d, t_cache, probe);
    }

    /// Rejects a CtoC intervention: tells the requester to retry. Harmless
    /// even when the requester's transaction has already been resolved some
    /// other way (the NAK finds no MSHR and is dropped).
    fn nak_intervention<P: Probe>(
        &mut self,
        p: NodeId,
        block: BlockAddr,
        d: &DeferredIntervention,
        t_cache: Cycle,
        probe: &mut P,
    ) {
        let mut nak = Message::new(
            self.next_id(),
            MsgType::Retry,
            block,
            Endpoint::Proc(p),
            Endpoint::Proc(d.requester),
            d.requester,
            d.issued_at,
        )
        .with_txn(d.txn);
        nak.switch_generated = d.switch_generated;
        self.send_from_proc(nak, t_cache, probe);
    }

    /// Serves a CtoC intervention at owner `p`, which holds the block
    /// dirty: downgrade or relinquish the line, send the data straight to
    /// the requester and the copyback toward the home.
    fn serve_intervention<P: Probe>(
        &mut self,
        p: NodeId,
        block: BlockAddr,
        d: DeferredIntervention,
        t_cache: Cycle,
        probe: &mut P,
    ) {
        // MOESI owner-supplies rule: a dirty holder answering a read keeps
        // the line OWNED and stays the supplier; everyone else downgrades
        // to Shared. E holders (MESI/MOESI) serve clean and downgrade.
        let retains = !d.write_intent
            && self.cfg.protocol.owner_retains_on_read()
            && matches!(
                self.nodes[p as usize].hier.probe(block),
                Some(LineState::Modified | LineState::Owned)
            );
        if d.write_intent {
            self.nodes[p as usize].hier.invalidate(block);
        } else {
            if retains {
                self.nodes[p as usize].hier.downgrade_to(block, LineState::Owned);
            } else {
                self.nodes[p as usize].hier.downgrade(block);
            }
            // The owner cache is the service point of a read CtoC: the
            // data departs toward the requester now.
            probe.read_service_done(d.requester, block, t_cache, d.txn);
        }
        // Data straight to the requester...
        let mut data = Message::new(
            self.next_id(),
            MsgType::CtoCData,
            block,
            Endpoint::Proc(p),
            Endpoint::Proc(d.requester),
            d.requester,
            d.issued_at,
        )
        .with_txn(d.txn);
        data.switch_generated = d.switch_generated;
        if d.write_intent {
            // Ownership grant: the home will bump its sequence to exactly
            // this value when the copyback below lands (its sequence is
            // frozen at `d.owner_seq` while the transaction is busy).
            data = data.with_write_intent().with_owner_seq(d.owner_seq + 1);
        }
        self.send_from_proc(data, t_cache, probe);
        // ...and the copyback toward the home to update memory (and be
        // marked by any TRANSIENT switch entries on the way).
        let home = self.map.home_of_block(block);
        let mut cb = Message::new(
            self.next_id(),
            MsgType::CopyBack,
            block,
            Endpoint::Proc(p),
            Endpoint::Mem(home),
            d.requester,
            d.issued_at,
        )
        .with_txn(d.txn);
        cb.switch_generated = d.switch_generated;
        if d.write_intent {
            cb = cb.with_write_intent();
        }
        if retains {
            // Mark the copyback "retained": the home books this cache as
            // the OWNED supplier instead of a mere sharer.
            cb = cb.with_owner(p);
        }
        self.send_from_proc(cb, t_cache, probe);
    }

    fn on_invalidate<P: Probe>(&mut self, p: NodeId, msg: Message, t: Cycle, probe: &mut P) {
        let block = msg.block;
        {
            let node = &mut self.nodes[p as usize];
            if let Some(m) = node.mshrs.get_mut(&block) {
                if m.kind == MshrKind::Read {
                    // Data is in flight: use-once then invalidate.
                    m.inval_pending = true;
                }
            } else {
                node.hier.invalidate(block);
            }
        }
        let home = self.map.home_of_block(block);
        let ack = Message::new(
            self.next_id(),
            MsgType::InvalAck,
            block,
            Endpoint::Proc(p),
            Endpoint::Mem(home),
            p,
            t,
        )
        .with_txn(msg.txn);
        self.send_from_proc(ack, t + 1, probe);
    }

    fn on_nak<P: Probe>(&mut self, p: NodeId, msg: Message, t: Cycle, probe: &mut P) {
        let backoff = self.cfg.processor.retry_backoff_cycles as Cycle;
        let node = &mut self.nodes[p as usize];
        probe.nak_received(t, p, msg.block);
        if let Some(m) = node.mshrs.get_mut(&msg.block) {
            if !m.retry_pending {
                m.retry_pending = true;
                self.queue.schedule_at(t + backoff, Ev::Retry { node: p, block: msg.block });
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection for tests
    // ------------------------------------------------------------------

    /// The address map in use.
    pub fn address_map(&self) -> AddressMap {
        self.map
    }

    /// Sharer set recorded at the home for a block (tests).
    pub fn home_sharers(&self, block: BlockAddr) -> Option<SharerSet> {
        let h = self.map.home_of_block(block);
        match self.homes[h as usize].state(block) {
            dresar_directory::DirState::Shared(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_types::config::SwitchDirConfig;
    use dresar_types::ToJson;

    fn small_cfg(switch_dir: bool) -> SystemConfig {
        let mut cfg = SystemConfig::paper_table2();
        cfg.nodes = 4;
        cfg.switch.radix = 2;
        cfg.switch_dir = switch_dir.then(SwitchDirConfig::paper_default);
        cfg
    }

    fn wl(streams: Vec<Vec<StreamItem>>) -> Workload {
        Workload { name: "test".into(), streams }
    }

    fn run(cfg: SystemConfig, w: &Workload) -> ExecutionReport {
        System::new(cfg, w).run(RunOptions { max_cycles: 10_000_000, ..Default::default() })
    }

    #[test]
    fn single_read_is_clean_from_memory() {
        let w = wl(vec![vec![StreamItem::read(0, 4)]]);
        let r = run(small_cfg(false), &w);
        assert_eq!(r.reads.clean, 1);
        assert_eq!(r.reads.dirty(), 0);
        assert!(r.cycles > 0);
        assert_eq!(r.refs_executed, 1);
    }

    #[test]
    fn cached_reads_do_not_go_to_memory() {
        let w =
            wl(vec![vec![StreamItem::read(0, 1), StreamItem::read(0, 1), StreamItem::read(4, 1)]]);
        let r = run(small_cfg(false), &w);
        // Blocks 0 and 4 share a 32-byte line? addr 4 is in block 0: one miss.
        assert_eq!(r.reads.total(), 1);
        assert_eq!(r.refs_executed, 3);
    }

    #[test]
    fn write_then_remote_read_is_home_ctoc_without_switch_dir() {
        let w = wl(vec![
            vec![StreamItem::write(0, 1), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(0, 1)],
            vec![StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0)],
        ]);
        let r = run(small_cfg(false), &w);
        assert_eq!(r.reads.ctoc_home, 1, "dirty read must be a home-forwarded CtoC");
        assert_eq!(r.reads.ctoc_switch, 0);
        assert_eq!(r.dir.reads_ctoc, 1);
    }

    #[test]
    fn switch_directory_serves_remote_read() {
        let w = wl(vec![
            vec![StreamItem::write(0, 1), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(0, 1)],
            vec![StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0)],
        ]);
        let r = run(small_cfg(true), &w);
        assert_eq!(r.reads.ctoc_switch, 1, "switch directory must intercept the read");
        assert_eq!(r.reads.ctoc_home, 0);
        assert_eq!(r.dir.reads_ctoc, 0, "the read never reached the home");
        assert!(r.sd.read_hits >= 1);
        assert!(r.sd.copybacks_marked >= 1, "the copyback must carry the new sharer");
    }

    #[test]
    fn switch_dir_keeps_home_directory_exact() {
        // After a switch-served read, a third processor writing the block
        // must trigger invalidations covering *both* the owner and the
        // switch-served reader — proof the marked copyback reached the home.
        let w = wl(vec![
            vec![StreamItem::write(0, 1), StreamItem::Barrier(0), StreamItem::Barrier(1)],
            vec![StreamItem::Barrier(0), StreamItem::read(0, 1), StreamItem::Barrier(1)],
            vec![StreamItem::Barrier(0), StreamItem::Barrier(1), StreamItem::write(0, 1)],
            vec![StreamItem::Barrier(0), StreamItem::Barrier(1)],
        ]);
        let r = run(small_cfg(true), &w);
        assert_eq!(r.reads.ctoc_switch, 1);
        assert!(r.dir.marked_completions >= 1, "home must see the marked copyback");
        assert!(
            r.dir.invals_sent >= 2,
            "writer must invalidate owner and switch-served sharer, got {}",
            r.dir.invals_sent
        );
    }

    #[test]
    fn write_after_remote_write_transfers_ownership() {
        let w = wl(vec![
            vec![StreamItem::write(0, 1), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::write(0, 1)],
            vec![StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0)],
        ]);
        let r = run(small_cfg(false), &w);
        assert_eq!(r.dir.writes_ctoc, 1, "second write must trigger an ownership transfer");
    }

    #[test]
    fn shared_then_write_invalidates_sharers() {
        let w = wl(vec![
            vec![StreamItem::read(0, 1), StreamItem::Barrier(0)],
            vec![StreamItem::read(0, 1), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::write(0, 1)],
            vec![StreamItem::Barrier(0)],
        ]);
        let r = run(small_cfg(false), &w);
        assert!(r.dir.inval_rounds >= 1);
        assert!(r.dir.invals_sent >= 2);
    }

    #[test]
    fn capacity_evictions_produce_writebacks() {
        // Write more distinct blocks than L2 can hold.
        let cfg = small_cfg(false);
        let lines = cfg.l2.lines();
        let stream: Vec<StreamItem> =
            (0..lines + 64).map(|i| StreamItem::write(i * 32, 1)).collect();
        let r = run(cfg, &wl(vec![stream]));
        assert!(r.writebacks > 0, "dirty evictions must write back");
    }

    #[test]
    fn reports_are_deterministic() {
        let w = wl(vec![
            vec![StreamItem::write(0, 1), StreamItem::read(4096, 2), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(0, 1)],
            vec![StreamItem::write(8192, 3), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(8192, 1)],
        ]);
        let r1 = run(small_cfg(true), &w);
        let r2 = run(small_cfg(true), &w);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.reads, r2.reads);
        assert_eq!(r1.network_hops, r2.network_hops);
        assert_eq!(r1.metrics, r2.metrics, "metrics registries must match exactly");
        assert_eq!(
            r1.metrics.to_json().dump(),
            r2.metrics.to_json().dump(),
            "metrics serialization must be byte-identical"
        );
    }

    #[test]
    fn metrics_registry_is_populated() {
        let w = wl(vec![
            vec![StreamItem::write(0, 1), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(0, 1)],
            vec![StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0)],
        ]);
        let r = run(small_cfg(true), &w);
        use dresar_obs::MetricValue;
        assert_eq!(r.metrics.get("proc.refs_executed"), Some(&MetricValue::Counter(2)));
        assert_eq!(r.metrics.get("net.messages"), Some(&MetricValue::Counter(r.network_hops)));
        assert_eq!(r.metrics.get("reads.ctoc_switch"), Some(&MetricValue::Counter(1)));
        assert_eq!(r.metrics.get("sd.read_hits"), Some(&MetricValue::Counter(r.sd.read_hits)));
        assert_eq!(r.metrics.get("home.lookups"), Some(&MetricValue::Counter(r.dir.lookups)));
        // The queue drained, so the gauge's current level is zero but its
        // peak saw the run.
        match r.metrics.get("engine.queue.depth") {
            Some(MetricValue::Gauge { current: 0, peak }) if *peak > 0 => {}
            other => panic!("unexpected engine.queue.depth: {other:?}"),
        }
        // Structural invariant: TRANSIENT entries are pinned, so replacement
        // never victimizes one.
        assert_eq!(r.metrics.get("sd.evictions_transient"), Some(&MetricValue::Counter(0)));
        // No switch directories -> no sd.* metrics at all.
        let base = run(small_cfg(false), &w);
        assert_eq!(base.metrics.get("sd.read_hits"), None);
    }

    #[test]
    fn switch_dir_reduces_read_latency() {
        // A producer writes many blocks; consumers read them. With switch
        // directories the dirty reads shortcut the home.
        let blocks: Vec<u64> = (0..32).map(|i| i * 32).collect();
        let producer: Vec<StreamItem> = blocks
            .iter()
            .map(|&b| StreamItem::write(b, 2))
            .chain([StreamItem::Barrier(0)])
            .collect();
        let consumer: Vec<StreamItem> = [StreamItem::Barrier(0)]
            .into_iter()
            .chain(blocks.iter().map(|&b| StreamItem::read(b, 2)))
            .collect();
        let w = wl(vec![
            producer,
            consumer,
            vec![StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0)],
        ]);
        let base = run(small_cfg(false), &w);
        let with = run(small_cfg(true), &w);
        assert!(with.reads.ctoc_switch > 0);
        assert!(
            with.avg_read_latency() < base.avg_read_latency(),
            "switch dir {} must beat base {}",
            with.avg_read_latency(),
            base.avg_read_latency()
        );
        assert!(with.home_ctoc() < base.home_ctoc());
    }

    #[test]
    fn histogram_collection_works() {
        let w = wl(vec![
            vec![StreamItem::write(0, 1), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(0, 1), StreamItem::read(4096, 1)],
            vec![StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0)],
        ]);
        let r = System::new(small_cfg(false), &w).run(RunOptions {
            collect_histogram: true,
            max_cycles: 10_000_000,
            ..Default::default()
        });
        let h = r.histogram.expect("histogram requested");
        assert_eq!(h.total_misses(), 2);
        assert_eq!(h.total_ctocs(), 1);
    }

    #[test]
    fn paper_table2_sixteen_nodes_run() {
        // Smoke test at the paper's full 16-node scale.
        let mut streams = Vec::new();
        for p in 0..16u64 {
            streams.push(vec![
                StreamItem::write(p * 32, 1),
                StreamItem::Barrier(0),
                StreamItem::read(((p + 1) % 16) * 32, 1),
            ]);
        }
        let r = run(SystemConfig::paper_table2(), &wl(streams));
        assert_eq!(r.refs_executed, 32);
        assert!(r.reads.dirty() > 0);
    }

    #[test]
    fn directory_errors_surface_as_sim_errors() {
        // An out-of-range requester id must become a structured sim error
        // in the report — in release builds too (no debug_assert involved)
        // — and must not wrap into any sharer vector.
        let w = wl(vec![vec![], vec![], vec![], vec![]]);
        let mut sys = System::new(small_cfg(false), &w);
        sys.homes[0].handle_read(BlockAddr(0), 200);
        assert_eq!(sys.homes[0].state(BlockAddr(0)), dresar_directory::DirState::Uncached);
        let r = sys.run(RunOptions { max_cycles: 10_000_000, ..Default::default() });
        assert!(
            r.sim_errors.iter().any(|e| e.contains("dir_read_bounds") && e.contains("200")),
            "expected a dir_read_bounds protocol error, got {:?}",
            r.sim_errors
        );
    }

    #[test]
    fn scaled_64_node_machine_runs_coherently() {
        // Past the old 64-node SharerSet ceiling's edge: all 64 nodes read
        // one block (sharer bit 63 in use), then a writer invalidates all.
        let cfg = SystemConfig::scaled(64, 4);
        let mut streams: Vec<Vec<StreamItem>> =
            (0..64).map(|_| vec![StreamItem::read(0, 1), StreamItem::Barrier(0)]).collect();
        streams[0].push(StreamItem::write(0, 1));
        let r = System::new(cfg, &wl(streams)).run(RunOptions {
            max_cycles: 10_000_000,
            verify_coherence: true,
            ..Default::default()
        });
        assert!(r.sim_errors.is_empty(), "sim errors: {:?}", r.sim_errors);
        let c = r.coherence.expect("coherence audit requested");
        assert!(c.ok(), "violations: {:?}", c.violations);
        assert_eq!(r.refs_executed, 65);
        assert!(r.dir.invals_sent >= 63, "writer must invalidate the other 63 sharers");
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn livelock_guard_fires() {
        let w = wl(vec![vec![StreamItem::read(0, 1)]]);
        System::new(small_cfg(false), &w).run(RunOptions {
            max_cycles: 1, // absurdly small bound
            ..Default::default()
        });
    }

    use dresar_types::Protocol;

    fn proto_cfg(p: Protocol, switch_dir: bool) -> SystemConfig {
        let mut cfg = small_cfg(switch_dir);
        cfg.protocol = p;
        cfg
    }

    fn run_verified(cfg: SystemConfig, w: &Workload) -> ExecutionReport {
        let r = System::new(cfg, w).run(RunOptions {
            max_cycles: 10_000_000,
            verify_coherence: true,
            ..Default::default()
        });
        assert!(r.sim_errors.is_empty(), "sim errors: {:?}", r.sim_errors);
        let c = r.coherence.as_ref().expect("coherence audit requested");
        assert!(c.ok(), "violations: {:?}", c.violations);
        r
    }

    #[test]
    fn mesi_read_then_write_upgrades_silently() {
        // One processor reads a private block then writes it. MESI grants
        // EXCLUSIVE on the unshared fill, so the write completes locally:
        // the home sees exactly one lookup (the read) and no write traffic.
        let w =
            wl(vec![vec![StreamItem::read(0, 1), StreamItem::write(0, 1)], vec![], vec![], vec![]]);
        let mesi = run_verified(proto_cfg(Protocol::Mesi, false), &w);
        assert_eq!(mesi.dir.lookups, 1, "the silent upgrade must not reach the home");
        assert_eq!(mesi.dir.reads_clean, 1);
        // MSI needs the explicit upgrade transaction.
        let msi = run_verified(proto_cfg(Protocol::Msi, false), &w);
        assert_eq!(msi.dir.lookups, 2);
    }

    #[test]
    fn mesi_exclusive_holder_serves_remote_read_clean() {
        // p0 read-fills EXCLUSIVE; p1's later read is forwarded to p0 as a
        // cache-to-cache transfer even though p0 never wrote.
        let w = wl(vec![
            vec![StreamItem::read(0, 1), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(0, 1)],
            vec![StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0)],
        ]);
        let r = run_verified(proto_cfg(Protocol::Mesi, false), &w);
        assert_eq!(r.dir.reads_ctoc, 1, "the E holder must be intervened");
        // Under MSI both reads are clean memory fills.
        let msi = run_verified(proto_cfg(Protocol::Msi, false), &w);
        assert_eq!(msi.dir.reads_ctoc, 0);
    }

    #[test]
    fn moesi_owner_supplies_every_reader() {
        // Producer writes; two consumers read in separate phases. Under
        // MOESI the owner retains the line OWNED after the first read and
        // supplies the second reader too; under MSI the first read
        // downgrades everyone to Shared and the second is a memory fill.
        let w = wl(vec![
            vec![StreamItem::write(0, 1), StreamItem::Barrier(0), StreamItem::Barrier(1)],
            vec![StreamItem::Barrier(0), StreamItem::read(0, 1), StreamItem::Barrier(1)],
            vec![StreamItem::Barrier(0), StreamItem::Barrier(1), StreamItem::read(0, 1)],
            vec![StreamItem::Barrier(0), StreamItem::Barrier(1)],
        ]);
        let moesi = run_verified(proto_cfg(Protocol::Moesi, false), &w);
        assert_eq!(moesi.dir.reads_ctoc, 2, "both reads must be owner-supplied");
        assert_eq!(moesi.reads.dirty(), 2);
        let msi = run_verified(proto_cfg(Protocol::Msi, false), &w);
        assert_eq!(msi.dir.reads_ctoc, 1);
        assert_eq!(msi.reads.dirty(), 1);
    }

    #[test]
    fn moesi_write_after_dirty_sharing_invalidates_owner_and_sharers() {
        let w = wl(vec![
            vec![StreamItem::write(0, 1), StreamItem::Barrier(0), StreamItem::Barrier(1)],
            vec![StreamItem::Barrier(0), StreamItem::read(0, 1), StreamItem::Barrier(1)],
            vec![StreamItem::Barrier(0), StreamItem::Barrier(1), StreamItem::write(0, 1)],
            vec![StreamItem::Barrier(0), StreamItem::Barrier(1)],
        ]);
        let r = run_verified(proto_cfg(Protocol::Moesi, false), &w);
        assert!(r.dir.inval_rounds >= 1);
        assert!(
            r.dir.invals_sent >= 2,
            "owner and sharer must both be invalidated, got {}",
            r.dir.invals_sent
        );
    }

    #[test]
    fn dls_reads_to_dirty_blocks_bypass_the_intervention() {
        let w = wl(vec![
            vec![StreamItem::write(0, 1), StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0), StreamItem::read(0, 1)],
            vec![StreamItem::Barrier(0)],
            vec![StreamItem::Barrier(0)],
        ]);
        let r = run_verified(proto_cfg(Protocol::Dls, false), &w);
        assert_eq!(r.dir.reads_ctoc, 0, "the DLS baseline never forwards read interventions");
        assert_eq!(r.reads.clean, 1);
        assert_eq!(r.reads.dirty(), 0);
    }

    #[test]
    fn every_protocol_runs_coherently_with_switch_directories() {
        // The paper's SD mechanism is protocol-agnostic: hints stay safe
        // under every family member, including with producer/consumer
        // sharing that exercises retained (MOESI) copybacks through
        // switch-generated interventions.
        let blocks: Vec<u64> = (0..8).map(|i| i * 32).collect();
        let producer: Vec<StreamItem> = blocks
            .iter()
            .map(|&b| StreamItem::write(b, 2))
            .chain([StreamItem::Barrier(0)])
            .collect();
        let consumer: Vec<StreamItem> = [StreamItem::Barrier(0)]
            .into_iter()
            .chain(blocks.iter().map(|&b| StreamItem::read(b, 2)))
            .chain([StreamItem::write(0, 1)])
            .collect();
        let w = wl(vec![
            producer,
            consumer,
            vec![StreamItem::Barrier(0), StreamItem::read(0, 2)],
            vec![StreamItem::Barrier(0)],
        ]);
        for p in Protocol::ALL {
            let r = run_verified(proto_cfg(p, true), &w);
            assert!(r.refs_executed > 0, "{p}: no references executed");
        }
    }
}
