//! End-of-run coherence invariant checker.
//!
//! The paper's safety argument is that switch directories are pure hint
//! caches: losing, scrubbing or disabling them must never corrupt the
//! protocol, because the home full-map directory stays authoritative. This
//! module audits that claim after a run, fault-injected or not:
//!
//! 1. **Exclusive ownership** — at most one cache holds a block dirty
//!    (MODIFIED or OWNED), at most one holds it EXCLUSIVE, and the home's
//!    ownership record names that holder. Which resident states a home
//!    claim permits is a protocol property: under MESI/MOESI a home
//!    `Modified(n)` is satisfied by `n` holding EXCLUSIVE, under MOESI a
//!    home `Owned` requires the owner to hold OWNED.
//! 2. **Holder tracking** — every cached copy is covered by the home state
//!    per [`dresar_protocol::holder_allowed`] (the home's sharer vector may
//!    be a superset: clean copies evict silently, but never the reverse;
//!    the DLS baseline deliberately leaves read bypasses untracked).
//! 3. **Hint soundness** — every MODIFIED switch-directory entry points at
//!    the block's true current owner per the home directory.
//! 4. **Quiescence** — after a clean drain no home entry is mid-transaction
//!    and no switch-directory entry is TRANSIENT.
//! 5. **Exact accounting** — every drained node executed exactly the
//!    references its stream contains, faults or not.
//!
//! The checker also folds the final per-block machine state (home entry +
//! cache holders, switch directories excluded since they are hints) into a
//! deterministic digest, so tests can assert that a run degraded mid-flight
//! (SD disabled) quiesces in the *same* coherence state as a base-machine
//! run.

use std::collections::BTreeMap;

use dresar_cache::LineState;
use dresar_directory::DirState;
use dresar_protocol::{holder_allowed, HomeClaim};
use dresar_types::{BlockAddr, JsonValue, NodeId, StreamItem, ToJson};

use super::{Node, System};
use crate::switchdir::SdState;

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceViolation {
    /// Stable rule identifier (`exclusive-owner`, `holder-not-tracked`,
    /// `sd-stale-hint`, `sd-transient-at-quiescence`,
    /// `home-busy-at-quiescence`, `refs-mismatch`).
    pub rule: &'static str,
    /// Block concerned, when the rule is per-block.
    pub block: Option<BlockAddr>,
    /// Human-readable specifics.
    pub detail: String,
}

impl ToJson for CoherenceViolation {
    fn to_json(&self) -> JsonValue {
        let mut b = JsonValue::obj().field("rule", self.rule);
        if let Some(block) = self.block {
            b = b.field("block", block.0);
        }
        b.field("detail", self.detail.as_str()).build()
    }
}

/// Result of the end-of-run coherence audit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoherenceOutcome {
    /// Distinct blocks examined (union of home-tracked and cache-resident).
    pub blocks_checked: u64,
    /// Whether the run reached clean quiescence (all nodes drained, no
    /// watchdog trip). Quiescence-only rules are skipped otherwise.
    pub quiesced: bool,
    /// Every violated invariant, in deterministic order.
    pub violations: Vec<CoherenceViolation>,
    /// FNV-1a digest of the final per-block coherence state (home entry +
    /// sorted cache holders). Switch-directory contents are excluded: they
    /// are hints, so a degraded run must digest identically to a base run.
    pub digest: u64,
}

impl CoherenceOutcome {
    /// Whether every checked invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl ToJson for CoherenceOutcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("blocks_checked", self.blocks_checked)
            .field("quiesced", self.quiesced)
            .field("ok", self.ok())
            .field("violations", self.violations.clone())
            .field("digest", self.digest)
            .build()
    }
}

/// Per-block view assembled from every structure that holds coherence
/// state.
#[derive(Default)]
struct BlockView {
    home: Option<(DirState, bool)>,
    holders: Vec<(NodeId, LineState)>,
    sd_modified: Vec<(usize, NodeId)>,
    sd_transients: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Audits the final machine state. Called by `System::build_report` when
/// `RunOptions::verify_coherence` is set.
pub(super) fn check(sys: &System) -> CoherenceOutcome {
    let mut blocks: BTreeMap<u64, BlockView> = BTreeMap::new();
    for h in &sys.homes {
        for (block, state, busy) in h.blocks() {
            blocks.entry(block.0).or_default().home = Some((state, busy));
        }
    }
    for n in &sys.nodes {
        for (block, state) in n.hier.resident_blocks() {
            blocks.entry(block.0).or_default().holders.push((n.id, state));
        }
    }
    for (i, sd) in sys.sdirs.iter().enumerate() {
        let Some(sd) = sd else { continue };
        for (block, e) in sd.entries() {
            let v = blocks.entry(block.0).or_default();
            match e.state {
                SdState::Modified => v.sd_modified.push((i, e.owner)),
                SdState::Transient => v.sd_transients += 1,
            }
        }
    }

    let quiesced =
        sys.nodes.iter().all(Node::drained) && sys.watchdog.as_ref().is_none_or(|wd| !wd.tripped());
    let mut out = CoherenceOutcome {
        blocks_checked: blocks.len() as u64,
        quiesced,
        ..CoherenceOutcome::default()
    };
    let mut digest = FNV_OFFSET;

    let protocol = sys.cfg.protocol;
    for (&addr, v) in &blocks {
        let block = BlockAddr(addr);
        let mut holders = v.holders.clone();
        holders.sort_by_key(|&(n, _)| n);
        let dirty: Vec<NodeId> =
            holders.iter().filter(|&&(_, s)| s.is_dirty()).map(|&(n, _)| n).collect();
        let excl: Vec<NodeId> =
            holders.iter().filter(|&&(_, s)| s == LineState::Exclusive).map(|&(n, _)| n).collect();
        let (home_state, home_busy) = v.home.clone().unwrap_or((DirState::Uncached, false));

        // 1. Exactly one dirty (MODIFIED/OWNED) holder, matching the home's
        // record, and an EXCLUSIVE holder is the sole copy.
        if dirty.len() > 1 {
            out.violations.push(CoherenceViolation {
                rule: "exclusive-owner",
                block: Some(block),
                detail: format!("{} caches hold the block dirty: {dirty:?}", dirty.len()),
            });
        }
        if !excl.is_empty() && holders.len() > 1 {
            out.violations.push(CoherenceViolation {
                rule: "exclusive-owner",
                block: Some(block),
                detail: format!(
                    "node {} holds EXCLUSIVE but {} caches hold copies",
                    excl[0],
                    holders.len()
                ),
            });
        }
        if quiesced {
            match &home_state {
                DirState::Modified(owner) => {
                    // The booked owner holds the block MODIFIED — or
                    // EXCLUSIVE, which the home cannot distinguish.
                    let ok = (dirty == [*owner] && excl.is_empty())
                        || (dirty.is_empty() && excl == [*owner]);
                    if !ok {
                        out.violations.push(CoherenceViolation {
                            rule: "exclusive-owner",
                            block: Some(block),
                            detail: format!(
                                "home records owner {owner} but dirty holders are {dirty:?} \
                                 and exclusive holders are {excl:?}"
                            ),
                        });
                    }
                }
                DirState::Owned { owner, .. } => {
                    let holds_owned =
                        holders.iter().any(|&(n, s)| n == *owner && s == LineState::Owned);
                    if dirty != [*owner] || !holds_owned {
                        out.violations.push(CoherenceViolation {
                            rule: "exclusive-owner",
                            block: Some(block),
                            detail: format!(
                                "home records OWNED supplier {owner} but dirty holders \
                                 are {dirty:?}"
                            ),
                        });
                    }
                }
                _ => {
                    if let Some(&n) = dirty.first() {
                        out.violations.push(CoherenceViolation {
                            rule: "exclusive-owner",
                            block: Some(block),
                            detail: format!(
                                "node {n} holds the block dirty but home state is {home_state:?}"
                            ),
                        });
                    }
                    if let Some(&n) = excl.first() {
                        out.violations.push(CoherenceViolation {
                            rule: "exclusive-owner",
                            block: Some(block),
                            detail: format!(
                                "node {n} holds EXCLUSIVE but home state is {home_state:?}"
                            ),
                        });
                    }
                }
            }

            // 2. Every cached copy is covered by the home state, by the
            // active protocol's rules.
            for &(n, state) in &holders {
                let claim = match &home_state {
                    DirState::Uncached => HomeClaim::Uncached,
                    DirState::Shared(s) => HomeClaim::SharedTracked(s.contains(n)),
                    DirState::Modified(o) => HomeClaim::ModifiedBy(*o == n),
                    DirState::Owned { owner, sharers } => {
                        HomeClaim::OwnedBy { is_owner: *owner == n, tracked: sharers.contains(n) }
                    }
                };
                if !holder_allowed(protocol, state, claim) {
                    out.violations.push(CoherenceViolation {
                        rule: "holder-not-tracked",
                        block: Some(block),
                        detail: format!(
                            "node {n} holds the block {state:?} but home records {home_state:?}"
                        ),
                    });
                }
            }

            // 3. MODIFIED switch-directory hints point at the true current
            // supplier — the booked owner, MODIFIED or (MOESI) OWNED.
            for &(sw, hinted) in &v.sd_modified {
                let hint_ok = match &home_state {
                    DirState::Modified(o) => *o == hinted,
                    DirState::Owned { owner, .. } => *owner == hinted,
                    _ => false,
                };
                if !hint_ok {
                    out.violations.push(CoherenceViolation {
                        rule: "sd-stale-hint",
                        block: Some(block),
                        detail: format!(
                            "switch {sw} hints owner {hinted} but home records {home_state:?}"
                        ),
                    });
                }
            }

            // 4. Quiescence: nothing mid-transaction anywhere.
            if v.sd_transients > 0 {
                out.violations.push(CoherenceViolation {
                    rule: "sd-transient-at-quiescence",
                    block: Some(block),
                    detail: format!("{} TRANSIENT switch entries remain", v.sd_transients),
                });
            }
            if home_busy {
                out.violations.push(CoherenceViolation {
                    rule: "home-busy-at-quiescence",
                    block: Some(block),
                    detail: "home entry still mid-transaction".into(),
                });
            }
        }

        // Digest the block's final home + cache state (hints excluded).
        digest = fnv1a(digest, &addr.to_le_bytes());
        match &home_state {
            DirState::Uncached => digest = fnv1a(digest, b"U"),
            DirState::Shared(s) => {
                digest = fnv1a(digest, b"S");
                // Digest the canonical word layout: word 0 always (matching
                // the old single-`u64` digest bit-for-bit for <=64-node
                // machines, protecting committed baselines), higher words
                // only when any pid >= 64 is present.
                let words = s.words();
                digest = fnv1a(digest, &words[0].to_le_bytes());
                if words[1..].iter().any(|&w| w != 0) {
                    for w in &words[1..] {
                        digest = fnv1a(digest, &w.to_le_bytes());
                    }
                }
            }
            DirState::Modified(owner) => {
                digest = fnv1a(digest, b"M");
                digest = fnv1a(digest, &[*owner]);
            }
            DirState::Owned { owner, sharers } => {
                // New tag for a state only non-MSI protocols produce: MSI
                // digests stay bit-identical to the committed baselines.
                digest = fnv1a(digest, b"O");
                digest = fnv1a(digest, &[*owner]);
                let words = sharers.words();
                digest = fnv1a(digest, &words[0].to_le_bytes());
                if words[1..].iter().any(|&w| w != 0) {
                    for w in &words[1..] {
                        digest = fnv1a(digest, &w.to_le_bytes());
                    }
                }
            }
        }
        for &(n, state) in &holders {
            // Holder tags: 1 = Shared (MSI legacy), 2 = Modified (MSI
            // legacy), 3 = Exclusive, 4 = Owned. MSI runs only emit 1/2.
            let tag = match state {
                LineState::Modified => 2,
                LineState::Exclusive => 3,
                LineState::Owned => 4,
                _ => 1,
            };
            digest = fnv1a(digest, &[n, tag]);
        }
    }

    // 5. Exact per-node reference accounting for drained nodes.
    for n in &sys.nodes {
        if !n.drained() {
            continue;
        }
        let expected = n.items.iter().filter(|i| matches!(i, StreamItem::Ref(_))).count() as u64;
        if n.refs_executed != expected {
            out.violations.push(CoherenceViolation {
                rule: "refs-mismatch",
                block: None,
                detail: format!(
                    "node {} executed {} references, stream holds {expected}",
                    n.id, n.refs_executed
                ),
            });
        }
    }

    out.digest = digest;
    out
}
