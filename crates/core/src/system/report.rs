//! Aggregated results of one execution-driven simulation run.

use dresar_directory::DirStats;
use dresar_faults::{FaultStats, WatchdogReport};
use dresar_obs::{MetricsRegistry, ObsReport};
use dresar_stats::ReadStats;
use dresar_types::{Cycle, FromJson, JsonError, JsonValue, ToJson};

use crate::switchdir::SdStats;
use crate::system::CoherenceOutcome;

/// Everything the evaluation figures need from one run.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Workload name.
    pub workload: String,
    /// Total execution time in cycles (Figure 11's basis): the cycle the
    /// last processor drained its stream, write buffer and transactions.
    pub cycles: Cycle,
    /// Aggregated read statistics (Figures 1, 9, 10).
    pub reads: ReadStats,
    /// Aggregated home-directory statistics (Figure 8's home-node CtoC
    /// count is `dir.reads_ctoc`).
    pub dir: DirStats,
    /// Aggregated switch-directory statistics across all switches.
    pub sd: SdStats,
    /// Messages moved through the interconnect (hop count).
    pub network_hops: u64,
    /// Writebacks sent by caches.
    pub writebacks: u64,
    /// Total memory references executed.
    pub refs_executed: u64,
    /// Per-block miss/CtoC histogram (only if requested in
    /// [`crate::system::RunOptions`]).
    pub histogram: Option<dresar_stats::BlockHistogram>,
    /// Observer payloads (latency breakdown, time series, trace), present
    /// when [`crate::system::RunOptions::observers`] enabled any.
    pub obs: Option<ObsReport>,
    /// Deterministic component-metrics snapshot (queue depths, arbitration,
    /// directory occupancy, cache traffic...), assembled after the run from
    /// each structure's counters. Always populated by the simulator; the
    /// `bench_report` regression gate diffs it against a baseline.
    pub metrics: MetricsRegistry,
    /// What the fault injector actually did, when a fault plan was active.
    pub faults: Option<FaultStats>,
    /// The coherence watchdog's verdict, when it tripped.
    pub watchdog: Option<WatchdogReport>,
    /// End-of-run coherence audit, when
    /// [`crate::system::RunOptions::verify_coherence`] was set.
    pub coherence: Option<CoherenceOutcome>,
    /// Recoverable simulation errors recorded along the way (failed route
    /// construction and the like). Empty on healthy runs.
    pub sim_errors: Vec<String>,
}

impl ExecutionReport {
    /// Home-node cache-to-cache transfers (Figure 8's metric): dirty reads
    /// that had to be serviced via the home directory.
    pub fn home_ctoc(&self) -> u64 {
        self.reads.ctoc_home
    }

    /// Switch-directory-served cache-to-cache transfers.
    pub fn switch_ctoc(&self) -> u64 {
        self.reads.ctoc_switch
    }

    /// Average read-miss latency in cycles (Figure 9).
    pub fn avg_read_latency(&self) -> f64 {
        self.reads.avg_latency()
    }

    /// Total read stall cycles across processors (Figure 10).
    pub fn read_stall_cycles(&self) -> u64 {
        self.reads.stall_cycles
    }

    /// Fraction of read misses serviced dirty (Figure 1).
    pub fn dirty_read_fraction(&self) -> f64 {
        self.reads.dirty_fraction()
    }
}

impl ToJson for ExecutionReport {
    fn to_json(&self) -> JsonValue {
        let mut b = JsonValue::obj()
            .field("workload", self.workload.as_str())
            .field("cycles", self.cycles)
            .field("reads", self.reads.to_json())
            .field("dir", self.dir.to_json())
            .field("sd", self.sd.to_json())
            .field("network_hops", self.network_hops)
            .field("writebacks", self.writebacks)
            .field("refs_executed", self.refs_executed)
            .field("avg_read_latency", self.avg_read_latency())
            .field("dirty_read_fraction", self.dirty_read_fraction());
        if let Some(obs) = &self.obs {
            b = b.field("obs", obs.to_json());
        }
        if !self.metrics.is_empty() {
            b = b.field("metrics", self.metrics.to_json());
        }
        if let Some(f) = &self.faults {
            b = b.field("faults", f.to_json());
        }
        if let Some(w) = &self.watchdog {
            b = b.field("watchdog", w.to_json());
        }
        if let Some(c) = &self.coherence {
            b = b.field("coherence", c.to_json());
        }
        if !self.sim_errors.is_empty() {
            b = b.field("sim_errors", self.sim_errors.clone());
        }
        b.build()
    }
}

impl FromJson for ExecutionReport {
    /// Round-trips the scalar counters and nested stats. The histogram and
    /// observer payloads are not reconstructed (they serialize for external
    /// consumers only) and come back `None`.
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let reads = v.get("reads").ok_or_else(|| JsonError::new("missing field `reads`"))?;
        let dir = v.get("dir").ok_or_else(|| JsonError::new("missing field `dir`"))?;
        let sd = v.get("sd").ok_or_else(|| JsonError::new("missing field `sd`"))?;
        let metrics = match v.get("metrics") {
            Some(m) => MetricsRegistry::from_json(m)?,
            None => MetricsRegistry::default(),
        };
        Ok(ExecutionReport {
            workload: JsonError::want_str(v, "workload")?,
            cycles: JsonError::want_u64(v, "cycles")?,
            reads: ReadStats::from_json(reads)?,
            dir: DirStats::from_json(dir)?,
            sd: SdStats::from_json(sd)?,
            network_hops: JsonError::want_u64(v, "network_hops")?,
            writebacks: JsonError::want_u64(v, "writebacks")?,
            refs_executed: JsonError::want_u64(v, "refs_executed")?,
            histogram: None,
            obs: None,
            metrics,
            faults: None,
            watchdog: None,
            coherence: None,
            sim_errors: match v.get("sim_errors") {
                Some(JsonValue::Arr(items)) => {
                    items.iter().filter_map(|e| e.as_str().map(str::to_string)).collect()
                }
                _ => Vec::new(),
            },
        })
    }
}
