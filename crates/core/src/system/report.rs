//! Aggregated results of one execution-driven simulation run.

use dresar_directory::DirStats;
use dresar_stats::ReadStats;
use dresar_types::Cycle;

use crate::switchdir::SdStats;

/// Everything the evaluation figures need from one run.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Workload name.
    pub workload: String,
    /// Total execution time in cycles (Figure 11's basis): the cycle the
    /// last processor drained its stream, write buffer and transactions.
    pub cycles: Cycle,
    /// Aggregated read statistics (Figures 1, 9, 10).
    pub reads: ReadStats,
    /// Aggregated home-directory statistics (Figure 8's home-node CtoC
    /// count is `dir.reads_ctoc`).
    pub dir: DirStats,
    /// Aggregated switch-directory statistics across all switches.
    pub sd: SdStats,
    /// Messages moved through the interconnect (hop count).
    pub network_hops: u64,
    /// Writebacks sent by caches.
    pub writebacks: u64,
    /// Total memory references executed.
    pub refs_executed: u64,
    /// Per-block miss/CtoC histogram (only if requested in
    /// [`crate::system::RunOptions`]).
    pub histogram: Option<dresar_stats::BlockHistogram>,
}

impl ExecutionReport {
    /// Home-node cache-to-cache transfers (Figure 8's metric): dirty reads
    /// that had to be serviced via the home directory.
    pub fn home_ctoc(&self) -> u64 {
        self.reads.ctoc_home
    }

    /// Switch-directory-served cache-to-cache transfers.
    pub fn switch_ctoc(&self) -> u64 {
        self.reads.ctoc_switch
    }

    /// Average read-miss latency in cycles (Figure 9).
    pub fn avg_read_latency(&self) -> f64 {
        self.reads.avg_latency()
    }

    /// Total read stall cycles across processors (Figure 10).
    pub fn read_stall_cycles(&self) -> u64 {
        self.reads.stall_cycles
    }

    /// Fraction of read misses serviced dirty (Figure 1).
    pub fn dirty_read_fraction(&self) -> f64 {
        self.reads.dirty_fraction()
    }
}

