//! Watchdog behavior under targeted message loss: a run that can no longer
//! make progress must return a structured report naming the stuck
//! transactions — never hang and never panic — while a healthy run with the
//! watchdog armed must be indistinguishable from one without it.

use dresar::system::{RunOptions, System};
use dresar_faults::{FaultPlan, WatchdogConfig, WatchdogKind};
use dresar_types::config::{SwitchDirConfig, SystemConfig};
use dresar_types::msg::MsgType;
use dresar_types::{StreamItem, ToJson, Workload};

fn cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_table2();
    cfg.switch_dir = Some(SwitchDirConfig { entries: 1024, ..SwitchDirConfig::paper_default() });
    cfg
}

/// Node 0 writes one block and hits a barrier; everyone else just
/// barriers. One lost reply pins node 0's write forever.
fn one_write_workload() -> Workload {
    let mut streams = vec![vec![StreamItem::write(0x40, 1), StreamItem::Barrier(0)]];
    streams.extend((1..16).map(|_| vec![StreamItem::Barrier(0)]));
    Workload { name: "one-write".into(), streams }
}

fn sharing_workload() -> Workload {
    let mut streams = Vec::new();
    for p in 0..16u64 {
        let mut s = Vec::new();
        for i in 0..40u64 {
            let addr = ((p + i) % 24) * 32;
            if i % 3 == 0 {
                s.push(StreamItem::write(addr, 2));
            } else {
                s.push(StreamItem::read(addr, 2));
            }
            if i % 10 == 9 {
                s.push(StreamItem::Barrier((i / 10) as u32));
            }
        }
        streams.push(s);
    }
    Workload { name: "sharing".into(), streams }
}

#[test]
fn lost_write_reply_produces_watchdog_report_not_a_hang() {
    let plan =
        FaultPlan { lose_kind: Some(MsgType::WriteReply), lose_nth: 1, ..FaultPlan::default() };
    let opts = RunOptions {
        max_cycles: 500_000_000,
        faults: Some(plan),
        watchdog: Some(WatchdogConfig { progress_budget: 50_000 }),
        verify_coherence: true,
        ..Default::default()
    };
    let r = System::new(cfg(), &one_write_workload()).run(opts);

    let report = r.watchdog.expect("losing the only WriteReply must trip the watchdog");
    assert!(
        matches!(report.kind, WatchdogKind::Livelock | WatchdogKind::QuiescenceFailure),
        "unexpected verdict: {:?}",
        report.kind
    );
    let stuck: Vec<_> = report.lineage.iter().filter(|s| s.node == 0).collect();
    assert!(
        stuck.iter().any(|s| s.kind == "write" && s.block.0 == 0x40 / 32),
        "lineage must name node 0's stuck write: {:?}",
        report.lineage
    );
    assert_eq!(r.faults.expect("plan active").lost, 1);
    // The audit must flag the wreckage rather than pretend the run is clean.
    let c = r.coherence.expect("verify_coherence was requested");
    assert!(!c.quiesced, "a tripped run is not quiescent");
}

#[test]
fn clean_run_with_watchdog_matches_unwatched_run() {
    let w = sharing_workload();
    let plain =
        System::new(cfg(), &w).run(RunOptions { max_cycles: 500_000_000, ..Default::default() });
    let watched = System::new(cfg(), &w).run(RunOptions {
        max_cycles: 500_000_000,
        watchdog: Some(WatchdogConfig::default()),
        verify_coherence: true,
        ..Default::default()
    });
    assert!(watched.watchdog.is_none(), "clean run tripped: {:?}", watched.watchdog);
    assert_eq!(watched.cycles, plain.cycles, "the watchdog must not perturb timing");
    assert_eq!(watched.reads, plain.reads);
    assert_eq!(watched.refs_executed, plain.refs_executed);
    let c = watched.coherence.expect("requested");
    assert!(c.quiesced && c.ok(), "violations: {:?}", c.violations);
}

#[test]
fn budget_overrun_reports_instead_of_panicking() {
    // Without a watchdog this workload trips the legacy max_cycles panic;
    // with one armed it must come back with a BudgetExceeded report.
    let r = System::new(cfg(), &sharing_workload()).run(RunOptions {
        max_cycles: 100, // far too small to finish
        watchdog: Some(WatchdogConfig::default()),
        ..Default::default()
    });
    let report = r.watchdog.expect("overrunning the budget must produce a report");
    assert_eq!(report.kind, WatchdogKind::BudgetExceeded);
    assert!(report.at <= 110, "tripped late: {}", report.at);
}

#[test]
fn watchdog_trip_attaches_a_deterministic_flight_dump() {
    // The default RunOptions keep the flight recorder armed; tripping the
    // watchdog must surface its dump, and replaying the identical run must
    // reproduce it byte for byte.
    let plan =
        FaultPlan { lose_kind: Some(MsgType::WriteReply), lose_nth: 1, ..FaultPlan::default() };
    let opts = RunOptions {
        max_cycles: 500_000_000,
        faults: Some(plan),
        watchdog: Some(WatchdogConfig { progress_budget: 50_000 }),
        ..Default::default()
    };
    let a = System::new(cfg(), &one_write_workload()).run(opts);
    let b = System::new(cfg(), &one_write_workload()).run(opts);
    assert!(a.watchdog.is_some(), "scenario must trip the watchdog");
    let fa = a
        .obs
        .as_ref()
        .and_then(|o| o.flight.as_ref())
        .expect("a tripped run must attach the flight dump");
    assert!(!fa.is_empty(), "the black box must hold the lead-up to the trip");
    let fb = b
        .obs
        .as_ref()
        .and_then(|o| o.flight.as_ref())
        .expect("the deterministic replay must attach a dump too");
    assert_eq!(fa.to_json().dump(), fb.to_json().dump(), "dumps must be byte-identical");
}

#[test]
fn healthy_run_keeps_the_flight_dump_out_of_the_report() {
    // The recorder runs on every default run, but a clean report must look
    // exactly as it did before the recorder existed.
    let r = System::new(cfg(), &sharing_workload()).run(RunOptions {
        max_cycles: 500_000_000,
        verify_coherence: true,
        ..Default::default()
    });
    assert!(r.coherence.as_ref().expect("requested").ok());
    assert!(r.obs.is_none(), "healthy runs must not grow an obs payload");
}

#[test]
fn moderate_drops_recover_deterministically() {
    let w = sharing_workload();
    let plan = FaultPlan { seed: 3, drop_ppm: 8_000, ..FaultPlan::default() };
    let opts = RunOptions {
        max_cycles: 500_000_000,
        faults: Some(plan),
        watchdog: Some(WatchdogConfig::default()),
        verify_coherence: true,
        ..Default::default()
    };
    let a = System::new(cfg(), &w).run(opts);
    let b = System::new(cfg(), &w).run(opts);
    assert_eq!(a.cycles, b.cycles, "same seed must replay the same schedule");
    assert_eq!(a.faults, b.faults);
    if a.watchdog.is_none() {
        let stats = a.faults.expect("plan active");
        if stats.dropped > 0 {
            assert!(stats.retransmissions > 0, "drops recovered without retries?");
        }
        assert!(a.coherence.expect("requested").ok());
    }
}
