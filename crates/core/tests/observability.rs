//! Tier-1 observability guarantees: the latency breakdown accounts for
//! every read-stall cycle exactly, traces are deterministic and valid
//! Chrome trace-event documents, and the JSON reports round-trip.

use dresar::system::{ExecutionReport, RunOptions, System};
use dresar_obs::{ObserverConfig, CLASS_LABELS};
use dresar_types::config::{SwitchDirConfig, SystemConfig};
use dresar_types::{FromJson, JsonValue, ToJson, Workload};
use dresar_workloads::scientific;

fn cfg(switch_dir: bool) -> SystemConfig {
    let mut cfg = SystemConfig::paper_table2();
    cfg.switch_dir = switch_dir.then(SwitchDirConfig::paper_default);
    cfg
}

fn workload() -> Workload {
    scientific::fft(16, 256)
}

fn run_observed(switch_dir: bool, observers: ObserverConfig) -> ExecutionReport {
    System::new(cfg(switch_dir), &workload()).run(RunOptions { observers, ..RunOptions::default() })
}

#[test]
fn breakdown_phase_sums_equal_read_latency_cycles() {
    for switch_dir in [false, true] {
        let observers = ObserverConfig { latency_breakdown: true, ..Default::default() };
        let r = run_observed(switch_dir, observers);
        let bd = r.obs.as_ref().and_then(|o| o.breakdown.as_ref()).expect("breakdown recorded");

        // Every class's phase cycles sum to that class's total latency...
        for c in &bd.classes {
            assert_eq!(c.phases.iter().sum::<u64>(), c.total_latency);
            assert_eq!(c.hist.iter().sum::<u64>(), c.count);
        }
        // ...and the grand total accounts for ReadStats exactly: no stall
        // cycle is unattributed and none is double-counted.
        assert_eq!(bd.total_phase_cycles(), r.reads.latency_cycles, "sd={switch_dir}");
        assert_eq!(bd.total_reads(), r.reads.total(), "sd={switch_dir}");
        assert_eq!(bd.unfinished, 0, "all reads complete at barrier exit");
        // Per-node counts partition the total.
        assert_eq!(bd.per_node.iter().map(|n| n.count).sum::<u64>(), r.reads.total());
        assert_eq!(
            bd.per_node.iter().map(|n| n.total_latency).sum::<u64>(),
            r.reads.latency_cycles
        );
    }
}

#[test]
fn identical_runs_produce_byte_identical_traces() {
    let observers = ObserverConfig { trace: true, ..Default::default() };
    let t1 = run_observed(true, observers).obs.and_then(|o| o.trace).expect("trace recorded");
    let t2 = run_observed(true, observers).obs.and_then(|o| o.trace).expect("trace recorded");
    assert!(!t1.is_empty());
    assert_eq!(t1, t2, "tracing must be deterministic");
}

#[test]
fn traces_are_deterministic_on_8x8_pending_buffer_config() {
    // The paper's 8x8 (radix-4) switches use a pending buffer for TRANSIENT
    // entries; shrink it so the limit actually engages and verify tracing
    // stays byte-identical under the resulting retries.
    let mut c = SystemConfig::paper_table2();
    assert_eq!(c.switch.radix, 4, "paper config uses 8x8 switches");
    c.switch_dir =
        Some(SwitchDirConfig { pending_buffer_entries: 2, ..SwitchDirConfig::paper_default() });
    let observers = ObserverConfig { trace: true, ..Default::default() };
    let run = || System::new(c, &workload()).run(RunOptions { observers, ..RunOptions::default() });
    let (r1, r2) = (run(), run());
    let t1 = r1.obs.as_ref().and_then(|o| o.trace.as_ref()).expect("trace recorded");
    let t2 = r2.obs.as_ref().and_then(|o| o.trace.as_ref()).expect("trace recorded");
    assert!(!t1.is_empty());
    assert_eq!(t1, t2, "tracing must be deterministic with a constrained pending buffer");
    assert_eq!(r1.metrics, r2.metrics);
}

#[test]
fn metrics_snapshots_are_identical_across_same_seed_runs() {
    let run = || System::new(cfg(true), &workload()).run(RunOptions::default());
    let (r1, r2) = (run(), run());
    assert!(!r1.metrics.is_empty(), "simulator always assembles a metrics snapshot");
    assert_eq!(r1.metrics, r2.metrics);
    assert_eq!(
        r1.metrics.to_json().dump(),
        r2.metrics.to_json().dump(),
        "metrics snapshots must serialize byte-identically"
    );
    assert!(r1.metrics.diff(&r2.metrics).is_empty());
}

#[test]
fn trace_is_a_valid_chrome_trace_event_document() {
    let observers = ObserverConfig { trace: true, ..Default::default() };
    let trace = run_observed(true, observers).obs.and_then(|o| o.trace).expect("trace recorded");
    let doc = JsonValue::parse(&trace).expect("trace parses as JSON");
    let events = doc.as_arr().expect("trace-event array flavour");
    assert!(events.len() > 10, "trace has events");
    let mut phases_seen = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("every event has ph");
        phases_seen.insert(ph.to_string());
        assert!(ev.get("name").is_some(), "every event has a name");
        assert!(ev.get("pid").and_then(|v| v.as_u64()).is_some(), "every event has pid");
        if ph != "M" {
            assert!(ev.get("ts").and_then(|v| v.as_u64()).is_some(), "timed events have ts");
        }
    }
    // Metadata, async read spans, instants and home-service slices all show up.
    for required in ["M", "b", "e", "i", "X"] {
        assert!(phases_seen.contains(required), "missing ph={required}: {phases_seen:?}");
    }
}

#[test]
fn execution_report_round_trips_through_json() {
    let r = run_observed(true, ObserverConfig::default());
    assert!(r.obs.is_none(), "default config attaches no observers");
    let dumped = r.to_json().dump();
    let parsed = JsonValue::parse(&dumped).expect("report JSON parses");
    let r2 = ExecutionReport::from_json(&parsed).expect("report JSON deserializes");
    assert_eq!(r2.cycles, r.cycles);
    assert_eq!(r2.refs_executed, r.refs_executed);
    assert_eq!(r2.reads.to_json().dump(), r.reads.to_json().dump());
    assert_eq!(r2.dir.to_json().dump(), r.dir.to_json().dump());
    assert_eq!(r2.sd.to_json().dump(), r.sd.to_json().dump());
    // Re-serializing the reconstruction reproduces the document.
    assert_eq!(r2.to_json().dump(), dumped);
}

#[test]
fn obs_report_json_names_every_read_class() {
    let observers = ObserverConfig::all(1000);
    let r = run_observed(true, observers);
    let obs = r.obs.as_ref().expect("observers attached");
    assert!(obs.breakdown.is_some() && obs.timeseries.is_some() && obs.trace.is_some());
    let json = r.to_json().dump();
    let parsed = JsonValue::parse(&json).expect("parses");
    let classes = parsed
        .get("obs")
        .and_then(|o| o.get("breakdown"))
        .and_then(|b| b.get("classes"))
        .expect("breakdown classes serialized");
    for label in CLASS_LABELS {
        assert!(classes.get(label).is_some(), "class {label} present");
    }
}
