//! Report arithmetic and table formatting for the figure binaries.

use dresar_types::{JsonValue, ToJson};

/// Percentage reduction of `with` relative to `base`: the paper's
/// "normalized reduction" y-axes (Figures 8–11). Returns 0 for a zero,
/// negative or non-finite baseline, so callers never divide by zero or
/// propagate NaN into a report.
pub fn percent_reduction(base: f64, with: f64) -> f64 {
    if !base.is_finite() || !with.is_finite() || base <= 0.0 {
        0.0
    } else {
        (base - with) / base * 100.0
    }
}

/// `part` as a percentage of `whole`, with the same zero/NaN safety as
/// [`percent_reduction`]: a zero, negative or non-finite `whole` yields 0.
pub fn percent_of(part: f64, whole: f64) -> f64 {
    if !part.is_finite() || !whole.is_finite() || whole <= 0.0 {
        0.0
    } else {
        part / whole * 100.0
    }
}

/// A simple fixed-width table the figure binaries print: one row per
/// workload, one column per configuration (e.g. switch-directory size).
#[derive(Debug, Clone, Default)]
pub struct FigureTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    unit: String,
}

impl FigureTable {
    /// Creates a table with the given title, column headers and value unit.
    pub fn new(title: impl Into<String>, columns: Vec<String>, unit: impl Into<String>) -> Self {
        FigureTable { title: title.into(), columns, rows: Vec::new(), unit: unit.into() }
    }

    /// Appends a row; `values.len()` must equal the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Row accessor for tests and EXPERIMENTS.md generation.
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let label_w =
            self.rows.iter().map(|(l, _)| l.len()).chain(std::iter::once(8)).max().unwrap();
        let col_w = self.columns.iter().map(|c| c.len().max(9)).collect::<Vec<_>>();

        let mut s = String::new();
        s.push_str(&format!("{} ({})\n", self.title, self.unit));
        s.push_str(&format!("{:label_w$}", ""));
        for (c, w) in self.columns.iter().zip(&col_w) {
            s.push_str(&format!("  {c:>w$}"));
        }
        s.push('\n');
        for (label, vals) in &self.rows {
            s.push_str(&format!("{label:label_w$}"));
            for (v, w) in vals.iter().zip(&col_w) {
                s.push_str(&format!("  {v:>w$.2}"));
            }
            s.push('\n');
        }
        s
    }
}

impl ToJson for FigureTable {
    fn to_json(&self) -> JsonValue {
        let rows: Vec<JsonValue> = self
            .rows
            .iter()
            .map(|(label, vals)| {
                JsonValue::obj()
                    .field("label", label.as_str())
                    .field("values", vals.clone())
                    .build()
            })
            .collect();
        JsonValue::obj()
            .field("title", self.title.as_str())
            .field("unit", self.unit.as_str())
            .field("columns", self.columns.clone())
            .field("rows", rows)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_reduction_basics() {
        assert_eq!(percent_reduction(100.0, 50.0), 50.0);
        assert_eq!(percent_reduction(100.0, 100.0), 0.0);
        assert_eq!(percent_reduction(0.0, 10.0), 0.0);
        assert!(percent_reduction(100.0, 110.0) < 0.0, "regressions go negative");
    }

    #[test]
    fn table_renders_all_rows_and_columns() {
        let mut t = FigureTable::new(
            "Figure 8: Reduction in Home Node CtoC Transfers",
            vec!["256".into(), "512".into(), "1K".into(), "2K".into()],
            "% vs base",
        );
        t.push_row("FFT", vec![60.0, 63.0, 65.5, 66.0]);
        t.push_row("TPC-C", vec![40.0, 45.0, 50.0, 51.0]);
        let s = t.render();
        assert!(s.contains("FFT"));
        assert!(s.contains("TPC-C"));
        assert!(s.contains("65.50"));
        assert!(s.contains("% vs base"));
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = FigureTable::new("t", vec!["a".into()], "u");
        t.push_row("x", vec![1.0, 2.0]);
    }
}
