//! # dresar-stats
//!
//! Metric collection and report formatting for the `dresar` simulators.
//!
//! * [`reads`] — classification of read misses (clean-from-memory vs dirty
//!   cache-to-cache vs switch-directory-served) and latency/stall
//!   accumulation; powers Figures 1, 9 and 10.
//! * [`blocks`] — per-block miss/CtoC histograms and their cumulative
//!   distributions; powers Figure 2.
//! * [`report`] — normalized-reduction arithmetic and the fixed-width row
//!   formatting the figure binaries print.

#![warn(missing_docs)]

pub mod blocks;
pub mod reads;
pub mod report;

pub use blocks::BlockHistogram;
pub use reads::{ReadClass, ReadStats};
pub use report::{percent_of, percent_reduction, FigureTable};
