//! Read-miss classification and latency accounting.

use dresar_types::{FromJson, JsonError, JsonValue, ToJson};

/// How a read miss was ultimately serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadClass {
    /// Data came clean from the home memory.
    CleanMemory,
    /// Data came from another cache via a *home-node* cache-to-cache
    /// transfer (directory lookup at the home forwarded the intervention).
    DirtyCtoCHome,
    /// Data came from another cache via a *switch-directory* hit: the read
    /// never reached the home node.
    DirtyCtoCSwitch,
}

/// Accumulated read statistics for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReadStats {
    /// Reads serviced clean from memory.
    pub clean: u64,
    /// Home-node cache-to-cache transfers (Figure 8's metric).
    pub ctoc_home: u64,
    /// Switch-directory-served cache-to-cache transfers.
    pub ctoc_switch: u64,
    /// Total read-miss latency cycles (issue to data).
    pub latency_cycles: u64,
    /// Total processor stall cycles attributable to reads.
    pub stall_cycles: u64,
    /// Retries (NAKs) observed by readers.
    pub retries: u64,
}

impl ReadStats {
    /// Records a serviced read miss.
    pub fn record(&mut self, class: ReadClass, latency: u64) {
        match class {
            ReadClass::CleanMemory => self.clean += 1,
            ReadClass::DirtyCtoCHome => self.ctoc_home += 1,
            ReadClass::DirtyCtoCSwitch => self.ctoc_switch += 1,
        }
        self.latency_cycles += latency;
    }

    /// Total serviced read misses.
    pub fn total(&self) -> u64 {
        self.clean + self.ctoc_home + self.ctoc_switch
    }

    /// Total dirty (cache-to-cache) reads, however served.
    pub fn dirty(&self) -> u64 {
        self.ctoc_home + self.ctoc_switch
    }

    /// Fraction of reads that required a cache-to-cache transfer
    /// (Figure 1's y-axis).
    pub fn dirty_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.dirty() as f64 / self.total() as f64
        }
    }

    /// Mean read-miss latency in cycles (Figure 9's basis).
    pub fn avg_latency(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.latency_cycles as f64 / self.total() as f64
        }
    }

    /// Merges another run's counters (used when aggregating processors).
    pub fn merge(&mut self, other: &ReadStats) {
        self.clean += other.clean;
        self.ctoc_home += other.ctoc_home;
        self.ctoc_switch += other.ctoc_switch;
        self.latency_cycles += other.latency_cycles;
        self.stall_cycles += other.stall_cycles;
        self.retries += other.retries;
    }
}

impl ToJson for ReadStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("clean", self.clean)
            .field("ctoc_home", self.ctoc_home)
            .field("ctoc_switch", self.ctoc_switch)
            .field("latency_cycles", self.latency_cycles)
            .field("stall_cycles", self.stall_cycles)
            .field("retries", self.retries)
            .build()
    }
}

impl FromJson for ReadStats {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        Ok(ReadStats {
            clean: JsonError::want_u64(v, "clean")?,
            ctoc_home: JsonError::want_u64(v, "ctoc_home")?,
            ctoc_switch: JsonError::want_u64(v, "ctoc_switch")?,
            latency_cycles: JsonError::want_u64(v, "latency_cycles")?,
            stall_cycles: JsonError::want_u64(v, "stall_cycles")?,
            retries: JsonError::want_u64(v, "retries")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies() {
        let mut s = ReadStats::default();
        s.record(ReadClass::CleanMemory, 100);
        s.record(ReadClass::DirtyCtoCHome, 320);
        s.record(ReadClass::DirtyCtoCSwitch, 200);
        assert_eq!(s.total(), 3);
        assert_eq!(s.dirty(), 2);
        assert_eq!(s.latency_cycles, 620);
        assert!((s.dirty_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.avg_latency() - 620.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ReadStats::default();
        assert_eq!(s.dirty_fraction(), 0.0);
        assert_eq!(s.avg_latency(), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = ReadStats {
            clean: 1,
            ctoc_home: 2,
            ctoc_switch: 3,
            latency_cycles: 10,
            stall_cycles: 5,
            retries: 1,
        };
        let b = ReadStats {
            clean: 10,
            ctoc_home: 20,
            ctoc_switch: 30,
            latency_cycles: 100,
            stall_cycles: 50,
            retries: 9,
        };
        a.merge(&b);
        assert_eq!(a.clean, 11);
        assert_eq!(a.ctoc_home, 22);
        assert_eq!(a.ctoc_switch, 33);
        assert_eq!(a.latency_cycles, 110);
        assert_eq!(a.stall_cycles, 55);
        assert_eq!(a.retries, 10);
    }
}
