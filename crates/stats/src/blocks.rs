//! Per-block access histograms (Figure 2).
//!
//! Figure 2 of the paper plots, for TPC-C, the cumulative percentage of
//! read misses and cache-to-cache transfers over blocks sorted by
//! decreasing misses-per-block, demonstrating that ~10% of the blocks
//! account for ~88% of the CtoC transfers. [`BlockHistogram`] collects the
//! per-block counters and extracts that cumulative curve.

use dresar_types::BlockAddr;
use std::collections::HashMap;

/// Per-block miss/CtoC counters.
#[derive(Debug, Clone, Default)]
pub struct BlockHistogram {
    counts: HashMap<BlockAddr, (u64, u64)>, // (misses, ctocs)
}

/// One point of the cumulative distribution: after the top `block_rank`
/// blocks, what fraction of misses / CtoCs is covered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CumulativePoint {
    /// Rank bound (1-based): the top-`block_rank` blocks by miss count.
    pub block_rank: usize,
    /// Cumulative fraction of all read misses covered.
    pub miss_fraction: f64,
    /// Cumulative fraction of all CtoC transfers covered.
    pub ctoc_fraction: f64,
}

impl BlockHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read miss to `block`; `was_ctoc` marks a dirty read.
    pub fn record_miss(&mut self, block: BlockAddr, was_ctoc: bool) {
        let e = self.counts.entry(block).or_insert((0, 0));
        e.0 += 1;
        if was_ctoc {
            e.1 += 1;
        }
    }

    /// Number of distinct blocks touched by misses.
    pub fn blocks_touched(&self) -> usize {
        self.counts.len()
    }

    /// Total read misses recorded.
    pub fn total_misses(&self) -> u64 {
        self.counts.values().map(|&(m, _)| m).sum()
    }

    /// Total CtoC transfers recorded.
    pub fn total_ctocs(&self) -> u64 {
        self.counts.values().map(|&(_, c)| c).sum()
    }

    /// The cumulative distribution over blocks sorted by decreasing misses
    /// (the paper's x-axis ordering), sampled at `samples` evenly spaced
    /// ranks (plus the final rank).
    pub fn cumulative(&self, samples: usize) -> Vec<CumulativePoint> {
        let mut per_block: Vec<(u64, u64)> = self.counts.values().copied().collect();
        per_block.sort_unstable_by_key(|&(m, _)| std::cmp::Reverse(m));
        let total_m = self.total_misses().max(1) as f64;
        let total_c = self.total_ctocs().max(1) as f64;

        let n = per_block.len();
        if n == 0 {
            return Vec::new();
        }
        let step = (n / samples.max(1)).max(1);
        let mut out = Vec::new();
        let mut cm = 0u64;
        let mut cc = 0u64;
        for (i, &(m, c)) in per_block.iter().enumerate() {
            cm += m;
            cc += c;
            let rank = i + 1;
            if rank % step == 0 || rank == n {
                out.push(CumulativePoint {
                    block_rank: rank,
                    miss_fraction: cm as f64 / total_m,
                    ctoc_fraction: cc as f64 / total_c,
                });
            }
        }
        out
    }

    /// Fraction of CtoC transfers covered by the top `frac` (0..1] of
    /// blocks — the paper's "10% of blocks account for 88% of CtoCs"
    /// statistic.
    pub fn ctoc_coverage_of_top(&self, frac: f64) -> f64 {
        let n = self.counts.len();
        if n == 0 {
            return 0.0;
        }
        let k = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        let mut per_block: Vec<(u64, u64)> = self.counts.values().copied().collect();
        per_block.sort_unstable_by_key(|&(m, _)| std::cmp::Reverse(m));
        let covered: u64 = per_block[..k].iter().map(|&(_, c)| c).sum();
        covered as f64 / self.total_ctocs().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> BlockHistogram {
        let mut h = BlockHistogram::new();
        // One hot block with 90 ctoc misses, nine cold blocks with 1 clean
        // miss each.
        for _ in 0..90 {
            h.record_miss(BlockAddr(0), true);
        }
        for b in 1..10u64 {
            h.record_miss(BlockAddr(b), false);
        }
        h
    }

    #[test]
    fn totals() {
        let h = skewed();
        assert_eq!(h.blocks_touched(), 10);
        assert_eq!(h.total_misses(), 99);
        assert_eq!(h.total_ctocs(), 90);
    }

    #[test]
    fn top_10pct_covers_all_ctocs() {
        let h = skewed();
        assert!((h.ctoc_coverage_of_top(0.1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_monotone_and_complete() {
        let h = skewed();
        let pts = h.cumulative(5);
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].miss_fraction >= w[0].miss_fraction);
            assert!(w[1].ctoc_fraction >= w[0].ctoc_fraction);
            assert!(w[1].block_rank > w[0].block_rank);
        }
        let last = pts.last().unwrap();
        assert_eq!(last.block_rank, 10);
        assert!((last.miss_fraction - 1.0).abs() < 1e-12);
        assert!((last.ctoc_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_empty() {
        let h = BlockHistogram::new();
        assert!(h.cumulative(10).is_empty());
        assert_eq!(h.ctoc_coverage_of_top(0.1), 0.0);
    }
}
