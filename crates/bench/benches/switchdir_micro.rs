//! Microbenchmarks of the switch-directory device: the SRAM array and the
//! Figure 4 FSM, at the paper's operating points.

use dresar::switchdir::{PortScheduler, SwitchDirectory};
use dresar_bench::harness::{bench, black_box};
use dresar_types::config::SwitchDirConfig;
use dresar_types::msg::{Endpoint, Message, MsgType};
use dresar_types::BlockAddr;

fn msg(kind: MsgType, block: u64, requester: u8) -> Message {
    Message::new(
        0,
        kind,
        BlockAddr(block),
        Endpoint::Proc(requester),
        Endpoint::Mem(0),
        requester,
        0,
    )
}

fn bench_snoop() {
    for entries in [256u32, 1024, 2048] {
        let cfg = SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() };

        {
            let mut sd = SwitchDirectory::new(cfg);
            let mut i = 0u64;
            bench(&format!("switchdir_snoop/write_reply_insert_{entries}"), || {
                let mut m = msg(MsgType::WriteReply, i % (entries as u64 * 4), (i % 16) as u8);
                i += 1;
                black_box(sd.snoop(&mut m));
            });
        }

        {
            let mut sd = SwitchDirectory::new(cfg);
            for blk in 0..(entries as u64 / 2) {
                sd.snoop(&mut msg(MsgType::WriteReply, blk, 1));
            }
            let mut i = 0u64;
            bench(&format!("switchdir_snoop/read_hit_{entries}"), || {
                let blk = i % (entries as u64 / 2);
                i += 1;
                let mut rd = msg(MsgType::ReadRequest, blk, 2);
                let act = sd.snoop(&mut rd);
                // Clean up the transient so the hit repeats.
                let mut cb = msg(MsgType::CopyBack, blk, 1);
                sd.snoop(&mut cb);
                sd.snoop(&mut msg(MsgType::WriteReply, blk, 1));
                black_box(act);
            });
        }

        {
            let mut sd = SwitchDirectory::new(cfg);
            let mut i = 0u64;
            bench(&format!("switchdir_snoop/read_miss_{entries}"), || {
                let mut rd = msg(MsgType::ReadRequest, 1_000_000 + i, 2);
                i += 1;
                black_box(sd.snoop(&mut rd));
            });
        }
    }
}

/// Overhead guard for the observability contract: `snoop` (the plain entry
/// point) against an explicit `snoop_probed` with [`NullProbe`]. The two
/// must monomorphize to the same code, so the paired numbers should agree
/// within noise — a gap here means the no-probe path grew real work.
fn bench_probe_overhead() {
    use dresar_obs::{NullProbe, SwitchLoc};
    let cfg = SwitchDirConfig { entries: 1024, ..SwitchDirConfig::paper_default() };
    {
        let mut sd = SwitchDirectory::new(cfg);
        let mut i = 0u64;
        bench("switchdir_overhead/snoop_plain", || {
            let mut m = msg(MsgType::WriteReply, i % 4096, (i % 16) as u8);
            i += 1;
            black_box(sd.snoop(&mut m));
        });
    }
    {
        let mut sd = SwitchDirectory::new(cfg);
        let mut i = 0u64;
        bench("switchdir_overhead/snoop_null_probe", || {
            let mut m = msg(MsgType::WriteReply, i % 4096, (i % 16) as u8);
            i += 1;
            black_box(sd.snoop_probed(&mut m, SwitchLoc::default(), 0, &mut NullProbe));
        });
    }
}

fn bench_port_scheduler() {
    use MsgType::*;
    let batch8 = [
        ReadRequest,
        WriteRequest,
        WriteReply,
        ReadRequest,
        WriteBack,
        CopyBack,
        CtoCRequest,
        Retry,
    ];
    let s = PortScheduler::paper_8x8();
    bench("port_scheduler_8x8_window", || {
        black_box(s.schedule(black_box(&batch8)));
    });
}

fn main() {
    bench_snoop();
    bench_probe_overhead();
    bench_port_scheduler();
}
