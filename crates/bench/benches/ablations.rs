//! Simulation-cost ablations for the design choices DESIGN.md calls out:
//! transient-read policy, switch radix (8x8 two-stage vs 4x4 four-stage),
//! and directory associativity. The *quality* deltas of the same ablations
//! are printed by the `ablations` binary; these benches track what each
//! variant costs to simulate.

use dresar::system::{RunOptions, System};
use dresar::TransientReadPolicy;
use dresar_bench::harness::{bench, black_box};
use dresar_types::config::{SwitchDirConfig, SystemConfig};
use dresar_workloads::scientific;

fn main() {
    let workload = scientific::fft(16, 512);

    let run = |cfg: SystemConfig, policy: TransientReadPolicy, w: &dresar_types::Workload| {
        System::new(cfg, w).run(RunOptions { transient_policy: policy, ..RunOptions::default() })
    };

    bench("ablations/policy_retry", || {
        black_box(run(SystemConfig::paper_table2(), TransientReadPolicy::Retry, &workload));
    });
    bench("ablations/policy_accumulate", || {
        black_box(run(SystemConfig::paper_table2(), TransientReadPolicy::Accumulate, &workload));
    });
    bench("ablations/radix4_two_stage", || {
        black_box(run(SystemConfig::paper_table2(), TransientReadPolicy::Retry, &workload));
    });
    {
        let mut cfg = SystemConfig::paper_table2();
        cfg.switch.radix = 2;
        bench("ablations/radix2_four_stage", || {
            black_box(run(cfg, TransientReadPolicy::Retry, &workload));
        });
    }
    {
        let mut cfg = SystemConfig::paper_table2();
        cfg.switch_dir = Some(SwitchDirConfig { ways: 1, ..SwitchDirConfig::paper_default() });
        bench("ablations/assoc_1way", || {
            black_box(run(cfg, TransientReadPolicy::Retry, &workload));
        });
    }
}
