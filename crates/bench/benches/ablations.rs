//! Simulation-cost ablations for the design choices DESIGN.md calls out:
//! transient-read policy, switch radix (8x8 two-stage vs 4x4 four-stage),
//! and directory associativity. The *quality* deltas of the same ablations
//! are printed by the `ablations` binary; these benches track what each
//! variant costs to simulate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dresar::system::{RunOptions, System};
use dresar::TransientReadPolicy;
use dresar_types::config::{SwitchDirConfig, SystemConfig};
use dresar_workloads::scientific;

fn bench_ablations(c: &mut Criterion) {
    let workload = scientific::fft(16, 512);
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    let run = |cfg: SystemConfig, policy: TransientReadPolicy, w: &dresar_types::Workload| {
        System::new(cfg, w)
            .run(RunOptions { transient_policy: policy, ..RunOptions::default() })
    };

    g.bench_function("policy_retry", |b| {
        b.iter(|| black_box(run(SystemConfig::paper_table2(), TransientReadPolicy::Retry, &workload)))
    });
    g.bench_function("policy_accumulate", |b| {
        b.iter(|| {
            black_box(run(SystemConfig::paper_table2(), TransientReadPolicy::Accumulate, &workload))
        })
    });
    g.bench_function("radix4_two_stage", |b| {
        b.iter(|| black_box(run(SystemConfig::paper_table2(), TransientReadPolicy::Retry, &workload)))
    });
    g.bench_function("radix2_four_stage", |b| {
        let mut cfg = SystemConfig::paper_table2();
        cfg.switch.radix = 2;
        b.iter(|| black_box(run(cfg, TransientReadPolicy::Retry, &workload)))
    });
    g.bench_function("assoc_1way", |b| {
        let mut cfg = SystemConfig::paper_table2();
        cfg.switch_dir = Some(SwitchDirConfig { ways: 1, ..SwitchDirConfig::paper_default() });
        b.iter(|| black_box(run(cfg, TransientReadPolicy::Retry, &workload)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
