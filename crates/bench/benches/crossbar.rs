//! Microbenchmarks of the cycle-accurate crossbar switch and the
//! flit-level network.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dresar_interconnect::crossbar::{flits_of_message, Crossbar};
use dresar_interconnect::{routes, Bmin, FlitNetwork};
use dresar_types::config::SystemConfig;

fn bench_arbitration(c: &mut Criterion) {
    let mut g = c.benchmark_group("crossbar");
    g.throughput(Throughput::Elements(8));
    g.bench_function("arbitrate_full_8x8", |b| {
        b.iter_batched(
            || {
                let mut x = Crossbar::new(8, 8, 2, 4, 4);
                for i in 0..8usize {
                    for f in flits_of_message(i as u64, 2, i as u64, ((i + 3) % 8) as u8) {
                        x.offer(i, 0, f);
                    }
                }
                x
            },
            |mut x| {
                black_box(x.step(0));
                black_box(x.step(1));
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_flit_network(c: &mut Criterion) {
    let bmin = Bmin::new(16, 4);
    let cfg = SystemConfig::paper_table2().switch;
    let mut g = c.benchmark_group("flit_network");
    g.throughput(Throughput::Elements(32));
    g.bench_function("deliver_32_messages", |b| {
        b.iter(|| {
            let mut net = FlitNetwork::new(bmin, cfg);
            for p in 0..16u8 {
                net.inject(p as u64, &routes::forward(&bmin, p, (p + 5) % 16), 1);
                net.inject(100 + p as u64, &routes::backward(&bmin, (p + 5) % 16, p), 5);
            }
            black_box(net.run_until_drained(100_000).len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_arbitration, bench_flit_network);
criterion_main!(benches);
