//! Microbenchmarks of the cycle-accurate crossbar switch and the
//! flit-level network.

use dresar_bench::harness::{bench, bench_with_setup, black_box};
use dresar_interconnect::crossbar::{flits_of_message, Crossbar};
use dresar_interconnect::{routes, Bmin, FlitNetwork};
use dresar_types::config::SystemConfig;

fn bench_arbitration() {
    bench_with_setup(
        "crossbar/arbitrate_full_8x8",
        || {
            let mut x = Crossbar::new(8, 8, 2, 4, 4);
            for i in 0..8usize {
                for f in flits_of_message(i as u64, 2, i as u64, ((i + 3) % 8) as u8) {
                    x.offer(i, 0, f);
                }
            }
            x
        },
        |mut x| {
            black_box(x.step(0));
            black_box(x.step(1));
        },
    );
}

fn bench_flit_network() {
    let bmin = Bmin::new(16, 4);
    let cfg = SystemConfig::paper_table2().switch;
    bench("flit_network/deliver_32_messages", || {
        let mut net = FlitNetwork::new(bmin, cfg);
        for p in 0..16u8 {
            net.inject(p as u64, &routes::forward(&bmin, p, (p + 5) % 16), 1)
                .expect("fixed validation route");
            net.inject(100 + p as u64, &routes::backward(&bmin, (p + 5) % 16, p), 5)
                .expect("fixed validation route");
        }
        black_box(net.run_until_drained(100_000).len());
    });
}

fn main() {
    bench_arbitration();
    bench_flit_network();
}
