//! End-to-end simulation cost per paper workload at test scale: how long
//! regenerating each figure's data points takes per workload, for both the
//! base and the switch-directory machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dresar::TransientReadPolicy;
use dresar_bench::{run_one, suite};
use dresar_workloads::Scale;

fn bench_workloads(c: &mut Criterion) {
    let benches = suite(Scale::Tiny);
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    for b in &benches {
        g.bench_function(format!("{}_base", b.label), |bch| {
            bch.iter(|| black_box(run_one(b, None, TransientReadPolicy::Retry)));
        });
        g.bench_function(format!("{}_sd1k", b.label), |bch| {
            bch.iter(|| black_box(run_one(b, Some(1024), TransientReadPolicy::Retry)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
