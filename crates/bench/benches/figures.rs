//! End-to-end simulation cost per paper workload at test scale: how long
//! regenerating each figure's data points takes per workload, for both the
//! base and the switch-directory machine.

use dresar::TransientReadPolicy;
use dresar_bench::harness::{bench, black_box};
use dresar_bench::{run_one, suite};
use dresar_workloads::Scale;

fn main() {
    let benches = suite(Scale::Tiny);
    for b in &benches {
        bench(&format!("simulate/{}_base", b.label), || {
            black_box(run_one(b, None, TransientReadPolicy::Retry));
        });
        bench(&format!("simulate/{}_sd1k", b.label), || {
            black_box(run_one(b, Some(1024), TransientReadPolicy::Retry));
        });
    }
}
