//! `dresar-scope` observability cost guard.
//!
//! Two modes:
//!
//! * default — measures the always-on flight recorder's simulation
//!   throughput (cycles/sec) against the `NullProbe` fast path and emits
//!   one JSON document. With `--max-overhead-pct P` the process exits
//!   nonzero when the recorder costs more than `P` percent, which is how
//!   CI enforces the guard on `main` while keeping it informational on
//!   pull requests.
//! * `--emit-trace` — runs one traced simulation and prints the raw
//!   Chrome-trace document on stdout, for external schema validation.
//!
//! ```text
//! scope_overhead [tiny|reduced|paper] [--repeats N] [--max-overhead-pct P]
//! scope_overhead [tiny|reduced|paper] --emit-trace
//! ```
//!
//! Both configurations run the identical workload through the identical
//! harness ([`dresar_bench::run_one_observed`]); only the observer config
//! differs, so the ratio isolates the probe dispatch + ring-write cost.
//! Per-config throughput is the *best* of `--repeats` runs (default 3):
//! minimum-noise estimators compare far more stably than means on shared
//! CI hosts.

use dresar::TransientReadPolicy;
use dresar_bench::{json_doc, run_one_observed, scale_from_args, suite, Bench};
use dresar_obs::{ObserverConfig, DEFAULT_FLIGHT_CAPACITY};
use std::time::Instant;

fn main() {
    let scale = scale_from_args();
    let mut repeats = 3usize;
    let mut max_overhead_pct: Option<f64> = None;
    let mut emit_trace = false;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--repeats" => repeats = parse_num(&value("--repeats"), "--repeats").max(1.0) as usize,
            "--max-overhead-pct" => {
                max_overhead_pct =
                    Some(parse_num(&value("--max-overhead-pct"), "--max-overhead-pct"))
            }
            "--emit-trace" => emit_trace = true,
            _ => {} // scale positional / shared flags handled by the lib
        }
    }

    let benches = suite(scale);
    let bench =
        benches.iter().find(|b| b.label == "FFT").expect("suite always contains the FFT workload");

    if emit_trace {
        let observers = ObserverConfig { trace: true, ..ObserverConfig::default() };
        let (_, obs) = run_one_observed(bench, Some(1024), TransientReadPolicy::Retry, observers);
        let trace = obs.and_then(|o| o.trace).expect("traced execution-driven run yields a trace");
        print!("{trace}");
        return;
    }

    let null_cfg = ObserverConfig::default();
    let flight_cfg =
        ObserverConfig { flight: Some(DEFAULT_FLIGHT_CAPACITY), ..ObserverConfig::default() };
    // Warm caches/allocator once, untimed.
    run_one_observed(bench, Some(1024), TransientReadPolicy::Retry, null_cfg);

    let mut best_null = 0.0f64;
    let mut best_flight = 0.0f64;
    for _ in 0..repeats {
        best_null = best_null.max(throughput(bench, null_cfg));
        best_flight = best_flight.max(throughput(bench, flight_cfg));
    }
    let overhead_pct = 100.0 * (best_null - best_flight) / best_null;

    let doc = json_doc("scope-overhead")
        .field("scale", format!("{scale:?}"))
        .field("workload", bench.label)
        .field("repeats", repeats as u64)
        .field("null_probe_cycles_per_sec", best_null)
        .field("flight_cycles_per_sec", best_flight)
        .field("overhead_pct", overhead_pct)
        .field("max_overhead_pct", max_overhead_pct)
        .build();
    println!("{}", doc.dump());

    if let Some(limit) = max_overhead_pct {
        if overhead_pct > limit {
            eprintln!("flight-recorder overhead {overhead_pct:.1}% exceeds the {limit:.1}% budget");
            std::process::exit(1);
        }
    }
}

/// Simulated cycles per wall-clock second for one run under `observers`.
fn throughput(bench: &Bench, observers: ObserverConfig) -> f64 {
    let t0 = Instant::now();
    let (m, _) = run_one_observed(bench, Some(1024), TransientReadPolicy::Retry, observers);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    m.exec_cycles as f64 / secs
}

fn parse_num(value: &str, flag: &str) -> f64 {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} wants a number, got '{value}'");
        std::process::exit(2);
    })
}
