//! Figure 1: fraction of reads serviced clean-from-memory vs dirty
//! cache-to-cache, for the five scientific applications (execution-driven)
//! and the two commercial workloads (trace-driven).

use dresar::TransientReadPolicy;
use dresar_bench::{json_doc, json_requested, run_one, scale_from_args, suite};
use dresar_stats::FigureTable;
use dresar_types::ToJson;

fn main() {
    let scale = scale_from_args();
    let mut table = FigureTable::new(
        format!("Figure 1: Fraction of Clean vs. Dirty Memory Reads (scale={scale:?})"),
        vec!["clean %".into(), "dirty CtoC %".into(), "read misses".into()],
        "percent of read misses",
    );
    for b in suite(scale) {
        // Figure 1 characterizes the *base* machine (no switch directory).
        let m = run_one(&b, None, TransientReadPolicy::Retry);
        let total = m.reads.total().max(1) as f64;
        table.push_row(
            b.label,
            vec![100.0 * m.reads.clean as f64 / total, 100.0 * m.reads.dirty_fraction(), total],
        );
    }
    if json_requested() {
        let doc = json_doc("fig1")
            .field("scale", format!("{scale:?}"))
            .field("table", table.to_json())
            .build();
        println!("{}", doc.dump());
    } else {
        println!("{}", table.render());
        println!("Paper bands: FFT/SOR 60-70% dirty; TC/FWA/GAUSS 15-30%; TPC-C ~38%; TPC-D ~62%.");
    }
}
