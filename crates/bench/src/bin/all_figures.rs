//! Regenerates the full evaluation: Figures 1, 2, 8, 9, 10, 11 plus the
//! Table 2/3 parameter dump, in one run, emitting EXPERIMENTS.md-style
//! markdown on stdout.
//!
//! Usage: `all_figures [tiny|reduced|paper]` (default `reduced`).

use dresar::TransientReadPolicy;
use dresar_bench::{full_sweep, par_map, run_one, scale_from_args, suite, Sweep};
use dresar_stats::percent_reduction;
use dresar_trace_sim::TraceSimulator;
use dresar_types::config::TraceSimConfig;
use dresar_workloads::commercial;

fn reduction_row(s: &Sweep, metric: impl Fn(&dresar_bench::Metrics) -> f64) -> String {
    let base = metric(&s.base);
    let cells: Vec<String> =
        s.sized.iter().map(|(_, m)| format!("{:.1}", percent_reduction(base, metric(m)))).collect();
    format!("| {} | {} |", s.label, cells.join(" | "))
}

fn main() {
    let scale = scale_from_args();
    let t0 = std::time::Instant::now();
    println!("# dresar evaluation (scale = {scale:?})\n");

    // ---- Figure 1 ------------------------------------------------------
    println!("## Figure 1 — clean vs dirty read fractions (base machine)\n");
    println!("| workload | read misses | clean % | dirty CtoC % |");
    println!("|----------|------------:|--------:|-------------:|");
    let benches = suite(scale);
    // Base runs shard across cores; rows print in suite order.
    let fig1 = par_map(&benches, |b| run_one(b, None, TransientReadPolicy::Retry));
    for (b, m) in benches.iter().zip(&fig1) {
        let total = m.reads.total().max(1) as f64;
        println!(
            "| {} | {} | {:.1} | {:.1} |",
            b.label,
            m.reads.total(),
            100.0 * m.reads.clean as f64 / total,
            100.0 * m.reads.dirty_fraction()
        );
    }

    // ---- Figure 2 ------------------------------------------------------
    println!("\n## Figure 2 — TPC-C block access skew\n");
    let tpcc = commercial::tpcc(16, scale.commercial_refs(), 0xD2E5_A25E);
    let mut sim = TraceSimulator::new(TraceSimConfig::paper_base());
    sim.collect_histogram();
    let rep = sim.run(&tpcc);
    let h = rep.histogram.unwrap();
    println!(
        "blocks touched = {}, read misses = {}, CtoC transfers = {}, top-10% CtoC coverage = {:.1}% (paper: ~88%)",
        h.blocks_touched(),
        h.total_misses(),
        h.total_ctocs(),
        100.0 * h.ctoc_coverage_of_top(0.10)
    );

    // ---- Figures 8-11 --------------------------------------------------
    let sweeps = full_sweep(scale);
    let header = "| workload | 256 | 512 | 1K | 2K |\n|----------|----:|----:|---:|---:|";

    println!("\n## Figure 8 — reduction in home-node CtoC transfers (% vs base)\n\n{header}");
    for s in &sweeps {
        println!("{}", reduction_row(s, |m| m.home_ctoc()));
    }
    println!("\n## Figure 9 — reduction in average read latency (% vs base)\n\n{header}");
    for s in &sweeps {
        println!("{}", reduction_row(s, |m| m.avg_read_latency()));
    }
    println!("\n## Figure 10 — reduction in read stall time (% vs base)\n\n{header}");
    for s in &sweeps {
        println!("{}", reduction_row(s, |m| m.read_stall()));
    }
    println!("\n## Figure 11 — reduction in execution time (% vs base)\n\n{header}");
    for s in &sweeps {
        println!("{}", reduction_row(s, |m| m.exec()));
    }

    println!("\n_Total regeneration time: {:.1}s_", t0.elapsed().as_secs_f64());
}
