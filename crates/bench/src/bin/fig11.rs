//! Figure 11: reduction in execution time, normalized to the base machine,
//! across switch-directory sizes 256–2048.

use dresar_bench::{full_sweep, json_doc, json_requested, scale_from_args};
use dresar_stats::{percent_reduction, FigureTable};
use dresar_types::ToJson;

fn main() {
    let scale = scale_from_args();
    let mut table = FigureTable::new(
        format!("Figure 11: Execution Time Reduction (scale={scale:?})"),
        vec!["256".into(), "512".into(), "1K".into(), "2K".into()],
        "% reduction vs base",
    );
    for s in full_sweep(scale) {
        let vals =
            s.sized.iter().map(|(_, m)| percent_reduction(s.base.exec(), m.exec())).collect();
        table.push_row(s.label, vals);
    }
    if json_requested() {
        let doc = json_doc("fig11")
            .field("scale", format!("{scale:?}"))
            .field("table", table.to_json())
            .build();
        println!("{}", doc.dump());
    } else {
        println!("{}", table.render());
        println!("Paper: SOR up to 9%, FFT/TC ~4%, TPC-C ~4%, TPC-D ~2%, others negligible.");
    }
}
