//! `bench_report` — the repo's standard telemetry run and regression gate.
//!
//! Runs the figure/ablation configurations (base and 1K-entry switch
//! directory per workload) plus a deterministic crossbar validation batch,
//! and writes one schema-versioned document, `BENCH_dresar.json`, holding
//! each run's component-metrics registry. Everything in `runs` is a
//! deterministic simulation counter: two same-seed invocations produce
//! byte-identical `runs` sections. The `host` section (wall-clock phases,
//! simulated cycles/sec, peak RSS) is measured on the host and therefore
//! nondeterministic; it is recorded for humans and never compared.
//!
//! Usage:
//!
//! ```text
//! bench_report [tiny|reduced|paper] [--out PATH] [--heatmap PATH]
//!              [--baseline PATH [--tolerance PCT] [--informational]]
//! ```
//!
//! With `--heatmap`, a second schema-versioned document is written holding
//! the topology contention heatmap sweep: every execution-driven workload
//! at base and sd1024, each run carrying its metrics, per-phase latency
//! breakdown and per-resource contention attribution (the input format of
//! `dresar_diff`). Like `runs`, the heatmap document is byte-identical
//! across thread counts.
//!
//! With `--baseline`, the freshly produced registries are diffed scalar-by-
//! scalar against the baseline document. Any scalar whose relative change
//! exceeds the tolerance (percent, default 0 — exact match) is a
//! regression: they are listed on stderr and the process exits nonzero,
//! unless `--informational` downgrades the gate to reporting only (the
//! mode CI uses on pull requests).

use dresar_bench::sweep::{heatmap_runs, standard_runs, RunResult, SweepRunner};
use dresar_bench::{json_doc, suite};
use dresar_obs::{HostProfiler, MetricsRegistry};
use dresar_types::{FromJson, JsonValue, ToJson, SCHEMA_VERSION};
use dresar_workloads::Scale;
use std::process::ExitCode;

struct Args {
    scale: Scale,
    out: String,
    heatmap: Option<String>,
    baseline: Option<String>,
    tolerance_pct: f64,
    informational: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Tiny,
        out: "BENCH_dresar.json".into(),
        heatmap: None,
        baseline: None,
        tolerance_pct: 0.0,
        informational: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--heatmap" => args.heatmap = Some(it.next().ok_or("--heatmap needs a path")?),
            "--baseline" => args.baseline = Some(it.next().ok_or("--baseline needs a path")?),
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a percentage")?;
                args.tolerance_pct =
                    v.parse().map_err(|_| format!("bad tolerance '{v}': expected a number"))?;
            }
            "--informational" => args.informational = true,
            other if !other.starts_with("--") => {
                args.scale = Scale::parse(other).ok_or_else(|| {
                    format!("unknown scale '{other}', expected tiny|reduced|paper")
                })?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn total_sim_cycles(runs: &[RunResult]) -> u64 {
    use dresar_obs::MetricValue;
    runs.iter()
        .flat_map(|r| [r.metrics.get("sim.cycles"), r.metrics.get("trace.exec_cycles")])
        .filter_map(|v| match v {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        })
        .sum()
}

/// Parses the `runs` array of a `bench_report` document into name→registry.
fn parse_runs(doc: &JsonValue) -> Result<Vec<(String, MetricsRegistry)>, String> {
    if let Some(v) = doc.get("schema_version").and_then(JsonValue::as_u64) {
        if v != SCHEMA_VERSION as u64 {
            eprintln!(
                "bench_report: note: baseline schema_version {v} differs from current \
                 {SCHEMA_VERSION}; comparing anyway"
            );
        }
    }
    let Some(JsonValue::Arr(runs)) = doc.get("runs") else {
        return Err("document has no `runs` array".into());
    };
    runs.iter()
        .map(|r| {
            let name = r
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("run entry missing `name`")?
                .to_string();
            let metrics = r.get("metrics").ok_or("run entry missing `metrics`")?;
            let reg =
                MetricsRegistry::from_json(metrics).map_err(|e| format!("run '{name}': {e}"))?;
            Ok((name, reg))
        })
        .collect()
}

/// Compares current runs against a baseline document. Returns the number of
/// regressions (scalar changes beyond tolerance, plus whole runs that
/// appeared or disappeared).
fn compare(
    current: &[RunResult],
    baseline: &[(String, MetricsRegistry)],
    tolerance_pct: f64,
) -> usize {
    let tol = tolerance_pct / 100.0;
    let mut regressions = 0usize;
    for (name, base_reg) in baseline {
        let Some(cur) = current.iter().find(|r| &r.name == name) else {
            eprintln!("REGRESSION {name}: run present in baseline but not produced");
            regressions += 1;
            continue;
        };
        for d in cur.metrics.diff(base_reg) {
            let rel = d.rel_change();
            if rel.abs() > tol {
                eprintln!(
                    "REGRESSION {name}/{}: baseline {:?} -> current {:?} ({:+.2}%)",
                    d.name,
                    d.baseline,
                    d.current,
                    rel * 100.0
                );
                regressions += 1;
            }
        }
    }
    for r in current {
        if !baseline.iter().any(|(n, _)| n == &r.name) {
            eprintln!("REGRESSION {}: run not present in baseline (record a new one)", r.name);
            regressions += 1;
        }
    }
    regressions
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_report: {e}");
            return ExitCode::from(2);
        }
    };

    let mut prof = HostProfiler::new();
    prof.phase("sweep");
    let benches = suite(args.scale);
    // Shards workload chains across cores; the run list is sorted by name
    // so the document is byte-identical to a serial execution.
    let (runs, timings) = standard_runs(&benches, SweepRunner::from_env());
    for t in &timings {
        prof.run_timing(&t.name, t.wall_seconds);
    }
    prof.phase("report");
    let sim_cycles = total_sim_cycles(&runs);

    let runs_json: Vec<JsonValue> = runs
        .iter()
        .map(|r| {
            JsonValue::obj()
                .field("name", r.name.as_str())
                .field("metrics", r.metrics.to_json())
                .build()
        })
        .collect();
    let host = prof.finish();
    let doc = json_doc("bench_report")
        .field("scale", format!("{:?}", args.scale))
        .field("runs", runs_json)
        .field(
            "host",
            JsonValue::obj()
                .field("profile", host.to_json())
                .field("simulated_cycles", sim_cycles)
                .field("cycles_per_sec", host.cycles_per_sec(sim_cycles))
                .build(),
        )
        .build();
    let mut text = doc.dump();
    text.push('\n');
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("bench_report: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!(
        "bench_report: {} runs at scale {:?} -> {} ({} simulated cycles, {:.0} cycles/sec)",
        runs.len(),
        args.scale,
        args.out,
        sim_cycles,
        host.cycles_per_sec(sim_cycles)
    );

    if let Some(hm_path) = &args.heatmap {
        let hm_runs = heatmap_runs(&benches, SweepRunner::from_env());
        let hm_json: Vec<JsonValue> = hm_runs.iter().map(ToJson::to_json).collect();
        let hm_doc = json_doc("heatmap")
            .field("scale", format!("{:?}", args.scale))
            .field("runs", hm_json)
            .build();
        let mut hm_text = hm_doc.dump();
        hm_text.push('\n');
        if let Err(e) = std::fs::write(hm_path, &hm_text) {
            eprintln!("bench_report: cannot write {hm_path}: {e}");
            return ExitCode::from(2);
        }
        let critical = hm_runs
            .iter()
            .filter_map(|r| r.heatmap.critical.as_ref().map(|c| (&r.name, c)))
            .max_by(|a, b| a.1.utilization.total_cmp(&b.1.utilization));
        match critical {
            Some((name, c)) => println!(
                "bench_report: {} heatmap runs -> {hm_path} (hottest: {name} {} at {:.1}%)",
                hm_runs.len(),
                c.resource,
                100.0 * c.utilization
            ),
            None => println!("bench_report: {} heatmap runs -> {hm_path}", hm_runs.len()),
        }
    }

    let Some(baseline_path) = &args.baseline else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))
        .and_then(|s| {
            JsonValue::parse(&s).map_err(|e| format!("cannot parse {baseline_path}: {e}"))
        })
        .and_then(|doc| parse_runs(&doc))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_report: {e}");
            return ExitCode::from(2);
        }
    };
    let regressions = compare(&runs, &baseline, args.tolerance_pct);
    if regressions == 0 {
        println!(
            "bench_report: 0 regressions vs {baseline_path} (tolerance {}%)",
            args.tolerance_pct
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_report: {regressions} regression(s) vs {baseline_path} (tolerance {}%)",
            args.tolerance_pct
        );
        if args.informational {
            eprintln!("bench_report: informational mode, not failing");
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
