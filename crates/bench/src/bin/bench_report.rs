//! `bench_report` — the repo's standard telemetry run and regression gate.
//!
//! Runs the figure/ablation configurations (base and 1K-entry switch
//! directory per workload) plus a deterministic crossbar validation batch,
//! and writes one schema-versioned document, `BENCH_dresar.json`, holding
//! each run's component-metrics registry. Everything in `runs` is a
//! deterministic simulation counter: two same-seed invocations produce
//! byte-identical `runs` sections. The `host` section (wall-clock phases,
//! simulated cycles/sec, peak RSS) is measured on the host and therefore
//! nondeterministic; it is recorded for humans and never compared.
//!
//! Usage:
//!
//! ```text
//! bench_report [tiny|reduced|paper] [--out PATH] [--heatmap PATH]
//!              [--scaling PATH] [--protocols PATH]
//!              [--baseline PATH [--tolerance PCT] [--informational]]
//! ```
//!
//! With `--scaling`, the machine-size sweep (16/64/256-node radix-4 BMINs,
//! base and two switch-directory sizes, two workloads) runs and its figure
//! is written as a markdown document: raw counters, the derived
//! latency-reduction table, and a bar chart of the largest-SD benefit per
//! machine size. The sweep runs inside the host-profiler window, so the
//! main document's `host.profile` (and its VmHWM peak) covers the 256-node
//! machines — the CI scaling leg gates on that number. The figure itself
//! contains only deterministic counters and is byte-identical across
//! sweep thread counts.
//!
//! With `--protocols`, the coherence-protocol ablation (MSI, MESI, MOESI
//! and the directoryless-shared-LLC baseline, each at base and two
//! switch-directory sizes, two workloads, the paper's 16-node machine)
//! runs and its figure is written as a markdown document: raw counters and
//! the per-protocol latency-reduction table, including cycles saved per
//! switch-served cache-to-cache read. Every run is audited by the
//! per-protocol coherence checker; the figure is byte-identical across
//! sweep thread counts.
//!
//! With `--heatmap`, a second schema-versioned document is written holding
//! the topology contention heatmap sweep: every execution-driven workload
//! at base and sd1024, each run carrying its metrics, per-phase latency
//! breakdown and per-resource contention attribution (the input format of
//! `dresar_diff`). Like `runs`, the heatmap document is byte-identical
//! across thread counts.
//!
//! With `--baseline`, the freshly produced registries are diffed scalar-by-
//! scalar against the baseline document. Any scalar whose relative change
//! exceeds the tolerance (percent, default 0 — exact match) is a
//! regression: they are listed on stderr and the process exits nonzero,
//! unless `--informational` downgrades the gate to reporting only (the
//! mode CI uses on pull requests).

use dresar_bench::sweep::{
    heatmap_runs, protocol_runs, scaling_runs, standard_runs, ProtocolRun, RunResult, ScalingRun,
    SweepRunner, SCALING_CONFIGS,
};
use dresar_bench::{json_doc, suite};
use dresar_obs::{HostProfiler, MetricsRegistry};
use dresar_types::{FromJson, JsonValue, ToJson, SCHEMA_VERSION};
use dresar_workloads::Scale;
use std::process::ExitCode;

struct Args {
    scale: Scale,
    out: String,
    heatmap: Option<String>,
    scaling: Option<String>,
    protocols: Option<String>,
    baseline: Option<String>,
    tolerance_pct: f64,
    informational: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Tiny,
        out: "BENCH_dresar.json".into(),
        heatmap: None,
        scaling: None,
        protocols: None,
        baseline: None,
        tolerance_pct: 0.0,
        informational: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--heatmap" => args.heatmap = Some(it.next().ok_or("--heatmap needs a path")?),
            "--scaling" => args.scaling = Some(it.next().ok_or("--scaling needs a path")?),
            "--protocols" => args.protocols = Some(it.next().ok_or("--protocols needs a path")?),
            "--baseline" => args.baseline = Some(it.next().ok_or("--baseline needs a path")?),
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a percentage")?;
                args.tolerance_pct =
                    v.parse().map_err(|_| format!("bad tolerance '{v}': expected a number"))?;
            }
            "--informational" => args.informational = true,
            other if !other.starts_with("--") => {
                args.scale = Scale::parse(other).ok_or_else(|| {
                    format!("unknown scale '{other}', expected tiny|reduced|paper")
                })?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn total_sim_cycles(runs: &[RunResult]) -> u64 {
    use dresar_obs::MetricValue;
    runs.iter()
        .flat_map(|r| [r.metrics.get("sim.cycles"), r.metrics.get("trace.exec_cycles")])
        .filter_map(|v| match v {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        })
        .sum()
}

/// Parses the `runs` array of a `bench_report` document into name→registry.
fn parse_runs(doc: &JsonValue) -> Result<Vec<(String, MetricsRegistry)>, String> {
    if let Some(v) = doc.get("schema_version").and_then(JsonValue::as_u64) {
        if v != SCHEMA_VERSION as u64 {
            eprintln!(
                "bench_report: note: baseline schema_version {v} differs from current \
                 {SCHEMA_VERSION}; comparing anyway"
            );
        }
    }
    let Some(JsonValue::Arr(runs)) = doc.get("runs") else {
        return Err("document has no `runs` array".into());
    };
    runs.iter()
        .map(|r| {
            let name = r
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("run entry missing `name`")?
                .to_string();
            let metrics = r.get("metrics").ok_or("run entry missing `metrics`")?;
            let reg =
                MetricsRegistry::from_json(metrics).map_err(|e| format!("run '{name}': {e}"))?;
            Ok((name, reg))
        })
        .collect()
}

/// Compares current runs against a baseline document. Returns the number of
/// regressions (scalar changes beyond tolerance, plus whole runs that
/// appeared or disappeared).
fn compare(
    current: &[RunResult],
    baseline: &[(String, MetricsRegistry)],
    tolerance_pct: f64,
) -> usize {
    let tol = tolerance_pct / 100.0;
    let mut regressions = 0usize;
    for (name, base_reg) in baseline {
        let Some(cur) = current.iter().find(|r| &r.name == name) else {
            eprintln!("REGRESSION {name}: run present in baseline but not produced");
            regressions += 1;
            continue;
        };
        for d in cur.metrics.diff(base_reg) {
            let rel = d.rel_change();
            if rel.abs() > tol {
                eprintln!(
                    "REGRESSION {name}/{}: baseline {:?} -> current {:?} ({:+.2}%)",
                    d.name,
                    d.baseline,
                    d.current,
                    rel * 100.0
                );
                regressions += 1;
            }
        }
    }
    for r in current {
        if !baseline.iter().any(|(n, _)| n == &r.name) {
            eprintln!("REGRESSION {}: run not present in baseline (record a new one)", r.name);
            regressions += 1;
        }
    }
    regressions
}

/// Renders the `--scaling` figure: the nodes x sd-size x workload sweep as
/// a markdown document — a raw-counter table, the derived benefit table,
/// and a bar chart of the largest-SD latency reduction per machine size. Every
/// number is a deterministic simulation counter (or a fixed-precision ratio
/// of two), so the document is byte-identical across sweep thread counts.
fn render_scaling(scale: Scale, runs: &[ScalingRun]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("# Scaling figure: switch-directory benefit vs machine size\n\n");
    let _ = writeln!(
        out,
        "Generated by `bench_report {} --scaling <path>`. All numbers are\n\
         deterministic simulation counters; the document is byte-identical\n\
         across sweep thread counts.\n",
        format!("{scale:?}").to_lowercase()
    );
    out.push_str(
        "Each machine-size step adds one BMIN stage to the home path, so the\n\
         paper predicts the switch-directory shortcut (serving cache-to-cache\n\
         reads from the switch instead of the home directory) saves more read\n\
         latency the larger the machine.\n\n",
    );

    out.push_str("## Runs\n\n");
    out.push_str(
        "| run | nodes | stages | sd entries | avg read latency | home CtoC | \
         switch CtoC | SD hits | exec cycles |\n\
         |---|--:|--:|--:|--:|--:|--:|--:|--:|\n",
    );
    for r in runs {
        let sd = r.sd_entries.map_or("-".to_string(), |e| e.to_string());
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.2} | {} | {} | {} | {} |",
            r.name,
            r.nodes,
            r.stages,
            sd,
            r.metrics.avg_read_latency(),
            r.metrics.reads.ctoc_home,
            r.metrics.reads.ctoc_switch,
            r.metrics.sd_hits,
            r.metrics.exec_cycles,
        );
    }

    // Benefit per (workload, machine): latency reduction vs that machine's
    // own base run.
    let base = |wl: &str, nodes: usize| -> Option<f64> {
        runs.iter()
            .find(|r| r.workload == wl && r.nodes == nodes && r.sd_entries.is_none())
            .map(|r| r.metrics.avg_read_latency())
    };
    let benefit = |r: &ScalingRun| -> Option<f64> {
        let b = base(r.workload, r.nodes)?;
        (b > 0.0).then(|| 100.0 * (b - r.metrics.avg_read_latency()) / b)
    };

    // Cycles saved per switch-served CtoC read: the total read-latency
    // cycles the SD machine shaved off the base machine, amortized over the
    // reads the switches actually served. This is the per-shortcut saving —
    // the quantity the paper's longer-home-path argument is directly about
    // (each extra BMIN stage is another hop plus directory occupancy the
    // shortcut skips) — and unlike the aggregate percentage it is not
    // diluted by how much of the workload's traffic the SD can capture.
    let per_hit = |r: &ScalingRun| -> Option<f64> {
        let base_run = runs
            .iter()
            .find(|b| b.workload == r.workload && b.nodes == r.nodes && b.sd_entries.is_none())?;
        (r.metrics.reads.ctoc_switch > 0).then(|| {
            (base_run.metrics.reads.latency_cycles as f64 - r.metrics.reads.latency_cycles as f64)
                / r.metrics.reads.ctoc_switch as f64
        })
    };

    let sd_tags: Vec<(&str, u32)> =
        SCALING_CONFIGS.iter().filter_map(|&(tag, sd)| sd.map(|e| (tag, e))).collect();
    // Spotlight the largest SD on the axis for the per-hit column and the
    // bar chart: it is the config with the most capacity headroom, so its
    // numbers isolate path length from eviction-thrash effects.
    let (spot_tag, spot_entries) = *sd_tags.last().expect("SCALING_CONFIGS has an SD config");
    out.push_str("\n## Benefit: read-latency reduction vs the base machine\n\n");
    let _ = write!(out, "| workload | nodes | stages |");
    for (tag, _) in &sd_tags {
        let _ = write!(out, " {tag} |");
    }
    let _ = write!(out, " {spot_tag} cycles saved / switch CtoC |\n|---|--:|--:|");
    for _ in 0..=sd_tags.len() {
        out.push_str("--:|");
    }
    out.push('\n');
    for probe in runs.iter().filter(|r| r.sd_entries.is_none()) {
        let mut cells = String::new();
        let mut saved = String::from("-");
        for &(_, entries) in &sd_tags {
            let run = runs.iter().find(|r| {
                r.workload == probe.workload
                    && r.nodes == probe.nodes
                    && r.sd_entries == Some(entries)
            });
            match run.and_then(&benefit) {
                Some(pct) => {
                    let _ = write!(cells, " {pct:.1}% |");
                }
                None => cells.push_str(" - |"),
            }
            if entries == spot_entries {
                if let Some(s) = run.and_then(&per_hit) {
                    saved = format!("{s:.0}");
                }
            }
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} |{} {saved} |",
            probe.workload, probe.nodes, probe.stages, cells
        );
    }

    let _ = write!(out, "\n```text\n{spot_tag} read-latency reduction (one # per percent)\n\n");
    for probe in runs.iter().filter(|r| r.sd_entries == Some(spot_entries)) {
        if let Some(pct) = benefit(probe) {
            let bar = "#".repeat(pct.round().clamp(0.0, 60.0) as usize);
            let _ = writeln!(
                out,
                "{:<4} n{:03} ({} stages) {:<60} {pct:5.1}%",
                probe.workload, probe.nodes, probe.stages, bar
            );
        }
    }
    out.push_str("```\n");
    out
}

/// Renders the `--protocols` figure: the protocol x sd-size x workload
/// ablation as a markdown document — a raw-counter table, the derived
/// per-protocol benefit table (including cycles saved per switch-served
/// CtoC read), and a bar chart of the largest-SD latency reduction per
/// protocol. Every number is a deterministic simulation counter (or a
/// fixed-precision ratio of two), so the document is byte-identical across
/// sweep thread counts.
fn render_protocols(scale: Scale, runs: &[ProtocolRun]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("# Protocol figure: switch-directory benefit per coherence protocol\n\n");
    let _ = writeln!(
        out,
        "Generated by `bench_report {} --protocols <path>`. All numbers are\n\
         deterministic simulation counters; the document is byte-identical\n\
         across sweep thread counts.\n",
        format!("{scale:?}").to_lowercase()
    );
    out.push_str(
        "The switch directories are protocol-agnostic hint caches: they snoop\n\
         the same reply/copyback traffic and shortcut dirty remote reads the\n\
         same way under every protocol. What changes per protocol is how many\n\
         dirty remote reads exist to shortcut — MESI's silent upgrades create\n\
         dirty blocks the home never saw a write for, MOESI's owner keeps\n\
         serving readers after the first shortcut, and the directoryless\n\
         shared-LLC baseline (`dls`) serves reads at home without any\n\
         intervention, which is the latency floor the shortcut competes\n\
         against.\n\n",
    );

    out.push_str("## Runs\n\n");
    out.push_str(
        "| run | protocol | sd entries | avg read latency | home CtoC | \
         switch CtoC | SD hits | exec cycles |\n\
         |---|---|--:|--:|--:|--:|--:|--:|\n",
    );
    for r in runs {
        let sd = r.sd_entries.map_or("-".to_string(), |e| e.to_string());
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2} | {} | {} | {} | {} |",
            r.name,
            r.protocol,
            sd,
            r.metrics.avg_read_latency(),
            r.metrics.reads.ctoc_home,
            r.metrics.reads.ctoc_switch,
            r.metrics.sd_hits,
            r.metrics.exec_cycles,
        );
    }

    // Benefit per (workload, protocol): latency reduction vs that
    // protocol's own base run — each protocol competes against itself, so
    // the column isolates what the switch directories add on top of the
    // protocol's native sharing optimizations.
    let base = |r: &ProtocolRun| -> Option<&ProtocolRun> {
        runs.iter().find(|b| {
            b.workload == r.workload && b.protocol == r.protocol && b.sd_entries.is_none()
        })
    };
    let benefit = |r: &ProtocolRun| -> Option<f64> {
        let b = base(r)?.metrics.avg_read_latency();
        (b > 0.0).then(|| 100.0 * (b - r.metrics.avg_read_latency()) / b)
    };
    // Cycles saved per switch-served CtoC read: total read-latency cycles
    // the SD machine shaved off the same protocol's base machine, amortized
    // over the reads the switches actually served — the per-shortcut saving
    // the paper's benefit argument is about, per protocol.
    let per_hit = |r: &ProtocolRun| -> Option<f64> {
        let b = base(r)?;
        (r.metrics.reads.ctoc_switch > 0).then(|| {
            (b.metrics.reads.latency_cycles as f64 - r.metrics.reads.latency_cycles as f64)
                / r.metrics.reads.ctoc_switch as f64
        })
    };

    let sd_tags: Vec<(&str, u32)> =
        SCALING_CONFIGS.iter().filter_map(|&(tag, sd)| sd.map(|e| (tag, e))).collect();
    let (spot_tag, spot_entries) = *sd_tags.last().expect("SCALING_CONFIGS has an SD config");
    out.push_str("\n## Benefit: read-latency reduction vs each protocol's own base machine\n\n");
    let _ = write!(out, "| workload | protocol |");
    for (tag, _) in &sd_tags {
        let _ = write!(out, " {tag} |");
    }
    let _ = write!(out, " {spot_tag} cycles saved / switch CtoC |\n|---|---|");
    for _ in 0..=sd_tags.len() {
        out.push_str("--:|");
    }
    out.push('\n');
    for probe in runs.iter().filter(|r| r.sd_entries.is_none()) {
        let mut cells = String::new();
        let mut saved = String::from("-");
        for &(_, entries) in &sd_tags {
            let run = runs.iter().find(|r| {
                r.workload == probe.workload
                    && r.protocol == probe.protocol
                    && r.sd_entries == Some(entries)
            });
            match run.and_then(&benefit) {
                Some(pct) => {
                    let _ = write!(cells, " {pct:.1}% |");
                }
                None => cells.push_str(" - |"),
            }
            if entries == spot_entries {
                if let Some(s) = run.and_then(&per_hit) {
                    saved = format!("{s:.0}");
                }
            }
        }
        let _ = writeln!(out, "| {} | {} |{} {saved} |", probe.workload, probe.protocol, cells);
    }

    let _ = write!(out, "\n```text\n{spot_tag} read-latency reduction (one # per percent)\n\n");
    for probe in runs.iter().filter(|r| r.sd_entries == Some(spot_entries)) {
        if let Some(pct) = benefit(probe) {
            let bar = "#".repeat(pct.round().clamp(0.0, 60.0) as usize);
            let _ =
                writeln!(out, "{:<4} {:<5} {:<60} {pct:5.1}%", probe.workload, probe.protocol, bar);
        }
    }
    out.push_str("```\n");
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_report: {e}");
            return ExitCode::from(2);
        }
    };

    let mut prof = HostProfiler::new();
    prof.phase("sweep");
    let benches = suite(args.scale);
    // Shards workload chains across cores; the run list is sorted by name
    // so the document is byte-identical to a serial execution.
    let (runs, timings) = standard_runs(&benches, SweepRunner::from_env());
    for t in &timings {
        prof.run_timing(&t.name, t.wall_seconds);
    }
    // The scaling sweep runs inside the profiled window on purpose: its
    // 256-node machines dominate peak RSS, and the CI scaling leg gates on
    // the `host.profile` VmHWM this run records.
    let scaling = args.scaling.as_ref().map(|_| {
        prof.phase("scaling");
        scaling_runs(args.scale, SweepRunner::from_env())
    });
    let protocols = args.protocols.as_ref().map(|_| {
        prof.phase("protocols");
        protocol_runs(args.scale, SweepRunner::from_env())
    });
    prof.phase("report");
    let sim_cycles = total_sim_cycles(&runs);

    let runs_json: Vec<JsonValue> = runs
        .iter()
        .map(|r| {
            JsonValue::obj()
                .field("name", r.name.as_str())
                .field("metrics", r.metrics.to_json())
                .build()
        })
        .collect();
    let host = prof.finish();
    let doc = json_doc("bench_report")
        .field("scale", format!("{:?}", args.scale))
        .field("runs", runs_json)
        .field(
            "host",
            JsonValue::obj()
                .field("profile", host.to_json())
                .field("simulated_cycles", sim_cycles)
                .field("cycles_per_sec", host.cycles_per_sec(sim_cycles))
                .build(),
        )
        .build();
    let mut text = doc.dump();
    text.push('\n');
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("bench_report: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!(
        "bench_report: {} runs at scale {:?} -> {} ({} simulated cycles, {:.0} cycles/sec)",
        runs.len(),
        args.scale,
        args.out,
        sim_cycles,
        host.cycles_per_sec(sim_cycles)
    );

    if let (Some(path), Some(runs)) = (&args.scaling, &scaling) {
        let text = render_scaling(args.scale, runs);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("bench_report: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("bench_report: {} scaling runs -> {path}", runs.len());
    }

    if let (Some(path), Some(runs)) = (&args.protocols, &protocols) {
        let text = render_protocols(args.scale, runs);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("bench_report: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("bench_report: {} protocol runs -> {path}", runs.len());
    }

    if let Some(hm_path) = &args.heatmap {
        let hm_runs = heatmap_runs(&benches, SweepRunner::from_env());
        let hm_json: Vec<JsonValue> = hm_runs.iter().map(ToJson::to_json).collect();
        let hm_doc = json_doc("heatmap")
            .field("scale", format!("{:?}", args.scale))
            .field("runs", hm_json)
            .build();
        let mut hm_text = hm_doc.dump();
        hm_text.push('\n');
        if let Err(e) = std::fs::write(hm_path, &hm_text) {
            eprintln!("bench_report: cannot write {hm_path}: {e}");
            return ExitCode::from(2);
        }
        let critical = hm_runs
            .iter()
            .filter_map(|r| r.heatmap.critical.as_ref().map(|c| (&r.name, c)))
            .max_by(|a, b| a.1.utilization.total_cmp(&b.1.utilization));
        match critical {
            Some((name, c)) => println!(
                "bench_report: {} heatmap runs -> {hm_path} (hottest: {name} {} at {:.1}%)",
                hm_runs.len(),
                c.resource,
                100.0 * c.utilization
            ),
            None => println!("bench_report: {} heatmap runs -> {hm_path}", hm_runs.len()),
        }
    }

    let Some(baseline_path) = &args.baseline else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))
        .and_then(|s| {
            JsonValue::parse(&s).map_err(|e| format!("cannot parse {baseline_path}: {e}"))
        })
        .and_then(|doc| parse_runs(&doc))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_report: {e}");
            return ExitCode::from(2);
        }
    };
    let regressions = compare(&runs, &baseline, args.tolerance_pct);
    if regressions == 0 {
        println!(
            "bench_report: 0 regressions vs {baseline_path} (tolerance {}%)",
            args.tolerance_pct
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_report: {regressions} regression(s) vs {baseline_path} (tolerance {}%)",
            args.tolerance_pct
        );
        if args.informational {
            eprintln!("bench_report: informational mode, not failing");
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
