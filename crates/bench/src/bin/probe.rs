//! Calibration probe: prints the raw Figure 1/8/9/10/11 inputs for every
//! workload at the chosen scale, for sanity-checking the reproduction
//! against the paper's bands before the figure binaries format them.
//!
//! With `--json`, emits one machine-readable document instead, including
//! the per-phase read-latency breakdown from the observability layer
//! (execution-driven workloads only). Adding `--heatmap` also attaches the
//! topology contention heatmap to each observed run (`base_heatmap` /
//! `with_sd_heatmap`), naming the critical resource per configuration.

use dresar::TransientReadPolicy;
use dresar_bench::{
    faults_from_args, json_doc, json_requested, par_map, run_one, run_one_faulted,
    run_one_observed, scale_from_args, suite,
};
use dresar_faults::FaultPlan;
use dresar_obs::{ObserverConfig, DEFAULT_ATTRIB_WINDOW};
use dresar_stats::{percent_of, percent_reduction};
use dresar_types::{JsonValue, ToJson};

fn main() {
    let scale = scale_from_args();
    if let Some(plan) = faults_from_args() {
        run_faulted(scale, plan);
        return;
    }
    if json_requested() {
        emit_json(scale);
        return;
    }
    println!("scale = {scale:?}");
    println!(
        "{:8} {:>10} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9} {:>7}",
        "workload",
        "reads",
        "dirty%",
        "homeCC",
        "swCC",
        "sdhit%",
        "lat_base",
        "lat_sd",
        "exec_red%",
        "stall_red%"
    );
    // Workloads shard across cores; results print in suite order, so the
    // table is identical to a serial run.
    let benches = suite(scale);
    let pairs = par_map(&benches, |b| {
        let t0 = std::time::Instant::now();
        let base = run_one(b, None, TransientReadPolicy::Retry);
        let with = run_one(b, Some(1024), TransientReadPolicy::Retry);
        (base, with, t0.elapsed().as_secs_f64())
    });
    for (b, (base, with, seconds)) in benches.iter().zip(pairs) {
        let dirty_pct = 100.0 * base.reads.dirty_fraction();
        let sd_serve_pct = percent_of(with.reads.ctoc_switch as f64, with.reads.dirty() as f64);
        let exec_red = percent_reduction(base.exec(), with.exec());
        let stall_red = percent_reduction(base.read_stall(), with.read_stall());
        let cc_red = percent_reduction(base.home_ctoc(), with.home_ctoc());
        println!(
            "{:8} {:>10} {:>7.1}% {:>8} {:>8} {:>7.1}% | {:>9.1} {:>9.1} {:>8.2}% {:>8.2}%  ccred={:.1}%  ({:.1}s)",
            b.label,
            base.reads.total(),
            dirty_pct,
            with.reads.ctoc_home,
            with.reads.ctoc_switch,
            sd_serve_pct,
            base.avg_read_latency(),
            with.avg_read_latency(),
            exec_red,
            stall_red,
            cc_red,
            seconds,
        );
    }
}

/// `--faults <plan>`: runs every execution-driven workload (sd1024) under
/// the plan and prints what the injector did, the watchdog verdict, and the
/// end-of-run coherence audit. With `--json`, emits one document instead.
fn run_faulted(scale: dresar_workloads::Scale, plan: FaultPlan) {
    let benches = suite(scale);
    let runs: Vec<_> = par_map(&benches, |b| {
        run_one_faulted(b, Some(1024), TransientReadPolicy::Retry, plan).map(|r| (b.label, r))
    })
    .into_iter()
    .flatten()
    .collect();
    if json_requested() {
        let workloads: Vec<JsonValue> = runs
            .iter()
            .map(|(label, r)| {
                JsonValue::obj().field("label", *label).field("report", r.to_json()).build()
            })
            .collect();
        let doc = json_doc("probe-faults")
            .field("scale", format!("{scale:?}"))
            .field("workloads", workloads)
            .build();
        println!("{}", doc.dump());
        return;
    }
    println!("scale = {scale:?}  (fault-injected; sd1024)");
    println!(
        "{:8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "workload", "cycles", "dropped", "retrans", "lost", "scrubbed", "watchdog", "coherence"
    );
    for (label, r) in &runs {
        let f = r.faults.unwrap_or_default();
        let wd = r.watchdog.as_ref().map_or("-", |w| w.kind.label());
        let coh = r.coherence.as_ref().map_or("-", |c| if c.ok() { "ok" } else { "VIOLATED" });
        println!(
            "{:8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
            label, r.cycles, f.dropped, f.retransmissions, f.lost, f.scrubbed, wd, coh
        );
    }
}

fn emit_json(scale: dresar_workloads::Scale) {
    let heatmap = std::env::args().skip(1).any(|a| a == "--heatmap");
    let observers = ObserverConfig {
        latency_breakdown: true,
        heatmap_window: heatmap.then_some(DEFAULT_ATTRIB_WINDOW),
        ..Default::default()
    };
    let benches = suite(scale);
    let workloads: Vec<JsonValue> = par_map(&benches, |b| {
        let (base, mut base_obs) = run_one_observed(b, None, TransientReadPolicy::Retry, observers);
        let (with, mut with_obs) =
            run_one_observed(b, Some(1024), TransientReadPolicy::Retry, observers);
        let mut w = JsonValue::obj()
            .field("label", b.label)
            .field("base", base.to_json())
            .field("with_sd", with.to_json())
            .field(
                "reductions",
                JsonValue::obj()
                    .field("home_ctoc_pct", percent_reduction(base.home_ctoc(), with.home_ctoc()))
                    .field(
                        "avg_read_latency_pct",
                        percent_reduction(base.avg_read_latency(), with.avg_read_latency()),
                    )
                    .field(
                        "read_stall_pct",
                        percent_reduction(base.read_stall(), with.read_stall()),
                    )
                    .field("exec_pct", percent_reduction(base.exec(), with.exec()))
                    .build(),
            );
        if let Some(bd) = base_obs.as_mut().and_then(|o| o.breakdown.take()) {
            w = w.field("base_breakdown", bd.to_json());
        }
        if let Some(bd) = with_obs.as_mut().and_then(|o| o.breakdown.take()) {
            w = w.field("with_sd_breakdown", bd.to_json());
        }
        if let Some(hm) = base_obs.and_then(|o| o.heatmap) {
            w = w.field("base_heatmap", hm.to_json());
        }
        if let Some(hm) = with_obs.and_then(|o| o.heatmap) {
            w = w.field("with_sd_heatmap", hm.to_json());
        }
        w.build()
    });
    let doc = json_doc("probe")
        .field("scale", format!("{scale:?}"))
        .field("workloads", workloads)
        .build();
    println!("{}", doc.dump());
}
