//! Calibration probe: prints the raw Figure 1/8/9/10/11 inputs for every
//! workload at the chosen scale, for sanity-checking the reproduction
//! against the paper's bands before the figure binaries format them.

use dresar::TransientReadPolicy;
use dresar_bench::{run_one, scale_from_args, suite};

fn main() {
    let scale = scale_from_args();
    println!("scale = {scale:?}");
    println!(
        "{:8} {:>10} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9} {:>7}",
        "workload", "reads", "dirty%", "homeCC", "swCC", "sdhit%", "lat_base", "lat_sd", "exec_red%", "stall_red%"
    );
    for b in suite(scale) {
        let t0 = std::time::Instant::now();
        let base = run_one(&b, None, TransientReadPolicy::Retry);
        let with = run_one(&b, Some(1024), TransientReadPolicy::Retry);
        let dirty_pct = 100.0 * base.reads.dirty_fraction();
        let sd_serve_pct = if with.reads.dirty() > 0 {
            100.0 * with.reads.ctoc_switch as f64 / with.reads.dirty() as f64
        } else {
            0.0
        };
        let exec_red = 100.0 * (base.exec() - with.exec()) / base.exec().max(1.0);
        let stall_red = 100.0 * (base.read_stall() - with.read_stall()) / base.read_stall().max(1.0);
        let cc_red = 100.0 * (base.home_ctoc() - with.home_ctoc()) / base.home_ctoc().max(1.0);
        println!(
            "{:8} {:>10} {:>7.1}% {:>8} {:>8} {:>7.1}% | {:>9.1} {:>9.1} {:>8.2}% {:>8.2}%  ccred={:.1}%  ({:.1}s)",
            b.label,
            base.reads.total(),
            dirty_pct,
            with.reads.ctoc_home,
            with.reads.ctoc_switch,
            sd_serve_pct,
            base.avg_read_latency(),
            with.avg_read_latency(),
            exec_red,
            stall_red,
            cc_red,
            t0.elapsed().as_secs_f64(),
        );
    }
}
