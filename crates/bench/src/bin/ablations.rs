//! Quality ablations for the DRESAR design choices (DESIGN.md §3):
//!
//! * TRANSIENT-read policy: the paper's Retry choice vs the rejected
//!   bit-vector Accumulate alternative;
//! * pending-buffer capacity (§4.3): unlimited vs 16 vs 1 vs effectively
//!   disabled;
//! * directory associativity: the paper's 4-way vs direct-mapped;
//! * switch radix: 8x8 two-stage vs 4x4 four-stage (more, smaller switch
//!   directories closer to the processors).
//!
//! Usage: `ablations [tiny|reduced|paper] [--json]`.

use dresar::system::{RunOptions, System};
use dresar::TransientReadPolicy;
use dresar_bench::{json_doc, json_requested, scale_from_args};
use dresar_types::config::{SwitchDirConfig, SystemConfig};
use dresar_types::{JsonValue, ToJson, Workload};
use dresar_workloads::scientific;

struct Variant {
    name: &'static str,
    cfg: SystemConfig,
    policy: TransientReadPolicy,
}

fn variants() -> Vec<Variant> {
    let base = SystemConfig::paper_table2();
    let mk = |name, cfg, policy| Variant { name, cfg, policy };
    let with_sd = |f: &dyn Fn(&mut SwitchDirConfig)| {
        let mut c = base;
        let mut sd = SwitchDirConfig::paper_default();
        f(&mut sd);
        c.switch_dir = Some(sd);
        c
    };
    vec![
        mk("paper default (retry, 4-way, pend=16)", base, TransientReadPolicy::Retry),
        mk("accumulate readers", base, TransientReadPolicy::Accumulate),
        mk(
            "pending buffer = 1",
            with_sd(&|sd| sd.pending_buffer_entries = 1),
            TransientReadPolicy::Retry,
        ),
        mk(
            "pending buffer = 64",
            with_sd(&|sd| sd.pending_buffer_entries = 64),
            TransientReadPolicy::Retry,
        ),
        mk("direct-mapped directory", with_sd(&|sd| sd.ways = 1), TransientReadPolicy::Retry),
        mk("8-way directory", with_sd(&|sd| sd.ways = 8), TransientReadPolicy::Retry),
        mk(
            "4x4 switches (4 stages)",
            {
                let mut c = base;
                c.switch.radix = 2;
                c
            },
            TransientReadPolicy::Retry,
        ),
        mk("no switch directory (base)", SystemConfig::paper_base(), TransientReadPolicy::Retry),
    ]
}

fn main() {
    let scale = scale_from_args();
    let json = json_requested();
    let workloads: Vec<(&str, Workload)> = vec![
        ("FFT", scientific::fft(16, scale.fft_points())),
        ("SOR", scientific::sor(16, scale.grid_n().min(192), 2)),
    ];
    let mut json_workloads: Vec<JsonValue> = Vec::new();
    for (wname, w) in &workloads {
        if !json {
            println!("\n=== {wname} ({} refs) ===", w.total_refs());
            println!(
                "{:40} {:>9} {:>9} {:>9} {:>10} {:>9}",
                "variant", "homeCC", "swCC", "retries", "avg lat", "exec"
            );
        }
        let mut json_variants: Vec<JsonValue> = Vec::new();
        for v in variants() {
            let r = System::new(v.cfg, w)
                .run(RunOptions { transient_policy: v.policy, ..RunOptions::default() });
            if json {
                json_variants.push(
                    JsonValue::obj().field("variant", v.name).field("report", r.to_json()).build(),
                );
            } else {
                println!(
                    "{:40} {:>9} {:>9} {:>9} {:>10.1} {:>9}",
                    v.name,
                    r.reads.ctoc_home,
                    r.reads.ctoc_switch,
                    r.reads.retries,
                    r.avg_read_latency(),
                    r.cycles
                );
            }
        }
        if json {
            json_workloads.push(
                JsonValue::obj()
                    .field("workload", *wname)
                    .field("refs", w.total_refs())
                    .field("variants", json_variants)
                    .build(),
            );
        }
    }
    if json {
        let doc = json_doc("ablations")
            .field("scale", format!("{scale:?}"))
            .field("workloads", json_workloads)
            .build();
        println!("{}", doc.dump());
    }
}
