//! Figure 2: cumulative distribution of read misses and cache-to-cache
//! transfers over blocks (sorted by decreasing misses per block) for the
//! TPC-C workload on the trace-driven simulator.

use dresar_bench::{json_doc, json_requested, scale_from_args};
use dresar_trace_sim::TraceSimulator;
use dresar_types::config::TraceSimConfig;
use dresar_types::JsonValue;
use dresar_workloads::commercial;

fn main() {
    let scale = scale_from_args();
    let workload = commercial::tpcc(16, scale.commercial_refs(), 0xD2E5_A25E);
    let mut sim = TraceSimulator::new(TraceSimConfig::paper_base());
    sim.collect_histogram();
    let report = sim.run(&workload);
    let h = report.histogram.expect("histogram collected");

    if json_requested() {
        let points: Vec<JsonValue> = h
            .cumulative(20)
            .into_iter()
            .map(|pt| {
                JsonValue::obj()
                    .field("block_rank", pt.block_rank)
                    .field("miss_fraction", pt.miss_fraction)
                    .field("ctoc_fraction", pt.ctoc_fraction)
                    .build()
            })
            .collect();
        let doc = json_doc("fig2")
            .field("scale", format!("{scale:?}"))
            .field("blocks_touched", h.blocks_touched())
            .field("read_misses", h.total_misses())
            .field("ctoc_transfers", h.total_ctocs())
            .field("cumulative", points)
            .field("top_decile_ctoc_coverage", h.ctoc_coverage_of_top(0.10))
            .build();
        println!("{}", doc.dump());
        return;
    }

    println!("Figure 2: Access Frequency of TPC-C Blocks (scale={scale:?})");
    println!(
        "blocks touched = {}, read misses = {}, CtoC transfers = {}",
        h.blocks_touched(),
        h.total_misses(),
        h.total_ctocs()
    );
    println!("{:>10} {:>12} {:>12}", "top-N", "misses %", "CtoCs %");
    for pt in h.cumulative(20) {
        println!(
            "{:>10} {:>11.1}% {:>11.1}%",
            pt.block_rank,
            100.0 * pt.miss_fraction,
            100.0 * pt.ctoc_fraction
        );
    }
    println!(
        "\ntop 10% of blocks cover {:.1}% of CtoC transfers (paper: ~88%)",
        100.0 * h.ctoc_coverage_of_top(0.10)
    );
}
