//! Figures 5–7 arithmetic: verifies DRESAR's claim that switch-directory
//! processing fits inside the base crossbar's 4-cycle window — for the 4x4
//! design with a 2-way multiported directory, and for the 8x8 design with
//! the §4.3 pending buffer — and shows the naive 8x8 failing without it.

use dresar::switchdir::PortScheduler;
use dresar_types::msg::MsgType::{self, *};

fn show(name: &str, s: PortScheduler, batch: &[MsgType]) {
    let w = s.schedule(batch);
    println!(
        "{name:46} lookups: main {} cyc, pending {} cyc; update slack {}; {}",
        w.main_lookup_cycles,
        w.pending_lookup_cycles,
        w.update_cycles_free,
        if w.within_budget { "WITHIN BUDGET" } else { "OVER BUDGET (feedback/blocking)" }
    );
}

fn main() {
    println!("DRESAR cycle-budget check (window = 4 cycles, per §4.2/§4.3)\n");
    let mix4 = [ReadRequest, WriteReply, WriteBack, CtoCRequest];
    let mix8 = [
        ReadRequest,
        WriteRequest,
        WriteReply,
        ReadRequest,
        WriteBack,
        CopyBack,
        CtoCRequest,
        Retry,
    ];
    let reads8 = [ReadRequest; 8];

    show("4x4, 2-ported directory, mixed 4-batch", PortScheduler::paper_4x4(), &mix4);
    show(
        "8x8, 2-ported directory, NO pending buffer",
        PortScheduler { window_cycles: 4, main_ports: 2, pending_ports: 0 },
        &mix8,
    );
    show("8x8, 2-ported dir + 4-ported pending buffer", PortScheduler::paper_8x8(), &mix8);
    show("8x8, pathological all-ReadRequest batch", PortScheduler::paper_8x8(), &reads8);
    show(
        "8x8, 4-ported directory (paper's costly fix)",
        PortScheduler { window_cycles: 4, main_ports: 4, pending_ports: 4 },
        &reads8,
    );
}
