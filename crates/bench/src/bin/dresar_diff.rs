//! `dresar_diff` — the run-diff explainer.
//!
//! Structurally compares two runs and attributes their end-to-end cycle
//! delta: which read-latency phases moved (exact accounting — the phase
//! sums telescope to `reads.latency_cycles`, so the reported residual is
//! zero whenever both runs carry breakdowns), which metrics shifted the
//! most, and how the topology contention heatmap changed (critical
//! resource, biggest per-resource busy shifts).
//!
//! Usage:
//!
//! ```text
//! dresar_diff BASE.json OTHER.json [--json]   # two documents, runs matched by name
//! dresar_diff DOC.json RUN_A RUN_B [--json]   # one document, two named runs
//! ```
//!
//! Accepted documents: `--heatmap` sweeps (`bench_report --heatmap` /
//! `tool: "heatmap"`), plain `bench_report` registries, and single
//! `ExecutionReport` dumps. Phase and heatmap attribution degrade
//! gracefully when a document carries only metrics (the CI regression gate
//! invokes this on plain `BENCH_dresar.json` documents after a failure).

use dresar_bench::json_doc;
use dresar_obs::PHASES;
use dresar_types::{JsonValue, ToJson};
use std::process::ExitCode;

/// Everything `dresar_diff` can read out of one run, regardless of which
/// document shape it came from.
struct RunView {
    name: String,
    exec_cycles: Option<f64>,
    latency_cycles: Option<f64>,
    /// Per-phase cycle sums across classes, indexed like [`PHASES`].
    phases: Option<[f64; 5]>,
    /// Flattened numeric leaves of the run's metrics, dotted paths.
    scalars: Vec<(String, f64)>,
    /// Heatmap critical resource: `(label, utilization)`.
    critical: Option<(String, f64)>,
    /// Heatmap per-resource busy cycles (links and homes), by label.
    resource_busy: Vec<(String, f64)>,
}

/// Flattens the numeric leaves of an object tree into dotted paths.
/// Arrays are skipped (histograms and per-class vectors are attributed
/// through their own channels, not as ranked scalars).
fn flatten(prefix: &str, v: &JsonValue, out: &mut Vec<(String, f64)>) {
    match v {
        JsonValue::Num(n) => out.push((prefix.to_string(), *n)),
        JsonValue::Obj(fields) => {
            for (k, v) in fields {
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten(&path, v, out);
            }
        }
        _ => {}
    }
}

fn phase_sums(breakdown: &JsonValue) -> Option<[f64; 5]> {
    let JsonValue::Obj(classes) = breakdown.get("classes")? else {
        return None;
    };
    let mut out = [0.0f64; 5];
    for (_, c) in classes {
        let ph = c.get("phases")?;
        for (i, p) in PHASES.iter().enumerate() {
            out[i] += ph.get(p)?.as_f64()?;
        }
    }
    Some(out)
}

fn find(scalars: &[(String, f64)], key: &str) -> Option<f64> {
    scalars.iter().find(|(n, _)| n == key).map(|(_, v)| *v)
}

/// Builds a [`RunView`] from one run entry (a `runs[]` element of a
/// heatmap or `bench_report` document, or a whole `ExecutionReport`).
fn run_view(name: String, r: &JsonValue) -> RunView {
    let mut scalars = Vec::new();
    match r.get("metrics") {
        Some(m) => flatten("", m, &mut scalars),
        // ExecutionReport without a registry: flatten its stat objects,
        // skipping observer payloads (deep, already attributed elsewhere).
        None => {
            if let JsonValue::Obj(fields) = r {
                for (k, v) in fields {
                    if k != "obs" {
                        flatten(k, v, &mut scalars);
                    }
                }
            }
        }
    }
    let obs = r.get("obs");
    let breakdown = r.get("breakdown").or_else(|| obs.and_then(|o| o.get("breakdown")));
    let heatmap = r.get("heatmap").or_else(|| obs.and_then(|o| o.get("heatmap")));
    let critical = heatmap.and_then(|h| h.get("critical")).and_then(|c| {
        Some((c.get("resource")?.as_str()?.to_string(), c.get("utilization")?.as_f64()?))
    });
    let mut resource_busy = Vec::new();
    if let Some(h) = heatmap {
        if let Some(JsonValue::Arr(links)) = h.get("links") {
            for l in links {
                if let (Some(label), Some(busy)) = (
                    l.get("label").and_then(JsonValue::as_str),
                    l.get("load").and_then(|ld| ld.get("busy_cycles")).and_then(JsonValue::as_f64),
                ) {
                    resource_busy.push((label.to_string(), busy));
                }
            }
        }
        if let Some(JsonValue::Arr(homes)) = h.get("homes") {
            for hm in homes {
                if let (Some(home), Some(busy)) = (
                    hm.get("home").and_then(JsonValue::as_u64),
                    hm.get("load").and_then(|ld| ld.get("busy_cycles")).and_then(JsonValue::as_f64),
                ) {
                    resource_busy.push((format!("home:{home}"), busy));
                }
            }
        }
    }
    RunView {
        exec_cycles: find(&scalars, "exec_cycles")
            .or_else(|| find(&scalars, "sim.cycles"))
            .or_else(|| find(&scalars, "cycles"))
            .or_else(|| find(&scalars, "trace.exec_cycles")),
        latency_cycles: find(&scalars, "reads.latency_cycles"),
        phases: breakdown.and_then(phase_sums),
        scalars,
        critical,
        resource_busy,
        name,
    }
}

/// Parses a document into its run views: the `runs[]` array of a heatmap
/// or `bench_report` document, or a single `ExecutionReport` (named by the
/// file it came from).
fn parse_doc(path: &str, doc: &JsonValue) -> Result<Vec<RunView>, String> {
    if let Some(JsonValue::Arr(runs)) = doc.get("runs") {
        return runs
            .iter()
            .map(|r| {
                let name = r
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("{path}: run entry missing `name`"))?
                    .to_string();
                Ok(run_view(name, r))
            })
            .collect();
    }
    if doc.get("reads").is_some() {
        return Ok(vec![run_view(path.to_string(), doc)]);
    }
    Err(format!("{path}: neither a `runs` document nor an execution report"))
}

/// A run's critical resource, when its document carried a heatmap.
type Critical = Option<(String, f64)>;

/// The attribution of one run pair's delta.
struct PairDiff {
    base: String,
    other: String,
    exec: Option<(f64, f64)>,
    latency: Option<(f64, f64)>,
    /// Per-phase cycle deltas (other − base), indexed like [`PHASES`].
    phase_deltas: Option<[f64; 5]>,
    /// Latency delta not covered by the phase deltas (0 by construction
    /// when both runs carry complete breakdowns).
    residual: Option<f64>,
    /// `(name, base, other)` ranked by relative change, biggest first.
    metric_deltas: Vec<(String, f64, f64)>,
    critical: (Critical, Critical),
    /// `(label, base busy, other busy)` ranked by absolute shift.
    resource_shifts: Vec<(String, f64, f64)>,
}

fn rel_change(a: f64, b: f64) -> f64 {
    if a == b {
        0.0
    } else if a == 0.0 {
        f64::INFINITY
    } else {
        (b - a) / a.abs()
    }
}

fn diff_pair(a: &RunView, b: &RunView) -> PairDiff {
    let latency = a.latency_cycles.zip(b.latency_cycles);
    let phase_deltas =
        a.phases.zip(b.phases).map(|(pa, pb)| std::array::from_fn(|i| pb[i] - pa[i]));
    let residual =
        latency.zip(phase_deltas).map(|((la, lb), pd)| (lb - la) - pd.iter().sum::<f64>());
    let mut metric_deltas: Vec<(String, f64, f64)> = a
        .scalars
        .iter()
        .filter_map(|(name, va)| {
            let vb = find(&b.scalars, name)?;
            (vb != *va).then(|| (name.clone(), *va, vb))
        })
        .collect();
    metric_deltas.sort_by(|x, y| {
        rel_change(y.1, y.2)
            .abs()
            .total_cmp(&rel_change(x.1, x.2).abs())
            .then_with(|| x.0.cmp(&y.0))
    });
    let mut labels: Vec<&String> = a.resource_busy.iter().map(|(l, _)| l).collect();
    for (l, _) in &b.resource_busy {
        if !labels.contains(&l) {
            labels.push(l);
        }
    }
    let mut resource_shifts: Vec<(String, f64, f64)> = labels
        .into_iter()
        .map(|l| {
            let va = find(&a.resource_busy, l).unwrap_or(0.0);
            let vb = find(&b.resource_busy, l).unwrap_or(0.0);
            (l.clone(), va, vb)
        })
        .filter(|(_, va, vb)| va != vb)
        .collect();
    resource_shifts.sort_by(|x, y| {
        (y.2 - y.1).abs().total_cmp(&(x.2 - x.1).abs()).then_with(|| x.0.cmp(&y.0))
    });
    PairDiff {
        base: a.name.clone(),
        other: b.name.clone(),
        exec: a.exec_cycles.zip(b.exec_cycles),
        latency,
        phase_deltas,
        residual,
        metric_deltas,
        critical: (a.critical.clone(), b.critical.clone()),
        resource_shifts,
    }
}

/// Top-N ranked entries each section prints / serializes.
const TOP_N: usize = 8;

fn pct(a: f64, b: f64) -> String {
    let r = rel_change(a, b);
    if r.is_infinite() {
        "new".into()
    } else {
        format!("{:+.2}%", 100.0 * r)
    }
}

fn print_pair(d: &PairDiff) {
    println!("dresar_diff: {} -> {}", d.base, d.other);
    if let Some((a, b)) = d.exec {
        println!("  execution:    {a:.0} -> {b:.0} cycles ({})", pct(a, b));
    }
    if let Some((a, b)) = d.latency {
        println!("  read latency: {a:.0} -> {b:.0} cycles (delta {:+.0})", b - a);
    }
    match (d.phase_deltas, d.latency) {
        (Some(pd), Some((la, lb))) => {
            let delta = lb - la;
            println!("  phase attribution (delta cycles, share of the latency delta):");
            let mut ranked: Vec<(usize, f64)> = pd.iter().copied().enumerate().collect();
            ranked.sort_by(|x, y| y.1.abs().total_cmp(&x.1.abs()));
            for (i, v) in ranked {
                let share =
                    if delta != 0.0 { format!("{:6.1}%", 100.0 * v / delta) } else { "-".into() };
                println!("    {:16} {v:>12.0}  {share}", PHASES[i]);
            }
            let residual = d.residual.unwrap_or(0.0);
            let res_pct = if delta != 0.0 { 100.0 * residual / delta } else { 0.0 };
            println!("  residual: {residual:.0} cycles ({res_pct:.3}% of the latency delta)");
        }
        _ => println!("  (no phase breakdowns in both runs; metric deltas only)"),
    }
    match &d.critical {
        (Some((ra, ua)), Some((rb, ub))) => println!(
            "  critical resource: {ra} ({:.1}% util) -> {rb} ({:.1}% util)",
            100.0 * ua,
            100.0 * ub
        ),
        (None, None) => {}
        _ => println!("  critical resource: present in only one run"),
    }
    if !d.resource_shifts.is_empty() {
        println!("  top resource shifts (busy cycles):");
        for (l, a, b) in d.resource_shifts.iter().take(TOP_N) {
            println!("    {l:24} {a:>10.0} -> {b:>10.0}  ({:+.0})", b - a);
        }
    }
    if !d.metric_deltas.is_empty() {
        println!("  top metric deltas:");
        for (n, a, b) in d.metric_deltas.iter().take(TOP_N) {
            println!("    {n:32} {a} -> {b}  ({})", pct(*a, *b));
        }
    }
}

fn pair_json(d: &PairDiff) -> JsonValue {
    let mut b = JsonValue::obj().field("base", d.base.as_str()).field("other", d.other.as_str());
    if let Some((ea, eb)) = d.exec {
        b = b.field(
            "exec_cycles",
            JsonValue::obj().field("base", ea).field("other", eb).field("delta", eb - ea).build(),
        );
    }
    if let Some((la, lb)) = d.latency {
        b = b.field(
            "latency_cycles",
            JsonValue::obj().field("base", la).field("other", lb).field("delta", lb - la).build(),
        );
    }
    if let Some(pd) = d.phase_deltas {
        b = b.field(
            "phase_deltas",
            JsonValue::Obj(
                PHASES.iter().zip(pd).map(|(n, v)| (n.to_string(), v.to_json())).collect(),
            ),
        );
    }
    if let Some(r) = d.residual {
        b = b.field("residual_cycles", r);
    }
    if let (Some((ra, ua)), Some((rb, ub))) = &d.critical {
        b = b.field(
            "critical",
            JsonValue::obj()
                .field(
                    "base",
                    JsonValue::obj()
                        .field("resource", ra.as_str())
                        .field("utilization", *ua)
                        .build(),
                )
                .field(
                    "other",
                    JsonValue::obj()
                        .field("resource", rb.as_str())
                        .field("utilization", *ub)
                        .build(),
                )
                .build(),
        );
    }
    let shifts: Vec<JsonValue> = d
        .resource_shifts
        .iter()
        .take(TOP_N)
        .map(|(l, a, v)| {
            JsonValue::obj()
                .field("resource", l.as_str())
                .field("base", *a)
                .field("other", *v)
                .build()
        })
        .collect();
    let metrics: Vec<JsonValue> = d
        .metric_deltas
        .iter()
        .take(TOP_N)
        .map(|(n, a, v)| {
            JsonValue::obj().field("name", n.as_str()).field("base", *a).field("other", *v).build()
        })
        .collect();
    b.field("resource_shifts", shifts).field("metric_deltas", metrics).build()
}

fn load_doc(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn usage() -> String {
    "usage: dresar_diff BASE.json OTHER.json [--json]\n       \
     dresar_diff DOC.json RUN_A RUN_B [--json]"
        .into()
}

fn run() -> Result<Vec<PairDiff>, String> {
    let mut positional = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => {}
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with("--") => positional.push(other.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    match positional.len() {
        // Two documents: match runs by name.
        2 => {
            let a = parse_doc(&positional[0], &load_doc(&positional[0])?)?;
            let b = parse_doc(&positional[1], &load_doc(&positional[1])?)?;
            let mut pairs = Vec::new();
            // Single-report documents diff against each other regardless
            // of their names (the names are the file paths).
            if a.len() == 1 && b.len() == 1 {
                pairs.push(diff_pair(&a[0], &b[0]));
                return Ok(pairs);
            }
            for ra in &a {
                if let Some(rb) = b.iter().find(|r| r.name == ra.name) {
                    pairs.push(diff_pair(ra, rb));
                }
            }
            if pairs.is_empty() {
                return Err("no run names in common between the two documents".into());
            }
            Ok(pairs)
        }
        // One document, two named runs.
        3 => {
            let runs = parse_doc(&positional[0], &load_doc(&positional[0])?)?;
            let get = |name: &str| {
                runs.iter().find(|r| r.name == name).ok_or_else(|| {
                    let known: Vec<&str> = runs.iter().map(|r| r.name.as_str()).collect();
                    format!(
                        "run '{name}' not in {}; known runs: {}",
                        positional[0],
                        known.join(", ")
                    )
                })
            };
            Ok(vec![diff_pair(get(&positional[1])?, get(&positional[2])?)])
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    let pairs = match run() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dresar_diff: {e}");
            return ExitCode::from(2);
        }
    };
    if std::env::args().skip(1).any(|a| a == "--json") {
        let doc = json_doc("dresar_diff")
            .field("pairs", pairs.iter().map(pair_json).collect::<Vec<_>>())
            .build();
        println!("{}", doc.dump());
    } else {
        for d in &pairs {
            print_pair(d);
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use dresar_bench::suite;
    use dresar_bench::sweep::{heatmap_runs, SweepRunner};
    use dresar_workloads::Scale;

    /// End-to-end acceptance: diffing base vs sd1024 through the real
    /// heatmap-sweep document attributes the full latency delta with zero
    /// residual (the phase sums telescope to `reads.latency_cycles`).
    #[test]
    fn base_vs_sd1024_accounts_for_the_full_latency_delta() {
        let benches = suite(Scale::Tiny);
        let fft: Vec<_> = benches.into_iter().filter(|b| b.label == "FFT").collect();
        let runs = heatmap_runs(&fft, SweepRunner::serial());
        let doc = JsonValue::obj()
            .field("runs", runs.iter().map(ToJson::to_json).collect::<Vec<_>>())
            .build();
        let views = parse_doc("doc", &doc).expect("parsed");
        let a = views.iter().find(|r| r.name == "FFT.base").expect("base run");
        let b = views.iter().find(|r| r.name == "FFT.sd1024").expect("sd1024 run");
        let d = diff_pair(a, b);
        let (la, lb) = d.latency.expect("latency in both runs");
        let delta = lb - la;
        assert!(delta != 0.0, "sd1024 should move read latency at tiny scale");
        let residual = d.residual.expect("residual computed");
        assert!(
            residual.abs() < 0.01 * delta.abs(),
            "residual {residual} vs latency delta {delta}"
        );
        let pd = d.phase_deltas.expect("phase deltas");
        assert_eq!(pd.iter().sum::<f64>(), delta, "phases telescope exactly");
        assert!(d.critical.0.is_some() && d.critical.1.is_some(), "critical resources");
        assert!(!d.resource_shifts.is_empty(), "per-resource shifts");
        // The JSON form carries the same accounting.
        let j = pair_json(&d);
        assert_eq!(
            j.get("latency_cycles").and_then(|l| l.get("delta")).and_then(JsonValue::as_f64),
            Some(delta)
        );
    }

    #[test]
    fn registry_documents_degrade_to_metric_deltas() {
        let doc = |lat: f64| {
            JsonValue::obj()
                .field(
                    "runs",
                    vec![JsonValue::obj()
                        .field("name", "FFT.base")
                        .field(
                            "metrics",
                            JsonValue::obj()
                                .field("sim.cycles", 1000.0 * lat)
                                .field("reads.latency_cycles", lat)
                                .field("reads.retries", 3.0)
                                .build(),
                        )
                        .build()],
                )
                .build()
        };
        let a = parse_doc("a", &doc(100.0)).unwrap();
        let b = parse_doc("b", &doc(80.0)).unwrap();
        let d = diff_pair(&a[0], &b[0]);
        assert_eq!(d.latency, Some((100.0, 80.0)));
        assert_eq!(d.exec, Some((100_000.0, 80_000.0)));
        assert!(d.phase_deltas.is_none(), "no breakdowns in registry docs");
        assert!(d.residual.is_none());
        // reads.retries is unchanged, so only the two moved scalars rank.
        assert_eq!(d.metric_deltas.len(), 2);
    }

    #[test]
    fn phase_deltas_sum_to_the_latency_delta_on_synthetic_breakdowns() {
        let run = |name: &str, phases: [u64; 5]| {
            let lat: u64 = phases.iter().sum();
            let ph = JsonValue::Obj(
                PHASES.iter().zip(phases).map(|(n, v)| (n.to_string(), v.to_json())).collect(),
            );
            JsonValue::obj()
                .field("name", name)
                .field(
                    "metrics",
                    JsonValue::obj()
                        .field("reads", JsonValue::obj().field("latency_cycles", lat).build())
                        .field("exec_cycles", 10 * lat)
                        .build(),
                )
                .field(
                    "breakdown",
                    JsonValue::obj()
                        .field(
                            "classes",
                            JsonValue::obj()
                                .field("clean_memory", JsonValue::obj().field("phases", ph).build())
                                .build(),
                        )
                        .build(),
                )
                .build()
        };
        let mk = |phases| JsonValue::obj().field("runs", vec![run("w.base", phases)]).build();
        let a = parse_doc("a", &mk([10, 0, 30, 40, 20])).unwrap();
        let b = parse_doc("b", &mk([10, 5, 25, 10, 20])).unwrap();
        let d = diff_pair(&a[0], &b[0]);
        assert_eq!(d.residual, Some(0.0));
        assert_eq!(d.phase_deltas, Some([0.0, 5.0, -5.0, -30.0, 0.0]));
        let (la, lb) = d.latency.unwrap();
        assert_eq!(lb - la, -30.0);
    }
}
