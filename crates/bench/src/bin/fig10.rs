//! Figure 10: reduction in read stall time, normalized to the base
//! machine, across switch-directory sizes 256–2048.

use dresar_bench::{full_sweep, json_doc, json_requested, scale_from_args};
use dresar_stats::{percent_reduction, FigureTable};
use dresar_types::ToJson;

fn main() {
    let scale = scale_from_args();
    let mut table = FigureTable::new(
        format!("Figure 10: Reduction in the Read Stall Time (scale={scale:?})"),
        vec!["256".into(), "512".into(), "1K".into(), "2K".into()],
        "% reduction vs base",
    );
    for s in full_sweep(scale) {
        let vals = s
            .sized
            .iter()
            .map(|(_, m)| percent_reduction(s.base.read_stall(), m.read_stall()))
            .collect();
        table.push_row(s.label, vals);
    }
    if json_requested() {
        let doc = json_doc("fig10")
            .field("scale", format!("{scale:?}"))
            .field("table", table.to_json())
            .build();
        println!("{}", doc.dump());
    } else {
        println!("{}", table.render());
        println!("Paper: stall reductions track Figure 9, slightly amplified.");
    }
}
