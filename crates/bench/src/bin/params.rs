//! Tables 2 & 3: prints the simulation parameters in use, as encoded by
//! the `paper_table2()` / `paper_table3()` presets.

use dresar_types::config::{SystemConfig, TraceSimConfig};

fn main() {
    let t2 = SystemConfig::paper_table2();
    println!("Table 2: Execution-Driven Simulation Parameters");
    println!("  nodes                : {}", t2.nodes);
    println!("  processor            : 200 MHz, {}-way issue", t2.processor.issue_width);
    println!(
        "  L1 cache             : {} KB, {} B lines, {}-way, {} cycle(s)",
        t2.l1.size_bytes / 1024,
        t2.l1.line_bytes,
        t2.l1.ways,
        t2.l1.access_cycles
    );
    println!(
        "  L2 cache             : {} KB, {} B lines, {}-way, {} cycles",
        t2.l2.size_bytes / 1024,
        t2.l2.line_bytes,
        t2.l2.ways,
        t2.l2.access_cycles
    );
    println!(
        "  memory               : {} cycles, {}-way interleaved, {} cycles controller occupancy",
        t2.memory.access_cycles, t2.memory.interleave, t2.memory.controller_occupancy
    );
    println!(
        "  switch               : {}x{} (radix {}), core {} cycles, 16-bit links, {} B flits ({} cycles/flit), {} VCs, {}-flit buffers",
        2 * t2.switch.radix,
        2 * t2.switch.radix,
        t2.switch.radix,
        t2.switch.core_cycles,
        t2.switch.flit_bytes,
        t2.switch.link_cycles_per_flit,
        t2.switch.virtual_channels,
        t2.switch.buffer_flits
    );
    println!("  BMIN                 : {} stages", t2.stages());
    if let Some(sd) = t2.switch_dir {
        println!(
            "  switch directory     : {} entries ({}-way, {} ports, {} pending)",
            sd.entries, sd.ways, sd.lookup_ports, sd.pending_buffer_entries
        );
    }

    let t3 = TraceSimConfig::paper_table3();
    println!("\nTable 3: Trace-Driven Simulation Parameters");
    println!(
        "  cache                : {} MB, {}-way, {} B lines, {} cycles",
        t3.cache.size_bytes / (1024 * 1024),
        t3.cache.ways,
        t3.cache.line_bytes,
        t3.cache.access_cycles
    );
    let l = t3.latencies;
    println!("  local memory access  : {} cycles", l.local_memory);
    println!("  CtoC (local home)    : {} cycles", l.ctoc_local_home);
    println!("  remote memory access : {} cycles", l.remote_memory);
    println!("  CtoC (remote home)   : {} cycles", l.ctoc_remote_home);
    println!("  switch-directory hit : {} cycles", l.switch_dir_hit);
    if let Some(sd) = t3.switch_dir {
        println!("  switch directory     : {} entries, {}-way", sd.entries, sd.ways);
    }
}
