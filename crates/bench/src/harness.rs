//! Minimal timing harness for the `harness = false` bench targets.
//!
//! Adaptive batch sizing (grow until a batch runs ≥ 5 ms), a warmup pass,
//! then a few timed samples; reports mean and best ns/iteration. Fancy
//! statistics belong to profilers — these benches exist to catch order-of-
//! magnitude regressions in the simulator hot paths.

use std::time::Instant;

pub use std::hint::black_box;

const SAMPLES: usize = 3;
const MIN_BATCH_MS: u128 = 5;
const MAX_BATCH: u64 = 1 << 20;

/// Times `f` and prints one result line.
pub fn bench(name: &str, mut f: impl FnMut()) {
    // Grow the batch until one batch takes at least MIN_BATCH_MS; the first
    // pass doubles as warmup.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_millis() >= MIN_BATCH_MS || iters >= MAX_BATCH {
            break;
        }
        iters = iters.saturating_mul(4).min(MAX_BATCH);
    }
    let mut samples = [0f64; SAMPLES];
    for s in samples.iter_mut() {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = t.elapsed().as_nanos() as f64 / iters as f64;
    }
    report(name, &samples, iters);
}

/// Like [`bench`], but rebuilds fresh input with `setup` for every
/// iteration, outside the timed region.
pub fn bench_with_setup<T>(name: &str, mut setup: impl FnMut() -> T, mut f: impl FnMut(T)) {
    let mut iters: u64 = 1;
    loop {
        let inputs: Vec<T> = (0..iters).map(|_| setup()).collect();
        let t = Instant::now();
        for input in inputs {
            f(input);
        }
        if t.elapsed().as_millis() >= MIN_BATCH_MS || iters >= 4096 {
            break;
        }
        iters = iters.saturating_mul(4).min(4096);
    }
    let mut samples = [0f64; SAMPLES];
    for s in samples.iter_mut() {
        let inputs: Vec<T> = (0..iters).map(|_| setup()).collect();
        let t = Instant::now();
        for input in inputs {
            f(input);
        }
        *s = t.elapsed().as_nanos() as f64 / iters as f64;
    }
    report(name, &samples, iters);
}

fn report(name: &str, samples: &[f64], iters: u64) {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let best = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("{name:<44} {mean:>14.1} ns/iter   (best {best:.1}, {iters} iters/sample)");
}
