//! Minimal timing harness for the `harness = false` bench targets.
//!
//! Adaptive batch sizing (grow until a batch runs ≥ 5 ms), a warmup pass,
//! then a few timed samples; reports mean and best ns/iteration. Fancy
//! statistics belong to profilers — these benches exist to catch order-of-
//! magnitude regressions in the simulator hot paths.
//!
//! Setting the `DRESAR_BENCH_MACHINE` environment variable (any non-empty
//! value) makes every result line followed by a machine-readable
//! `BENCHLINE {name} {mean_ns} {best_ns} {iters}` record that tools like
//! `bench_report` can parse without scraping the human-formatted output.

use std::time::Instant;

pub use std::hint::black_box;

const SAMPLES: usize = 3;
const MIN_BATCH_MS: u128 = 5;
const MAX_BATCH: u64 = 1 << 20;

/// Batch cap for [`bench_with_setup`]. Deliberately far below [`MAX_BATCH`]:
/// every iteration's input is rebuilt by `setup()` *outside* the timed
/// region, so a batch of N holds N prebuilt inputs in memory at once and
/// pays N untimed setup calls per sample. Setup-bound benches (whole-system
/// construction, workload generation) would otherwise spend minutes and
/// gigabytes growing toward `MAX_BATCH` for a few milliseconds of timed
/// work. 4096 inputs is enough to amortize timer overhead while keeping the
/// prebuilt vector small.
const MAX_SETUP_BATCH: u64 = 4096;

/// Times `f` and prints one result line.
pub fn bench(name: &str, mut f: impl FnMut()) {
    // Grow the batch until one batch takes at least MIN_BATCH_MS; the first
    // pass doubles as warmup.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_millis() >= MIN_BATCH_MS || iters >= MAX_BATCH {
            break;
        }
        iters = iters.saturating_mul(4).min(MAX_BATCH);
    }
    let mut samples = [0f64; SAMPLES];
    for s in samples.iter_mut() {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = t.elapsed().as_nanos() as f64 / iters as f64;
    }
    report(name, &samples, iters);
}

/// Like [`bench`], but rebuilds fresh input with `setup` for every
/// iteration, outside the timed region. Batches cap at [`MAX_SETUP_BATCH`],
/// not [`MAX_BATCH`] — see the constant's doc for why.
pub fn bench_with_setup<T>(name: &str, mut setup: impl FnMut() -> T, mut f: impl FnMut(T)) {
    let mut iters: u64 = 1;
    loop {
        let inputs: Vec<T> = (0..iters).map(|_| setup()).collect();
        let t = Instant::now();
        for input in inputs {
            f(input);
        }
        if t.elapsed().as_millis() >= MIN_BATCH_MS || iters >= MAX_SETUP_BATCH {
            break;
        }
        iters = iters.saturating_mul(4).min(MAX_SETUP_BATCH);
    }
    let mut samples = [0f64; SAMPLES];
    for s in samples.iter_mut() {
        let inputs: Vec<T> = (0..iters).map(|_| setup()).collect();
        let t = Instant::now();
        for input in inputs {
            f(input);
        }
        *s = t.elapsed().as_nanos() as f64 / iters as f64;
    }
    report(name, &samples, iters);
}

fn report(name: &str, samples: &[f64], iters: u64) {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let best = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("{name:<44} {mean:>14.1} ns/iter   (best {best:.1}, {iters} iters/sample)");
    if std::env::var_os("DRESAR_BENCH_MACHINE").is_some_and(|v| !v.is_empty()) {
        println!("BENCHLINE {name} {mean:.1} {best:.1} {iters}");
    }
}

/// Parses one `BENCHLINE` record emitted under `DRESAR_BENCH_MACHINE`.
/// Returns `(name, mean_ns, best_ns, iters)`; `None` for any other line.
pub fn parse_benchline(line: &str) -> Option<(String, f64, f64, u64)> {
    let rest = line.strip_prefix("BENCHLINE ")?;
    let mut parts = rest.split_whitespace();
    let name = parts.next()?.to_string();
    let mean: f64 = parts.next()?.parse().ok()?;
    let best: f64 = parts.next()?.parse().ok()?;
    let iters: u64 = parts.next()?.parse().ok()?;
    Some((name, mean, best, iters))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_batch_cap_is_below_global_cap() {
        const { assert!(MAX_SETUP_BATCH < MAX_BATCH) }
    }

    #[test]
    fn benchline_round_trips() {
        let line = "BENCHLINE sd.snoop_hit 12.5 11.9 1048576";
        let (name, mean, best, iters) = parse_benchline(line).unwrap();
        assert_eq!(name, "sd.snoop_hit");
        assert_eq!(mean, 12.5);
        assert_eq!(best, 11.9);
        assert_eq!(iters, 1048576);
        assert_eq!(parse_benchline("sd.snoop_hit 12.5 ns/iter"), None);
        assert_eq!(parse_benchline("BENCHLINE incomplete"), None);
    }
}
