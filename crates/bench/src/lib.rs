//! # dresar-bench
//!
//! The evaluation harness: everything needed to regenerate the paper's
//! tables and figures.
//!
//! Binaries (all accept an optional scale argument `tiny|reduced|paper`,
//! default `reduced`):
//!
//! * `fig1` — clean vs dirty read fractions per workload (Figure 1);
//! * `fig2` — cumulative miss/CtoC distribution over blocks for TPC-C
//!   (Figure 2);
//! * `fig8`–`fig11` — normalized reductions (home-node CtoC transfers,
//!   average read latency, read stall time, execution time) across
//!   switch-directory sizes 256–2048 (Figures 8–11);
//! * `params` — prints the Table 2 / Table 3 configurations in use;
//! * `dresar_cycle_budget` — the §4.2/§4.3 port-scheduling budget check
//!   (Figures 5–7 arithmetic);
//! * `all_figures` — runs everything and emits an EXPERIMENTS.md-style
//!   report.
//!
//! Timing benches (plain `std::time` harnesses, run with `cargo bench`):
//! `switchdir_micro` (snoop/insert throughput), `crossbar` (flit-level
//! arbitration), `figures` (end-to-end per-workload simulation cost) and
//! `ablations` (design-choice comparisons).
//!
//! The `probe`, `ablations` and `fig*` binaries also accept `--json` to
//! emit their results as a single machine-readable JSON document on
//! stdout (see the README's "Observability" section).

pub mod harness;
pub mod sweep;

use dresar::system::{RunOptions, System};
use dresar::TransientReadPolicy;
use dresar_faults::FaultPlan;
use dresar_obs::{ObsReport, ObserverConfig};
use dresar_stats::ReadStats;
use dresar_trace_sim::TraceSimulator;
use dresar_types::config::{SwitchDirConfig, SystemConfig, TraceSimConfig};
use dresar_types::{JsonValue, ToJson, Workload};
use dresar_workloads::Scale;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Figure-relevant metrics extracted from either simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Metrics {
    /// Read statistics.
    pub reads: ReadStats,
    /// Execution time in cycles.
    pub exec_cycles: u64,
    /// Switch-directory read hits (0 for base).
    pub sd_hits: u64,
}

impl Metrics {
    /// Home-node cache-to-cache transfers (Figure 8 metric).
    pub fn home_ctoc(&self) -> f64 {
        self.reads.ctoc_home as f64
    }

    /// Average read-miss latency (Figure 9 metric).
    pub fn avg_read_latency(&self) -> f64 {
        self.reads.avg_latency()
    }

    /// Read stall cycles (Figure 10 metric).
    pub fn read_stall(&self) -> f64 {
        self.reads.stall_cycles as f64
    }

    /// Execution time (Figure 11 metric).
    pub fn exec(&self) -> f64 {
        self.exec_cycles as f64
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("reads", self.reads.to_json())
            .field("exec_cycles", self.exec_cycles)
            .field("sd_hits", self.sd_hits)
            .field("avg_read_latency", self.avg_read_latency())
            .build()
    }
}

/// A workload paired with the simulator that evaluates it (the paper runs
/// scientific applications execution-driven and commercial traces
/// trace-driven).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Execution-driven 16-node system (Table 2).
    Execution,
    /// Trace-driven constant-latency model (Table 3).
    Trace,
}

/// One evaluated workload.
pub struct Bench {
    /// Display name matching the paper's figures.
    pub label: &'static str,
    /// The reference streams.
    pub workload: Workload,
    /// Which simulator drives it.
    pub driver: Driver,
}

/// The paper's seven-workload evaluation suite at a given scale.
pub fn suite(scale: Scale) -> Vec<Bench> {
    let p = 16;
    let sci = dresar_workloads::scientific_suite(p, scale);
    let mut out: Vec<Bench> = sci
        .into_iter()
        .zip(["FFT", "TC", "SOR", "FWA", "GAUSS"])
        .map(|(workload, label)| Bench { label, workload, driver: Driver::Execution })
        .collect();
    for (workload, label) in dresar_workloads::commercial_suite(p, scale, 0xD2E5_A25E)
        .into_iter()
        .zip(["TPC-C", "TPC-D"])
    {
        out.push(Bench { label, workload, driver: Driver::Trace });
    }
    out
}

/// Runs one workload with an optional switch-directory size.
pub fn run_one(bench: &Bench, sd_entries: Option<u32>, policy: TransientReadPolicy) -> Metrics {
    run_one_observed(bench, sd_entries, policy, ObserverConfig::default()).0
}

/// [`run_one`] with observers attached. Only the execution-driven simulator
/// is instrumented; trace-driven workloads return `None` for the payload.
pub fn run_one_observed(
    bench: &Bench,
    sd_entries: Option<u32>,
    policy: TransientReadPolicy,
    observers: ObserverConfig,
) -> (Metrics, Option<ObsReport>) {
    let sd =
        sd_entries.map(|entries| SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() });
    match bench.driver {
        Driver::Execution => {
            let mut cfg = SystemConfig::paper_table2();
            cfg.switch_dir = sd;
            let report = System::new(cfg, &bench.workload).run(RunOptions {
                transient_policy: policy,
                observers,
                ..RunOptions::default()
            });
            (
                Metrics {
                    reads: report.reads,
                    exec_cycles: report.cycles,
                    sd_hits: report.sd.read_hits,
                },
                report.obs,
            )
        }
        Driver::Trace => {
            let mut cfg = TraceSimConfig::paper_table3();
            cfg.switch_dir = sd;
            let report = TraceSimulator::new(cfg).run(&bench.workload);
            (
                Metrics {
                    reads: report.reads,
                    exec_cycles: report.exec_cycles,
                    sd_hits: report.sd.read_hits,
                },
                None,
            )
        }
    }
}

/// Runs one execution-driven workload under a deterministic fault plan
/// (switch-directory scrubs, eviction storms, disable windows, message
/// drops — see [`FaultPlan::parse`]) and returns its full report. Returns
/// `None` for trace-driven workloads: the constant-latency model has no
/// message system to inject faults into.
pub fn run_one_faulted(
    bench: &Bench,
    sd_entries: Option<u32>,
    policy: TransientReadPolicy,
    plan: FaultPlan,
) -> Option<dresar::system::ExecutionReport> {
    if bench.driver != Driver::Execution {
        return None;
    }
    let mut cfg = SystemConfig::paper_table2();
    cfg.switch_dir =
        sd_entries.map(|entries| SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() });
    Some(System::new(cfg, &bench.workload).run(RunOptions {
        transient_policy: policy,
        faults: Some(plan),
        watchdog: Some(dresar_faults::WatchdogConfig::default()),
        verify_coherence: true,
        ..RunOptions::default()
    }))
}

/// Parses `--faults <spec>` from the CLI (`key=value` pairs, comma
/// separated — e.g. `--faults seed=7,drop_ppm=2000,disable_at=50000`).
/// Returns `None` when the flag is absent; exits with a message on a
/// malformed spec so a typo'd schedule never silently runs fault-free.
pub fn faults_from_args() -> Option<FaultPlan> {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--faults" {
            let spec = it.next().unwrap_or_else(|| {
                eprintln!("--faults needs a plan spec (key=value,...)");
                std::process::exit(2);
            });
            return Some(FaultPlan::parse(&spec).unwrap_or_else(|e| {
                eprintln!("bad fault plan '{spec}': {e}");
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Runs one workload and returns its deterministic component-metrics
/// registry. Execution-driven workloads return the simulator's full
/// snapshot; trace-driven ones get a registry assembled from the trace
/// report's counters (the constant-latency model has no event engine or
/// flit network to instrument).
pub fn run_one_registry(
    bench: &Bench,
    sd_entries: Option<u32>,
    policy: TransientReadPolicy,
) -> dresar_obs::MetricsRegistry {
    let sd =
        sd_entries.map(|entries| SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() });
    match bench.driver {
        Driver::Execution => {
            let mut cfg = SystemConfig::paper_table2();
            cfg.switch_dir = sd;
            System::new(cfg, &bench.workload)
                .run(RunOptions { transient_policy: policy, ..RunOptions::default() })
                .metrics
        }
        Driver::Trace => {
            let mut cfg = TraceSimConfig::paper_table3();
            cfg.switch_dir = sd;
            let r = TraceSimulator::new(cfg).run(&bench.workload);
            let mut m = dresar_obs::MetricsRegistry::new();
            m.counter("trace.exec_cycles", r.exec_cycles);
            m.counter("trace.read_hits", r.read_hits);
            m.counter("trace.writes", r.writes);
            m.counter("reads.clean", r.reads.clean);
            m.counter("reads.ctoc_home", r.reads.ctoc_home);
            m.counter("reads.ctoc_switch", r.reads.ctoc_switch);
            m.counter("reads.latency_cycles", r.reads.latency_cycles);
            m.counter("reads.stall_cycles", r.reads.stall_cycles);
            m.counter("reads.retries", r.reads.retries);
            m.counter("home.lookups", r.dir.lookups);
            m.counter("home.reads_ctoc", r.dir.reads_ctoc);
            m.counter("home.invals_sent", r.dir.invals_sent);
            m.counter("home.naks", r.dir.naks);
            if sd_entries.is_some() {
                m.counter("sd.snoops", r.sd.snoops);
                m.counter("sd.read_hits", r.sd.read_hits);
                m.counter("sd.inserts", r.sd.inserts);
                m.counter("sd.evictions", r.sd.evictions);
                m.counter("sd.copybacks_marked", r.sd.copybacks_marked);
            }
            m
        }
    }
}

/// Sweep result for one workload: the base system plus every directory
/// size.
pub struct Sweep {
    /// Workload label.
    pub label: &'static str,
    /// Base (no switch directory).
    pub base: Metrics,
    /// `(entries, metrics)` per swept size.
    pub sized: Vec<(u32, Metrics)>,
}

/// Order-preserving parallel map over a shared worker pool (one thread per
/// available core unless `DRESAR_SWEEP_THREADS` overrides — see
/// [`sweep::thread_count`] — with work handed out through an atomic
/// cursor).
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let workers = sweep::thread_count().min(n);
    if n <= 1 || workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let cursor = &cursor;
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return done;
                        }
                        done.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("bench worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

/// The paper's Figure 8–11 sweep: sizes 256–2048 vs base, across the whole
/// suite. Parallelized over (workload x configuration).
pub fn full_sweep(scale: Scale) -> Vec<Sweep> {
    let benches = suite(scale);
    let sizes = [256u32, 512, 1024, 2048];
    // Flatten (workload x config) into one job list so the pool stays busy
    // even when one workload dominates the runtime.
    let jobs: Vec<(usize, Option<u32>)> = (0..benches.len())
        .flat_map(|bi| std::iter::once((bi, None)).chain(sizes.iter().map(move |&s| (bi, Some(s)))))
        .collect();
    let metrics = par_map(&jobs, |&(bi, sd)| run_one(&benches[bi], sd, TransientReadPolicy::Retry));
    let stride = 1 + sizes.len();
    benches
        .iter()
        .enumerate()
        .map(|(bi, b)| Sweep {
            label: b.label,
            base: metrics[bi * stride],
            sized: sizes
                .iter()
                .enumerate()
                .map(|(si, &s)| (s, metrics[bi * stride + 1 + si]))
                .collect(),
        })
        .collect()
}

/// Scale argument parsing shared by the binaries: first non-flag CLI arg,
/// default `reduced`. Flags (`--json`, ...) are ignored here.
pub fn scale_from_args() -> Scale {
    let arg =
        std::env::args().skip(1).find(|a| !a.starts_with("--")).unwrap_or_else(|| "reduced".into());
    Scale::parse(&arg).unwrap_or_else(|| {
        eprintln!("unknown scale '{arg}', expected tiny|reduced|paper; using reduced");
        Scale::Reduced
    })
}

/// Whether `--json` was passed: binaries switch from human-readable tables
/// to a single JSON document on stdout.
pub fn json_requested() -> bool {
    std::env::args().skip(1).any(|a| a == "--json")
}

/// Starts a machine-readable JSON document. Every `--json` emitter goes
/// through here so all documents lead with the same two fields:
/// `schema_version` (see [`dresar_types::SCHEMA_VERSION`]) then `tool`.
pub fn json_doc(tool: &str) -> dresar_types::ObjBuilder {
    JsonValue::obj().field("schema_version", dresar_types::SCHEMA_VERSION).field("tool", tool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_seven_workloads() {
        let s = suite(Scale::Tiny);
        let labels: Vec<_> = s.iter().map(|b| b.label).collect();
        assert_eq!(labels, vec!["FFT", "TC", "SOR", "FWA", "GAUSS", "TPC-C", "TPC-D"]);
        assert!(s[..5].iter().all(|b| b.driver == Driver::Execution));
        assert!(s[5..].iter().all(|b| b.driver == Driver::Trace));
    }

    #[test]
    fn run_one_produces_reads() {
        let s = suite(Scale::Tiny);
        let m = run_one(&s[0], Some(1024), TransientReadPolicy::Retry);
        assert!(m.reads.total() > 0);
        assert!(m.exec_cycles > 0);
    }
}
