//! Deterministic parallel sweep execution.
//!
//! Every run in the evaluation suite is independent — each builds its own
//! [`dresar::system::System`] (or trace simulator) from a config and a
//! workload — so the suite shards across cores. The contract that makes
//! this safe to put under the regression gate: **output is byte-identical
//! to a serial execution**. The runner guarantees it structurally:
//!
//! * jobs are closures with no shared mutable state (each constructs its
//!   simulator inside the worker thread);
//! * results land in a slot table indexed by submission order, so assembly
//!   never observes completion order;
//! * anything order-dependent downstream (the `runs` array of
//!   `BENCH_dresar.json`) is sorted by run name, same as the serial path.
//!
//! Thread count comes from `DRESAR_SWEEP_THREADS` (0 or unset → one per
//! available core); `DRESAR_SWEEP_THREADS=1` forces serial execution,
//! which CI uses on one leg of the identity check.

use crate::{run_one_faulted, run_one_observed, run_one_registry, Bench, Driver, Metrics};
use dresar::system::{RunOptions, System};
use dresar::TransientReadPolicy;
use dresar_faults::FaultPlan;
use dresar_interconnect::{routes, Bmin, FlitNetwork};
use dresar_obs::{
    Heatmap, LatencyBreakdown, MetricValue, MetricsRegistry, ObserverConfig, RunTiming,
    DEFAULT_ATTRIB_WINDOW,
};
use dresar_types::config::{SwitchDirConfig, SystemConfig};
use dresar_types::{JsonValue, Protocol, ToJson, Workload};
use dresar_workloads::{scientific, Scale};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A boxed sweep job: runs once on a worker thread, yielding `R`.
pub type Job<'a, R> = Box<dyn FnOnce() -> R + Send + 'a>;

/// One named deterministic run in a `bench_report` document.
pub struct RunResult {
    /// Run name, `<workload>.<config>` (e.g. `"FFT.sd1024"`).
    pub name: String,
    /// The run's deterministic component-metrics registry.
    pub metrics: MetricsRegistry,
}

/// Sweep thread count: `DRESAR_SWEEP_THREADS` if set and nonzero, else one
/// per available core.
pub fn thread_count() -> usize {
    match std::env::var("DRESAR_SWEEP_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map(|c| c.get()).unwrap_or(4),
    }
}

/// Runs independent jobs across a worker pool, returning results in
/// submission order regardless of completion order.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// Runner sized by [`thread_count`] (env override, else core count).
    pub fn from_env() -> Self {
        SweepRunner { threads: thread_count() }
    }

    /// Runner that executes jobs one after another on the calling thread.
    pub fn serial() -> Self {
        SweepRunner { threads: 1 }
    }

    /// Runner with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        SweepRunner { threads: threads.max(1) }
    }

    /// This runner's worker count (what [`ServicePool::start`] sizes its
    /// persistent pool by).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `jobs`, returning the `i`-th job's result at index `i`.
    ///
    /// # Panics
    /// If any job panics, panics once — after every worker has stopped —
    /// with a structured message naming the panicked jobs and how many
    /// results were produced, instead of the historical double panic (a
    /// poisoned worker join aborting mid-unwind). Callers that want the
    /// panics as data use [`SweepRunner::try_run_jobs`].
    pub fn run_jobs<'a, R: Send>(&self, jobs: Vec<Job<'a, R>>) -> Vec<R> {
        match self.try_run_jobs(jobs) {
            Ok(results) => results,
            Err(report) => panic!("{report}"),
        }
    }

    /// [`SweepRunner::run_jobs`], but job panics come back as data: every
    /// panicking job is caught on its worker (the worker then continues
    /// with the next job), and the error lists each panicked job's index
    /// and payload plus how many completed results were discarded.
    pub fn try_run_jobs<'a, R: Send>(
        &self,
        jobs: Vec<Job<'a, R>>,
    ) -> Result<Vec<R>, SweepPanicReport> {
        let n = jobs.len();
        if self.threads <= 1 || n <= 1 {
            let mut results = Vec::with_capacity(n);
            let mut panics = Vec::new();
            for (i, job) in jobs.into_iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(job)) {
                    Ok(r) => results.push(r),
                    Err(payload) => {
                        panics.push(JobPanic { job: i, message: panic_message(&*payload) })
                    }
                }
            }
            if panics.is_empty() {
                return Ok(results);
            }
            return Err(SweepPanicReport { panics, completed: results.len() });
        }
        let workers = self.threads.min(n);
        // FnOnce must be moved out to call; parking each job in its own
        // mutex slot lets borrowing worker threads claim them one by one.
        let slots: Vec<Mutex<Option<Job<'a, R>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut panics: Vec<JobPanic> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let slots = &slots;
                    let cursor = &cursor;
                    s.spawn(move || {
                        let mut done = Vec::new();
                        let mut failed = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                return (done, failed);
                            }
                            let job = slots[i]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .take()
                                .expect("sweep job claimed twice");
                            // A panicking job is contained here: the worker
                            // records it and moves on to the next slot, so
                            // one bad job never strands the rest of the
                            // batch or poisons the join below.
                            match catch_unwind(AssertUnwindSafe(job)) {
                                Ok(r) => done.push((i, r)),
                                Err(payload) => failed
                                    .push(JobPanic { job: i, message: panic_message(&*payload) }),
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                // Workers can no longer die from a job panic; an Err here
                // means the thread was killed some other way (e.g. abort).
                // Record it instead of double-panicking mid-drain.
                match h.join() {
                    Ok((done, failed)) => {
                        for (i, r) in done {
                            results[i] = Some(r);
                        }
                        panics.extend(failed);
                    }
                    Err(payload) => {
                        panics.push(JobPanic { job: usize::MAX, message: panic_message(&*payload) })
                    }
                }
            }
        });
        if panics.is_empty() {
            return Ok(results
                .into_iter()
                .map(|r| r.expect("sweep job produced no result"))
                .collect());
        }
        panics.sort_by_key(|p| p.job);
        let completed = results.iter().filter(|r| r.is_some()).count();
        Err(SweepPanicReport { panics, completed })
    }
}

/// One job that panicked inside [`SweepRunner::try_run_jobs`].
#[derive(Debug, Clone)]
pub struct JobPanic {
    /// Submission index of the panicked job (`usize::MAX` when a worker
    /// thread itself died outside any job — only possible via abort).
    pub job: usize,
    /// The panic payload, stringified.
    pub message: String,
}

/// Structured account of a sweep batch that lost jobs to panics.
#[derive(Debug, Clone)]
pub struct SweepPanicReport {
    /// Every panicked job, sorted by submission index.
    pub panics: Vec<JobPanic>,
    /// How many jobs completed and produced a (discarded) result.
    pub completed: usize,
}

impl std::fmt::Display for SweepPanicReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sweep job(s) panicked ({} completed results discarded):",
            self.panics.len(),
            self.completed
        )?;
        for p in &self.panics {
            if p.job == usize::MAX {
                write!(f, " [worker died: {}]", p.message)?;
            } else {
                write!(f, " [job {}: {}]", p.job, p.message)?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for SweepPanicReport {}

/// Stringifies a caught panic payload (the `&str`/`String` forms `panic!`
/// produces; anything else becomes an opaque marker).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one fallible job body under a panic guard, converting an unwind
/// into [`SubmitError::JobPanicked`]. This is the per-job isolation the
/// serving layer wraps engine executions in: the worker thread survives,
/// and the panic becomes a structured error the request path can serve as
/// an HTTP 500 instead of a dead pool.
pub fn catch_job_panic<R>(f: impl FnOnce() -> R) -> Result<R, SubmitError> {
    catch_unwind(AssertUnwindSafe(f))
        .map_err(|payload| SubmitError::JobPanicked { message: panic_message(&*payload) })
}

/// The standard `bench_report` run set, executed through `runner`: every
/// suite workload at base and 1K-entry switch directory, the degraded-SD
/// robustness run, and the crossbar validation batch. Returns the runs
/// sorted by name plus the per-run host wall-clock breakdown (timings are
/// in job-submission order; their names are deterministic, the seconds are
/// host measurements).
pub fn standard_runs(benches: &[Bench], runner: SweepRunner) -> (Vec<RunResult>, Vec<RunTiming>) {
    // One job per workload chain: the degraded run's fault schedule is
    // derived from the sd1024 cycle count, so the three runs of one
    // workload are sequential by construction; distinct workloads shard.
    let mut jobs: Vec<Job<'_, Vec<(RunResult, f64)>>> = Vec::new();
    for b in benches {
        jobs.push(Box::new(move || workload_chain(b)));
    }
    jobs.push(Box::new(|| {
        let t0 = Instant::now();
        let metrics = crossbar_validation();
        vec![(RunResult { name: "xbar.validation".into(), metrics }, t0.elapsed().as_secs_f64())]
    }));
    let mut runs = Vec::new();
    let mut timings = Vec::new();
    for chain in runner.run_jobs(jobs) {
        for (run, seconds) in chain {
            timings.push(RunTiming { name: run.name.clone(), wall_seconds: seconds });
            runs.push(run);
        }
    }
    runs.sort_by(|a, b| a.name.cmp(&b.name));
    (runs, timings)
}

/// One workload's sequential run chain: base, sd1024, then the degraded-SD
/// run whose fault point derives from the sd1024 cycle count.
fn workload_chain(b: &Bench) -> Vec<(RunResult, f64)> {
    let mut out = Vec::new();
    let mut sd1024_cycles = 0u64;
    for (tag, sd) in [("base", None), ("sd1024", Some(1024))] {
        let t0 = Instant::now();
        let metrics = run_one_registry(b, sd, TransientReadPolicy::Retry);
        let seconds = t0.elapsed().as_secs_f64();
        if tag == "sd1024" {
            if let Some(MetricValue::Counter(c)) = metrics.get("sim.cycles") {
                sd1024_cycles = *c;
            }
        }
        out.push((RunResult { name: format!("{}.{}", b.label, tag), metrics }, seconds));
    }
    let t0 = Instant::now();
    if let Some(m) = sd_degraded_run(b, sd1024_cycles) {
        out.push((
            RunResult { name: format!("{}.sd-degraded", b.label), metrics: m },
            t0.elapsed().as_secs_f64(),
        ));
    }
    out
}

/// One observed run in a `--heatmap` document: the figure metrics, the
/// per-phase read-latency breakdown, and the topology contention heatmap.
pub struct HeatmapRun {
    /// Run name, `<workload>.<config>` (same scheme as [`RunResult`]).
    pub name: String,
    /// The run's figure metrics.
    pub metrics: Metrics,
    /// Per-phase latency breakdown (phase sums telescope to
    /// `reads.latency_cycles` exactly, which is what lets `dresar_diff`
    /// attribute a cycle delta with zero residual).
    pub breakdown: LatencyBreakdown,
    /// Per-resource contention attribution.
    pub heatmap: Heatmap,
}

impl ToJson for HeatmapRun {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("name", self.name.as_str())
            .field("metrics", self.metrics.to_json())
            .field("breakdown", self.breakdown.to_json())
            .field("heatmap", self.heatmap.to_json())
            .build()
    }
}

/// The `--heatmap` run set, executed through `runner`: every
/// execution-driven suite workload at base and 1K-entry switch directory,
/// with the latency-breakdown and contention-attribution observers on.
/// Trace-driven workloads are skipped — the constant-latency model has no
/// topology to attribute. Runs come back sorted by name, and the output is
/// byte-identical across thread counts for the same reasons as
/// [`standard_runs`] (independent jobs, submission-order slots, name sort).
pub fn heatmap_runs(benches: &[Bench], runner: SweepRunner) -> Vec<HeatmapRun> {
    let observers = ObserverConfig {
        latency_breakdown: true,
        heatmap_window: Some(DEFAULT_ATTRIB_WINDOW),
        ..Default::default()
    };
    let mut jobs: Vec<Job<'_, Option<HeatmapRun>>> = Vec::new();
    for b in benches.iter().filter(|b| b.driver == Driver::Execution) {
        for (tag, sd) in [("base", None), ("sd1024", Some(1024))] {
            jobs.push(Box::new(move || {
                let (metrics, obs) = run_one_observed(b, sd, TransientReadPolicy::Retry, observers);
                let obs = obs?;
                Some(HeatmapRun {
                    name: format!("{}.{}", b.label, tag),
                    metrics,
                    breakdown: obs.breakdown?,
                    heatmap: obs.heatmap?,
                })
            }));
        }
    }
    let mut runs: Vec<HeatmapRun> = runner.run_jobs(jobs).into_iter().flatten().collect();
    runs.sort_by(|a, b| a.name.cmp(&b.name));
    runs
}

/// The `--scaling` machine-size ladder: the paper's 16-node 2-stage BMIN,
/// then the 3- and 4-stage radix-4 machines up to the full 256-node
/// `NodeId` range. Each step adds one stage to the home path, which is
/// exactly the variable the paper's benefit argument turns on.
pub const SCALING_POINTS: [(usize, u32); 3] = [(16, 4), (64, 4), (256, 4)];

/// The switch-directory configurations each scaling point is evaluated at.
/// `None` is the base machine; tags are zero-padded so a name sort is also
/// a size sort. Undersized directories are deliberately absent: once the
/// weak-scaled working set outgrows an SD's capacity, eviction thrash tips
/// the home directories into a NAK retry storm that never converges
/// (256 entries collapse past 16 nodes; 512 entries collapse at 256 nodes,
/// where FFT retires ~263 k of 3.2 M references in 4 G cycles with ~100 M
/// retries) — a congestion collapse the seed repo could never observe
/// because machines were capped at 64 nodes. 1024 and 2048 entries stay
/// healthy at every ladder size.
pub const SCALING_CONFIGS: [(&str, Option<u32>); 3] =
    [("base", None), ("sd1024", Some(1024)), ("sd2048", Some(2048))];

/// One run of the `--scaling` sweep: a workload on a scaled d-ary BMIN at
/// one switch-directory configuration.
pub struct ScalingRun {
    /// Run name, `<workload>.n<nodes>.<config>` (node count zero-padded so
    /// a name sort is also a machine-size sort).
    pub name: String,
    /// Workload label (`"FFT"`, `"SOR"`).
    pub workload: &'static str,
    /// Processor count of the machine.
    pub nodes: usize,
    /// Switch radix of the d-ary BMIN.
    pub radix: u32,
    /// BMIN stage count (`radix^stages == nodes`) — the home-path length
    /// the paper's prediction is about.
    pub stages: u32,
    /// Switch-directory entries per switch (`None` = base machine).
    pub sd_entries: Option<u32>,
    /// The run's figure metrics.
    pub metrics: Metrics,
}

impl ToJson for ScalingRun {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("name", self.name.as_str())
            .field("workload", self.workload)
            .field("nodes", self.nodes as u64)
            .field("radix", u64::from(self.radix))
            .field("stages", u64::from(self.stages))
            .field("sd_entries", self.sd_entries.map_or(0, u64::from))
            .field("metrics", self.metrics.to_json())
            .build()
    }
}

/// The workloads evaluated at each machine size: the two execution-driven
/// kernels with the most contrasting sharing patterns (FFT's all-to-all
/// butterfly exchanges vs SOR's nearest-neighbour borders), partitioned
/// across `p` processors by their own decomposition.
/// Weak-scaled workloads for the machine-size ladder. The paper machine
/// is 16 processors, so the problem grows with the machine — FFT points
/// by `p/16`, the SOR grid side by `sqrt(p/16)` (work is O(n^2)) — to
/// keep per-processor work constant across 16/64/256 nodes. Strong
/// scaling (a fixed problem) degenerates at 256 processors: the reduced
/// FFT leaves 16 points per processor and the SOR grid fewer rows than
/// processors, so barrier traffic swamps the read path and the figure
/// measures starvation, not the home-path length.
fn scaling_workloads(p: usize, scale: Scale) -> Vec<(&'static str, Workload)> {
    let grow = (p / 16).max(1);
    vec![
        ("FFT", scientific::fft(p, scale.fft_points() * grow)),
        ("SOR", scientific::sor(p, scale.grid_n() * grow.isqrt(), scale.sor_iters())),
    ]
}

/// Runs one scaling point. Every run doubles as a correctness probe: the
/// end-of-run coherence audit must be clean and no structural sim error
/// (e.g. an out-of-range sharer id) may have been recorded — a scaled
/// machine that silently wrapped somewhere must fail the sweep, not
/// publish a figure.
fn scaling_one(w: &Workload, nodes: usize, radix: u32, sd: Option<u32>) -> Metrics {
    let mut cfg = SystemConfig::scaled(nodes, radix);
    cfg.switch_dir =
        sd.map(|entries| SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() });
    let report = System::new(cfg, w).run(RunOptions {
        transient_policy: TransientReadPolicy::Retry,
        verify_coherence: true,
        // A config that tips into a NAK storm (see SCALING_CONFIGS) must
        // fail the sweep as a tripped watchdog, not hang it forever.
        max_cycles: 500_000_000,
        watchdog: Some(dresar_faults::WatchdogConfig::default()),
        ..RunOptions::default()
    });
    assert!(
        report.watchdog.is_none(),
        "scaling run {}x{radix} sd={sd:?}: watchdog tripped: {:?}",
        nodes,
        report.watchdog
    );
    assert!(
        report.sim_errors.is_empty(),
        "scaling run {}x{radix} sd={sd:?}: sim errors {:?}",
        nodes,
        report.sim_errors
    );
    let audit = report.coherence.as_ref().expect("verify_coherence was requested");
    assert!(
        audit.ok(),
        "scaling run {}x{radix} sd={sd:?}: coherence violations {:?}",
        nodes,
        audit.violations
    );
    Metrics { reads: report.reads, exec_cycles: report.cycles, sd_hits: report.sd.read_hits }
}

/// The `--scaling` run set over [`SCALING_POINTS`], executed through
/// `runner`. Output is byte-identical across thread counts for the same
/// reasons as [`standard_runs`]: independent jobs, submission-order result
/// slots, name-sorted assembly.
pub fn scaling_runs(scale: Scale, runner: SweepRunner) -> Vec<ScalingRun> {
    scaling_runs_at(&SCALING_POINTS, scale, runner)
}

/// [`scaling_runs`] over an explicit machine-size ladder (tests and the CI
/// smoke leg use a reduced one).
pub fn scaling_runs_at(
    points: &[(usize, u32)],
    scale: Scale,
    runner: SweepRunner,
) -> Vec<ScalingRun> {
    // One job per (machine, workload, config): the kernels regenerate their
    // streams inside the worker (generation is cheap next to simulation),
    // so jobs share no state and the biggest machine doesn't serialize the
    // pool behind one fat job.
    let mut jobs: Vec<Job<'_, ScalingRun>> = Vec::new();
    for &(nodes, radix) in points {
        let stages = SystemConfig::scaled(nodes, radix).stages();
        for wi in 0..scaling_workloads(nodes, scale).len() {
            for (tag, sd) in SCALING_CONFIGS {
                jobs.push(Box::new(move || {
                    let (label, w) = scaling_workloads(nodes, scale).swap_remove(wi);
                    let metrics = scaling_one(&w, nodes, radix, sd);
                    ScalingRun {
                        name: format!("{label}.n{nodes:03}.{tag}"),
                        workload: label,
                        nodes,
                        radix,
                        stages,
                        sd_entries: sd,
                        metrics,
                    }
                }));
            }
        }
    }
    let mut runs = runner.run_jobs(jobs);
    runs.sort_by(|a, b| a.name.cmp(&b.name));
    runs
}

/// One run of the `--protocols` ablation: a workload under one coherence
/// protocol at one switch-directory configuration on the paper's 16-node
/// machine.
pub struct ProtocolRun {
    /// Run name, `<workload>.<protocol>.<config>` (e.g. `"FFT.mesi.sd1024"`).
    pub name: String,
    /// Workload label (`"FFT"`, `"SOR"`).
    pub workload: &'static str,
    /// The coherence protocol the caches and home directories ran.
    pub protocol: Protocol,
    /// Switch-directory entries per switch (`None` = base machine).
    pub sd_entries: Option<u32>,
    /// The run's figure metrics.
    pub metrics: Metrics,
}

impl ToJson for ProtocolRun {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("name", self.name.as_str())
            .field("workload", self.workload)
            .field("protocol", self.protocol.as_str())
            .field("sd_entries", self.sd_entries.map_or(0, u64::from))
            .field("metrics", self.metrics.to_json())
            .build()
    }
}

/// The workloads the protocol ablation evaluates: the two execution-driven
/// kernels with the most contrasting sharing patterns (same pair as the
/// scaling ladder), on the paper's 16-processor machine.
fn protocol_workloads(scale: Scale) -> Vec<(&'static str, Workload)> {
    let p = 16;
    vec![
        ("FFT", scientific::fft(p, scale.fft_points())),
        ("SOR", scientific::sor(p, scale.grid_n(), scale.sor_iters())),
    ]
}

/// Runs one protocol ablation point. Every run doubles as a correctness
/// probe: the end-of-run per-protocol coherence audit must be clean and no
/// structural sim error (e.g. an undefined protocol transition) may have
/// been recorded — a protocol whose transition table has a hole must fail
/// the sweep, not publish a figure.
fn protocol_one(w: &Workload, protocol: Protocol, sd: Option<u32>) -> Metrics {
    let mut cfg = SystemConfig::paper_table2();
    cfg.protocol = protocol;
    cfg.switch_dir =
        sd.map(|entries| SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() });
    let report = System::new(cfg, w).run(RunOptions {
        transient_policy: TransientReadPolicy::Retry,
        verify_coherence: true,
        ..RunOptions::default()
    });
    assert!(
        report.sim_errors.is_empty(),
        "protocol run {protocol} sd={sd:?}: sim errors {:?}",
        report.sim_errors
    );
    let audit = report.coherence.as_ref().expect("verify_coherence was requested");
    assert!(
        audit.ok(),
        "protocol run {protocol} sd={sd:?}: coherence violations {:?}",
        audit.violations
    );
    Metrics { reads: report.reads, exec_cycles: report.cycles, sd_hits: report.sd.read_hits }
}

/// The `--protocols` run set: every protocol in [`Protocol::ALL`] crossed
/// with the [`SCALING_CONFIGS`] switch-directory axis and the two kernels,
/// executed through `runner`. Output is byte-identical across thread counts
/// for the same reasons as [`standard_runs`]: independent jobs,
/// submission-order result slots, name-sorted assembly.
pub fn protocol_runs(scale: Scale, runner: SweepRunner) -> Vec<ProtocolRun> {
    protocol_runs_at(&Protocol::ALL, scale, runner)
}

/// [`protocol_runs`] over an explicit protocol set (tests use a reduced
/// one).
pub fn protocol_runs_at(
    protocols: &[Protocol],
    scale: Scale,
    runner: SweepRunner,
) -> Vec<ProtocolRun> {
    // One job per (protocol, workload, config): the kernels regenerate
    // their streams inside the worker (generation is cheap next to
    // simulation), so jobs share no state.
    let mut jobs: Vec<Job<'_, ProtocolRun>> = Vec::new();
    for &protocol in protocols {
        for wi in 0..protocol_workloads(scale).len() {
            for (tag, sd) in SCALING_CONFIGS {
                jobs.push(Box::new(move || {
                    let (label, w) = protocol_workloads(scale).swap_remove(wi);
                    let metrics = protocol_one(&w, protocol, sd);
                    ProtocolRun {
                        name: format!("{label}.{protocol}.{tag}"),
                        workload: label,
                        protocol,
                        sd_entries: sd,
                        metrics,
                    }
                }));
            }
        }
    }
    let mut runs = runner.run_jobs(jobs);
    runs.sort_by(|a, b| a.name.cmp(&b.name));
    runs
}

/// Informational robustness run: the sd1024 configuration with the switch
/// directories disabled half-way through (derived deterministically from
/// the healthy run's cycle count), exercising the degraded home-directory
/// fallback. The registry carries the fault/watchdog/coherence counters, so
/// the regression gate also pins down the fault-injection schedule itself.
pub fn sd_degraded_run(b: &Bench, sd1024_cycles: u64) -> Option<MetricsRegistry> {
    if sd1024_cycles == 0 {
        return None; // trace-driven workload: no fault machinery
    }
    let plan = FaultPlan { disable_at: (sd1024_cycles / 2).max(1), ..FaultPlan::default() };
    let report = run_one_faulted(b, Some(1024), TransientReadPolicy::Retry, plan)?;
    let mut m = report.metrics;
    if let Some(c) = &report.coherence {
        m.counter("coherence.ok", u64::from(c.ok()));
        m.counter("coherence.blocks_checked", c.blocks_checked);
    }
    Some(m)
}

/// A deterministic flit-level batch through the full 16-node BMIN: 32
/// messages on fixed routes, run to drain. This is the one place the
/// cycle-accurate [`FlitNetwork`] arbitration counters surface in telemetry
/// (the execution-driven system uses the analytical hop model instead).
pub fn crossbar_validation() -> MetricsRegistry {
    let bmin = Bmin::new(16, 4);
    let cfg = SystemConfig::paper_table2().switch;
    let mut net = FlitNetwork::new(bmin, cfg);
    for p in 0..16u8 {
        net.inject(p as u64, &routes::forward(&bmin, p, (p + 5) % 16), 1)
            .expect("fixed validation route");
        net.inject(100 + p as u64, &routes::backward(&bmin, (p + 5) % 16, p), 5)
            .expect("fixed validation route");
    }
    let delivered = net.run_until_drained(100_000).len() as u64;
    let s = net.arbiter_stats();
    let mut m = MetricsRegistry::new();
    m.counter("xbar.deliveries", delivered);
    m.counter("xbar.cycles", net.now());
    m.counter("xbar.grants", s.grants);
    m.counter("xbar.conflicts", s.conflicts);
    m.counter("xbar.lock_blocked", s.lock_blocked);
    m.counter("xbar.offers_refused", s.offers_refused);
    m
}

/// Why a [`ServicePool`] job could not produce a result: refused at
/// submission ([`SubmitError::QueueFull`] / [`SubmitError::ShuttingDown`])
/// or lost to a contained panic during execution
/// ([`SubmitError::JobPanicked`], produced by [`catch_job_panic`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded admission queue is at capacity: shed the request.
    QueueFull {
        /// The configured queue bound the submission ran into.
        queue_depth: usize,
    },
    /// The pool is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The job panicked mid-execution. The panic was contained by the
    /// worker (the pool keeps serving); the payload is preserved so the
    /// caller can report a structured error instead of a dead connection.
    JobPanicked {
        /// The stringified panic payload.
        message: String,
    },
}

/// A persistent, bounded worker pool: the serving counterpart of the
/// batch-oriented [`SweepRunner`].
///
/// Where `run_jobs` executes one closed batch and returns, a long-lived
/// service needs *admission control*: a fixed-depth queue whose overflow is
/// reported to the caller (so the server can shed load with a structured
/// error instead of buffering unboundedly) and a graceful drain that
/// finishes queued work before the workers exit. The pool is sized by a
/// [`SweepRunner`] (so `DRESAR_SWEEP_THREADS` governs serving concurrency
/// exactly like sweep concurrency) and runs the same boxed-job shape.
///
/// `pause`/`resume` gate the workers without touching the queue — tests use
/// this to hold jobs queued while concurrent requests pile up, making
/// coalescing and shedding assertions deterministic instead of racy.
#[derive(Debug)]
pub struct ServicePool {
    inner: std::sync::Arc<PoolShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

#[derive(Debug)]
struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for jobs (or for a resume/drain signal).
    takeable: std::sync::Condvar,
    /// `drain` waits here for the queue to empty and workers to go idle.
    drained: std::sync::Condvar,
    queue_depth: usize,
}

#[derive(Default)]
struct PoolState {
    queue: std::collections::VecDeque<Box<dyn FnOnce() + Send>>,
    paused: bool,
    stopping: bool,
    /// Jobs currently executing on a worker.
    active: usize,
    /// High-water mark of queued-plus-active jobs.
    peak_depth: u64,
    /// Total jobs accepted over the pool's lifetime.
    scheduled: u64,
    /// Jobs whose panic a worker contained (the worker kept running).
    panics: u64,
}

impl std::fmt::Debug for PoolState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolState")
            .field("queued", &self.queue.len())
            .field("paused", &self.paused)
            .field("stopping", &self.stopping)
            .field("active", &self.active)
            .field("peak_depth", &self.peak_depth)
            .field("scheduled", &self.scheduled)
            .field("panics", &self.panics)
            .finish()
    }
}

/// What [`ServicePool::drain`] observed while shutting the pool down —
/// surfaced as data so a supervisor can report which workers were lost and
/// how many jobs were abandoned, instead of the historical double panic
/// (`expect` on a poisoned join while already unwinding).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Job panics contained by workers over the pool's lifetime.
    pub worker_panics: u64,
    /// Worker threads that died outside the per-job guard (only possible
    /// via a non-unwinding kill; a contained panic never loses a worker).
    pub workers_lost: usize,
    /// Queued jobs discarded because no live worker remained to run them.
    pub jobs_abandoned: usize,
}

impl DrainReport {
    /// Whether the drain completed without losing a worker or a job.
    pub fn clean(&self) -> bool {
        self.workers_lost == 0 && self.jobs_abandoned == 0
    }
}

impl ServicePool {
    /// Starts `runner.threads()` workers servicing a queue bounded at
    /// `queue_depth` jobs (clamped to at least 1). With `paused` the
    /// workers idle until [`ServicePool::resume`]; submissions still queue.
    pub fn start(runner: SweepRunner, queue_depth: usize, paused: bool) -> Self {
        let inner = std::sync::Arc::new(PoolShared {
            state: Mutex::new(PoolState { paused, ..PoolState::default() }),
            takeable: std::sync::Condvar::new(),
            drained: std::sync::Condvar::new(),
            queue_depth: queue_depth.max(1),
        });
        let workers = (0..runner.threads())
            .map(|_| {
                let shared = std::sync::Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ServicePool { inner, workers: Mutex::new(workers) }
    }

    /// Queues one job, or reports why it cannot be accepted. Never blocks.
    pub fn try_submit(&self, job: Box<dyn FnOnce() + Send>) -> Result<(), SubmitError> {
        let mut st = lock_pool(&self.inner.state);
        if st.stopping {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.queue_depth {
            return Err(SubmitError::QueueFull { queue_depth: self.inner.queue_depth });
        }
        st.queue.push_back(job);
        st.scheduled += 1;
        st.peak_depth = st.peak_depth.max((st.queue.len() + st.active) as u64);
        drop(st);
        self.inner.takeable.notify_one();
        Ok(())
    }

    /// Holds workers idle after their current job; queued jobs stay queued.
    pub fn pause(&self) {
        lock_pool(&self.inner.state).paused = true;
    }

    /// Releases paused workers.
    pub fn resume(&self) {
        lock_pool(&self.inner.state).paused = false;
        self.inner.takeable.notify_all();
    }

    /// `(queued + active, peak, scheduled)` — the admission gauges the
    /// server exports as `serve.queue_depth` and `serve.scheduled`.
    pub fn depth(&self) -> (u64, u64, u64) {
        let st = lock_pool(&self.inner.state);
        ((st.queue.len() + st.active) as u64, st.peak_depth, st.scheduled)
    }

    /// Job panics contained by the workers so far (each one left the
    /// worker alive and the pool serving — exported as
    /// `serve.worker_panics`).
    pub fn panics(&self) -> u64 {
        lock_pool(&self.inner.state).panics
    }

    /// Graceful drain: stops admissions, runs every queued job to
    /// completion (resuming paused workers), then joins the workers.
    ///
    /// Returns what happened as data. Contained job panics do not disturb
    /// the drain (the workers that caught them are joined normally); if
    /// every worker was lost to a non-unwinding kill while jobs were still
    /// queued, those jobs are abandoned and counted rather than waited on
    /// forever.
    pub fn drain(&self) -> DrainReport {
        {
            let mut st = lock_pool(&self.inner.state);
            st.stopping = true;
            st.paused = false;
        }
        self.inner.takeable.notify_all();
        let mut st = lock_pool(&self.inner.state);
        let mut jobs_abandoned = 0usize;
        while !st.queue.is_empty() || st.active > 0 {
            // Bounded wait so worker liveness is re-checked: if no worker
            // thread remains to run the queue down, waiting on `drained`
            // would hang forever — abandon the queue instead and report it.
            let (guard, _) = self
                .inner
                .drained
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
            let all_dead =
                lock_pool_list(&self.workers).iter().all(std::thread::JoinHandle::is_finished);
            if all_dead && st.active == 0 && !st.queue.is_empty() {
                jobs_abandoned = st.queue.len();
                st.queue.clear();
                break;
            }
        }
        let worker_panics = st.panics;
        drop(st);
        let mut workers_lost = 0usize;
        for w in lock_pool_list(&self.workers).drain(..) {
            if w.join().is_err() {
                workers_lost += 1;
            }
        }
        DrainReport { worker_panics, workers_lost, jobs_abandoned }
    }
}

/// Poison-tolerant pool-state lock: a panic elsewhere must degrade to a
/// contained, counted error — never cascade into every pool operation.
fn lock_pool(m: &Mutex<PoolState>) -> std::sync::MutexGuard<'_, PoolState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_pool_list(
    m: &Mutex<Vec<std::thread::JoinHandle<()>>>,
) -> std::sync::MutexGuard<'_, Vec<std::thread::JoinHandle<()>>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut st = lock_pool(&shared.state);
            loop {
                if !st.paused {
                    if let Some(job) = st.queue.pop_front() {
                        st.active += 1;
                        break job;
                    }
                    if st.stopping {
                        return;
                    }
                } else if st.stopping {
                    // Drain resumes before stopping; a paused stop still
                    // exits once the queue has been run down.
                    st.paused = false;
                    continue;
                }
                st = shared.takeable.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Contain a panicking job here: the worker survives (in-place
        // respawn — same thread, fresh job), `active` is decremented on
        // every path so a panic can never leak an active count and hang
        // the drain, and the panic is counted for `serve.worker_panics`.
        let panicked = catch_unwind(AssertUnwindSafe(job)).is_err();
        let mut st = lock_pool(&shared.state);
        st.active -= 1;
        if panicked {
            st.panics += 1;
        }
        if st.queue.is_empty() && st.active == 0 {
            shared.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_jobs_preserves_submission_order() {
        let jobs: Vec<Job<'static, usize>> = (0..32)
            .map(|i| {
                let b: Job<'static, usize> = Box::new(move || {
                    // Stagger so late submissions often finish first.
                    std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
                    i as usize
                });
                b
            })
            .collect();
        let out = SweepRunner::with_threads(8).run_jobs(jobs);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn serial_runner_matches_parallel_runner() {
        let mk = || -> Vec<Job<'static, u64>> {
            (0..10u64)
                .map(|i| {
                    let b: Job<'static, u64> = Box::new(move || i * i + 7);
                    b
                })
                .collect()
        };
        assert_eq!(
            SweepRunner::serial().run_jobs(mk()),
            SweepRunner::with_threads(4).run_jobs(mk())
        );
    }

    #[test]
    fn service_pool_runs_jobs_and_drains() {
        use std::sync::atomic::AtomicU64;
        // Bound >= submission count: workers may drain slower than this
        // loop submits, and every job must be accepted for the sum check.
        let pool = ServicePool::start(SweepRunner::with_threads(4), 100, false);
        let sum = std::sync::Arc::new(AtomicU64::new(0));
        for i in 1..=100u64 {
            let sum = std::sync::Arc::clone(&sum);
            pool.try_submit(Box::new(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            }))
            .expect("queue has room");
        }
        pool.drain();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        let (_, peak, scheduled) = pool.depth();
        assert_eq!(scheduled, 100);
        assert!(peak >= 1);
    }

    #[test]
    fn service_pool_sheds_at_the_queue_bound_and_recovers() {
        // Paused workers: submissions queue but never start, so the bound
        // is hit deterministically.
        let pool = ServicePool::start(SweepRunner::with_threads(2), 2, true);
        pool.try_submit(Box::new(|| {})).unwrap();
        pool.try_submit(Box::new(|| {})).unwrap();
        assert_eq!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::QueueFull { queue_depth: 2 })
        );
        let (depth, peak, _) = pool.depth();
        assert_eq!(depth, 2);
        assert_eq!(peak, 2);
        // Drain resumes the paused workers, runs the queue down, and the
        // pool then refuses new work as shutting down.
        pool.drain();
        assert_eq!(pool.try_submit(Box::new(|| {})), Err(SubmitError::ShuttingDown));
    }

    #[test]
    fn try_run_jobs_reports_panics_as_data_on_both_paths() {
        let mk = || -> Vec<Job<'static, u64>> {
            (0..6u64)
                .map(|i| {
                    let b: Job<'static, u64> = Box::new(move || {
                        assert!(i != 2 && i != 4, "job {i} exploded");
                        i
                    });
                    b
                })
                .collect()
        };
        for runner in [SweepRunner::serial(), SweepRunner::with_threads(3)] {
            let report = runner.try_run_jobs(mk()).expect_err("two jobs panic");
            assert_eq!(report.panics.len(), 2);
            assert_eq!(report.panics[0].job, 2);
            assert_eq!(report.panics[1].job, 4);
            assert_eq!(report.completed, 4);
            assert!(report.panics[0].message.contains("job 2 exploded"));
            let shown = report.to_string();
            assert!(shown.contains("2 sweep job(s) panicked"), "got: {shown}");
            assert!(shown.contains("[job 4:"), "got: {shown}");
        }
    }

    #[test]
    fn run_jobs_panics_once_with_the_structured_report() {
        let jobs: Vec<Job<'static, ()>> =
            vec![Box::new(|| {}), Box::new(|| panic!("boom")), Box::new(|| {})];
        let err = catch_unwind(AssertUnwindSafe(|| {
            SweepRunner::with_threads(2).run_jobs(jobs);
        }))
        .expect_err("a panicking job fails the batch");
        let msg = panic_message(&*err);
        assert!(msg.contains("1 sweep job(s) panicked"), "got: {msg}");
        assert!(msg.contains("[job 1: boom]"), "got: {msg}");
    }

    #[test]
    fn catch_job_panic_converts_an_unwind_into_a_submit_error() {
        assert_eq!(catch_job_panic(|| 7), Ok(7));
        let err = catch_job_panic(|| -> u64 { panic!("engine bug {}", 13) })
            .expect_err("panic becomes data");
        assert_eq!(err, SubmitError::JobPanicked { message: "engine bug 13".into() });
    }

    #[test]
    fn service_pool_survives_a_panicking_job_and_reports_it_at_drain() {
        use std::sync::atomic::AtomicU64;
        let pool = ServicePool::start(SweepRunner::with_threads(2), 16, false);
        let done = std::sync::Arc::new(AtomicU64::new(0));
        pool.try_submit(Box::new(|| panic!("injected worker panic"))).unwrap();
        // The pool must keep serving after the contained panic: the same
        // workers run every subsequent job.
        for _ in 0..8 {
            let done = std::sync::Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                done.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        let report = pool.drain();
        assert_eq!(done.load(Ordering::Relaxed), 8);
        assert_eq!(report, DrainReport { worker_panics: 1, workers_lost: 0, jobs_abandoned: 0 });
        assert!(report.clean(), "a contained panic is not a lost worker");
        assert_eq!(pool.panics(), 1);
    }

    #[test]
    fn scaling_runs_serial_matches_parallel() {
        // Reduced ladder at tiny scale so the test stays cheap; the full
        // 256-node ladder is exercised by the CI scaling leg.
        let points = [(16usize, 4u32), (64, 4)];
        let a = scaling_runs_at(&points, Scale::Tiny, SweepRunner::serial());
        let b = scaling_runs_at(&points, Scale::Tiny, SweepRunner::with_threads(4));
        assert_eq!(a.len(), points.len() * 2 * SCALING_CONFIGS.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name, "run order must not depend on thread count");
            assert_eq!(
                x.to_json().dump(),
                y.to_json().dump(),
                "{}: scaling runs must be byte-identical serial vs parallel",
                x.name
            );
        }
    }

    #[test]
    fn protocol_runs_serial_matches_parallel() {
        // Reduced protocol set at tiny scale so the test stays cheap; the
        // full MSI/MESI/MOESI/DLS matrix is exercised by the CI protocols
        // leg and the committed FIG_protocols.md.
        let protocols = [Protocol::Msi, Protocol::Mesi];
        let a = protocol_runs_at(&protocols, Scale::Tiny, SweepRunner::serial());
        let b = protocol_runs_at(&protocols, Scale::Tiny, SweepRunner::with_threads(4));
        assert_eq!(a.len(), protocols.len() * 2 * SCALING_CONFIGS.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name, "run order must not depend on thread count");
            assert_eq!(
                x.to_json().dump(),
                y.to_json().dump(),
                "{}: protocol runs must be byte-identical serial vs parallel",
                x.name
            );
        }
    }

    #[test]
    fn crossbar_validation_is_deterministic() {
        let a = crossbar_validation();
        let b = crossbar_validation();
        assert_eq!(a.scalars(), b.scalars());
    }
}
