//! Coherence message vocabulary.
//!
//! [`MsgType`] mirrors the paper's Table 1 (the message types relevant to the
//! switch directory) plus the ordinary messages every full-map MSI protocol
//! needs (clean-read replies, cache-to-cache data, invalidations and their
//! acknowledgments). [`Message`] is the envelope routed through the BMIN;
//! switch directories snoop it at every hop.

use crate::addr::{BlockAddr, NodeId};
use crate::sharers::SharerSet;
use crate::Cycle;

/// Where a message originates or terminates.
///
/// In the paper's BMIN (Figure 3) the processor/cache interfaces sit on one
/// side of the network and the memory/directory interfaces on the other, so
/// endpoints are either a processor-side or a memory-side attachment of a
/// node — or a switch, for messages generated *by* a switch directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The processor/cache interface of a node.
    Proc(NodeId),
    /// The memory/directory interface of a node.
    Mem(NodeId),
    /// A switch, identified by (stage, index within stage). Only ever a
    /// *source*: switch directories generate CtoC requests, replies and
    /// retries (paper §4.2, "CtoC & Reply Unit").
    Switch {
        /// Stage of the BMIN, 0 = adjacent to the processors.
        stage: u8,
        /// Index of the switch within its stage.
        index: u16,
    },
}

impl Endpoint {
    /// The node this endpoint belongs to, if it is a node interface.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            Endpoint::Proc(n) | Endpoint::Mem(n) => Some(n),
            Endpoint::Switch { .. } => None,
        }
    }
}

/// The message types of the coherence protocol.
///
/// The first seven variants are exactly the paper's Table 1; the remainder
/// are the ordinary protocol messages the table omits because the switch
/// directory ignores them ("All other request types can be ignored since
/// they do not require switch directory processing", §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgType {
    // ---- Table 1: relevant to the switch directory -----------------------
    /// Load miss headed to a (possibly remote) home memory.
    ReadRequest,
    /// Store miss / ownership request headed to the home memory.
    WriteRequest,
    /// Ownership (plus data) reply servicing a write request. Installs
    /// switch-directory entries on its way back to the writer.
    WriteReply,
    /// Request forwarded to an owner cache when a block is found dirty —
    /// either by the home directory or by a switch directory hit.
    CtoCRequest,
    /// Data sent to the home node to make memory consistent after a
    /// cache-to-cache transfer (the owner also downgrades M -> S).
    CopyBack,
    /// Dirty-block eviction: data sent from a cache to the home memory.
    WriteBack,
    /// Negative acknowledgment telling the requester to retry later.
    Retry,
    // ---- Ordinary protocol messages (ignored by switch directories) ------
    /// Data reply for a read serviced clean from memory.
    ReadReply,
    /// Cache-to-cache data transfer from the owner to the requester.
    CtoCData,
    /// Invalidation of a shared copy (on behalf of a writer).
    Invalidate,
    /// Acknowledgment of an invalidation.
    InvalAck,
    /// Home acknowledges a writeback (lets the evicting cache retire it).
    WriteBackAck,
}

impl MsgType {
    /// Whether this message carries a full cache block of data. Determines
    /// its length in flits.
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            MsgType::WriteReply
                | MsgType::ReadReply
                | MsgType::CtoCData
                | MsgType::CopyBack
                | MsgType::WriteBack
        )
    }

    /// Whether the switch directory snoops this type at all (Table 1 set).
    pub fn switch_dir_relevant(self) -> bool {
        matches!(
            self,
            MsgType::ReadRequest
                | MsgType::WriteRequest
                | MsgType::WriteReply
                | MsgType::CtoCRequest
                | MsgType::CopyBack
                | MsgType::WriteBack
                | MsgType::Retry
        )
    }

    /// Whether this type travels the *forward* path (processor side toward
    /// memory side). Replies and coherence requests from memory to the
    /// processors travel the backward path (paper §3.1).
    pub fn forward_path(self) -> bool {
        matches!(
            self,
            MsgType::ReadRequest
                | MsgType::WriteRequest
                | MsgType::CopyBack
                | MsgType::WriteBack
                | MsgType::InvalAck
        )
    }

    /// Stable name, the inverse of [`MsgType::parse`].
    pub fn label(self) -> &'static str {
        match self {
            MsgType::ReadRequest => "ReadRequest",
            MsgType::WriteRequest => "WriteRequest",
            MsgType::WriteReply => "WriteReply",
            MsgType::CtoCRequest => "CtoCRequest",
            MsgType::CopyBack => "CopyBack",
            MsgType::WriteBack => "WriteBack",
            MsgType::Retry => "Retry",
            MsgType::ReadReply => "ReadReply",
            MsgType::CtoCData => "CtoCData",
            MsgType::Invalidate => "Invalidate",
            MsgType::InvalAck => "InvalAck",
            MsgType::WriteBackAck => "WriteBackAck",
        }
    }

    /// Parses a message-type name as produced by [`MsgType::label`] (used
    /// by the `--faults` plan parser).
    pub fn parse(name: &str) -> Option<MsgType> {
        Some(match name {
            "ReadRequest" => MsgType::ReadRequest,
            "WriteRequest" => MsgType::WriteRequest,
            "WriteReply" => MsgType::WriteReply,
            "CtoCRequest" => MsgType::CtoCRequest,
            "CopyBack" => MsgType::CopyBack,
            "WriteBack" => MsgType::WriteBack,
            "Retry" => MsgType::Retry,
            "ReadReply" => MsgType::ReadReply,
            "CtoCData" => MsgType::CtoCData,
            "Invalidate" => MsgType::Invalidate,
            "InvalAck" => MsgType::InvalAck,
            "WriteBackAck" => MsgType::WriteBackAck,
            _ => return None,
        })
    }
}

/// A coherence message in flight.
///
/// The `requester` field is the pid of the processor on whose behalf the
/// transaction runs; switch-generated messages set `switch_generated` — the
/// "single bit in the header flit" that lets cache and directory controllers
/// distinguish them (paper §3.2) — and marked copybacks/writebacks carry the
/// extra sharer pids for the home directory in `carried_sharers`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Unique id (monotone per simulation), for tracing and determinism.
    pub id: u64,
    /// Protocol operation.
    pub kind: MsgType,
    /// Block the operation concerns.
    pub block: BlockAddr,
    /// Origin endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Processor on whose behalf the transaction runs.
    pub requester: NodeId,
    /// For CtoC requests: the owner the request is being sent to. For
    /// write replies: the new owner (same as `requester`).
    pub owner: Option<NodeId>,
    /// Set on messages generated or annotated by a switch directory.
    pub switch_generated: bool,
    /// On `CtoCRequest`/`CopyBack`: the intervention transfers *ownership*
    /// to the requester (it was triggered by a write), rather than
    /// downgrading the owner to Shared. Switch directories only ever
    /// generate read-intent interventions (they serve read requests).
    pub write_intent: bool,
    /// Sharer pids attached by switch directories to copyback/writeback
    /// messages so the home full-map vector stays exact (paper §3.2).
    pub carried_sharers: SharerSet,
    /// Cycle at which the *transaction* (not this hop) was issued; used for
    /// read-latency accounting.
    pub issued_at: Cycle,
    /// Ownership-instance sequence number, stamped by the home directory.
    /// On ownership grants (`WriteReply`, write-intent `CtoCData`): the
    /// sequence of the granted instance. On home-generated `CtoCRequest`s:
    /// the sequence of the ownership instance being intervened, letting the
    /// owner reject interventions for an instance it no longer (or does not
    /// yet) hold — message retransmission can deliver an intervention the
    /// home has since cancelled. Zero on all other messages.
    pub owner_seq: u64,
    /// Transaction id of the miss this message serves: a stable span id that
    /// follows the whole lifecycle (request, forwarded intervention, reply,
    /// retry) so observers can reconstruct one miss as a causal tree. Zero
    /// when the message serves no tracked transaction (e.g. evictions).
    pub txn: u64,
}

impl Message {
    /// Length of the message in 8-byte flits: one header flit, plus the
    /// cache block (32 bytes = 4 flits with the Table 2 geometry) for
    /// data-carrying messages.
    pub fn flits(&self, block_bytes: u64, flit_bytes: u64) -> u32 {
        let header = 1;
        if self.kind.carries_data() {
            header + (block_bytes.div_ceil(flit_bytes)) as u32
        } else {
            header
        }
    }
}

/// Builder-style constructor helpers keeping call sites terse.
impl Message {
    /// Creates a message with no owner, no carried sharers and the
    /// switch-generated bit clear.
    pub fn new(
        id: u64,
        kind: MsgType,
        block: BlockAddr,
        src: Endpoint,
        dst: Endpoint,
        requester: NodeId,
        issued_at: Cycle,
    ) -> Self {
        Message {
            id,
            kind,
            block,
            src,
            dst,
            requester,
            owner: None,
            switch_generated: false,
            write_intent: false,
            carried_sharers: SharerSet::EMPTY,
            issued_at,
            owner_seq: 0,
            txn: 0,
        }
    }

    /// Tags the message with the transaction id it serves.
    pub fn with_txn(mut self, txn: u64) -> Self {
        self.txn = txn;
        self
    }

    /// Sets the ownership-instance sequence number.
    pub fn with_owner_seq(mut self, seq: u64) -> Self {
        self.owner_seq = seq;
        self
    }

    /// Sets the write-intent flag.
    pub fn with_write_intent(mut self) -> Self {
        self.write_intent = true;
        self
    }

    /// Sets the owner field.
    pub fn with_owner(mut self, owner: NodeId) -> Self {
        self.owner = Some(owner);
        self
    }

    /// Marks the message as switch-generated.
    pub fn from_switch(mut self) -> Self {
        self.switch_generated = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(kind: MsgType) -> Message {
        Message::new(0, kind, BlockAddr(7), Endpoint::Proc(1), Endpoint::Mem(2), 1, 0)
    }

    #[test]
    fn data_messages_are_five_flits_with_table2_geometry() {
        for kind in [
            MsgType::WriteReply,
            MsgType::ReadReply,
            MsgType::CtoCData,
            MsgType::CopyBack,
            MsgType::WriteBack,
        ] {
            assert_eq!(msg(kind).flits(32, 8), 5, "{kind:?}");
        }
    }

    #[test]
    fn control_messages_are_one_flit() {
        for kind in [
            MsgType::ReadRequest,
            MsgType::WriteRequest,
            MsgType::CtoCRequest,
            MsgType::Retry,
            MsgType::Invalidate,
            MsgType::InvalAck,
            MsgType::WriteBackAck,
        ] {
            assert_eq!(msg(kind).flits(32, 8), 1, "{kind:?}");
        }
    }

    #[test]
    fn table1_set_is_switch_dir_relevant() {
        use MsgType::*;
        for kind in [ReadRequest, WriteRequest, WriteReply, CtoCRequest, CopyBack, WriteBack, Retry]
        {
            assert!(kind.switch_dir_relevant());
        }
        for kind in [ReadReply, CtoCData, Invalidate, InvalAck, WriteBackAck] {
            assert!(!kind.switch_dir_relevant());
        }
    }

    #[test]
    fn path_direction_matches_interface_sides() {
        use MsgType::*;
        // Processor -> memory messages take the forward path.
        for kind in [ReadRequest, WriteRequest, CopyBack, WriteBack, InvalAck] {
            assert!(kind.forward_path(), "{kind:?}");
        }
        // Memory -> processor (and switch -> processor) take the backward path.
        for kind in [WriteReply, ReadReply, CtoCRequest, CtoCData, Invalidate, Retry] {
            assert!(!kind.forward_path(), "{kind:?}");
        }
    }

    #[test]
    fn endpoint_node_extraction() {
        assert_eq!(Endpoint::Proc(3).node(), Some(3));
        assert_eq!(Endpoint::Mem(9).node(), Some(9));
        assert_eq!(Endpoint::Switch { stage: 1, index: 2 }.node(), None);
    }
}
