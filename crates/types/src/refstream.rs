//! Memory-reference streams.
//!
//! Workload generators (crate `dresar-workloads`) produce one stream per
//! simulated processor. A stream is a sequence of [`StreamItem`]s: memory
//! references annotated with the number of non-memory instructions executed
//! since the previous reference (so the processor model can account compute
//! time), interleaved with barrier markers for the scientific kernels'
//! phase structure.

use crate::addr::Addr;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefKind {
    /// A load; the processor blocks until data returns (reads determine
    /// stall time — paper §2).
    Read,
    /// A store; retired through the write buffer under release consistency,
    /// so it does not stall the processor.
    Write,
}

/// One memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Byte address referenced.
    pub addr: Addr,
    /// Load or store.
    pub kind: RefKind,
    /// Number of non-memory instructions executed since the previous item
    /// of this stream; converted to cycles by the processor's issue width.
    pub work: u32,
}

/// An item of a per-processor reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamItem {
    /// A memory reference.
    Ref(MemRef),
    /// A global barrier: the processor may not proceed past barrier `id`
    /// until every processor has reached it. Barrier ids are issued in
    /// ascending order within each stream.
    Barrier(u32),
}

impl StreamItem {
    /// Convenience constructor for a read.
    pub fn read(addr: Addr, work: u32) -> Self {
        StreamItem::Ref(MemRef { addr, kind: RefKind::Read, work })
    }

    /// Convenience constructor for a write.
    pub fn write(addr: Addr, work: u32) -> Self {
        StreamItem::Ref(MemRef { addr, kind: RefKind::Write, work })
    }
}

/// A complete multiprocessor workload: one reference stream per processor.
///
/// Invariants (checked by [`Workload::validate`]):
/// * all streams see the same set of barrier ids in the same order;
/// * barrier ids ascend.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// A short human-readable name ("fft", "tpcc", ...).
    pub name: String,
    /// One stream per processor, indexed by pid.
    pub streams: Vec<Vec<StreamItem>>,
}

impl Workload {
    /// Total number of memory references across all streams.
    pub fn total_refs(&self) -> usize {
        self.streams
            .iter()
            .map(|s| s.iter().filter(|i| matches!(i, StreamItem::Ref(_))).count())
            .sum()
    }

    /// Checks the barrier invariants; returns a description of the first
    /// violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        let barrier_seq = |s: &Vec<StreamItem>| -> Vec<u32> {
            s.iter()
                .filter_map(|i| match i {
                    StreamItem::Barrier(b) => Some(*b),
                    _ => None,
                })
                .collect()
        };
        let first = match self.streams.first() {
            Some(s) => barrier_seq(s),
            None => return Ok(()),
        };
        if first.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("{}: barrier ids do not ascend", self.name));
        }
        for (pid, s) in self.streams.iter().enumerate().skip(1) {
            if barrier_seq(s) != first {
                return Err(format!(
                    "{}: processor {pid} sees a different barrier sequence than processor 0",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_matching_barriers() {
        let w = Workload {
            name: "t".into(),
            streams: vec![
                vec![StreamItem::read(0, 1), StreamItem::Barrier(0), StreamItem::Barrier(1)],
                vec![StreamItem::Barrier(0), StreamItem::write(64, 2), StreamItem::Barrier(1)],
            ],
        };
        assert!(w.validate().is_ok());
        assert_eq!(w.total_refs(), 2);
    }

    #[test]
    fn validate_rejects_mismatched_barriers() {
        let w = Workload {
            name: "t".into(),
            streams: vec![vec![StreamItem::Barrier(0)], vec![StreamItem::Barrier(1)]],
        };
        assert!(w.validate().is_err());
    }

    #[test]
    fn validate_rejects_descending_barriers() {
        let w = Workload {
            name: "t".into(),
            streams: vec![vec![StreamItem::Barrier(1), StreamItem::Barrier(0)]],
        };
        assert!(w.validate().is_err());
    }

    #[test]
    fn empty_workload_is_valid() {
        assert!(Workload::default().validate().is_ok());
    }
}
