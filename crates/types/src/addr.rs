//! Addresses and node identities.
//!
//! The simulated machine is a CC-NUMA multiprocessor: physical memory is
//! distributed across the nodes and every cache block has a unique *home*
//! node that holds both the DRAM copy and the full-map directory entry for
//! it. Addresses are plain byte addresses; cache-block addresses strip the
//! offset bits.

/// A byte address in the simulated shared physical address space.
pub type Addr = u64;

/// Identity of a node. Each node hosts one processor (with its cache
/// hierarchy) *and* one memory module with its slice of the directory, so a
/// `NodeId` doubles as processor id ("pid" in the paper) and memory-module
/// id depending on context.
pub type NodeId = u8;

/// A cache-block ("line") address: the byte address shifted right by the
/// block-offset bits. Using the block address as the canonical key keeps
/// every coherence structure (caches, directories, switch directories)
/// agreeing on identity without re-deriving masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Builds a block address from a byte address given the block size.
    ///
    /// `block_bytes` must be a power of two (the geometry structs in
    /// [`crate::config`] enforce this at validation time).
    #[inline]
    pub fn from_byte(addr: Addr, block_bytes: u64) -> Self {
        debug_assert!(block_bytes.is_power_of_two());
        BlockAddr(addr >> block_bytes.trailing_zeros())
    }

    /// The first byte address covered by this block.
    #[inline]
    pub fn base_byte(self, block_bytes: u64) -> Addr {
        debug_assert!(block_bytes.is_power_of_two());
        self.0 << block_bytes.trailing_zeros()
    }

    /// Home node of this block under page-interleaved placement: consecutive
    /// pages rotate round-robin across the nodes. This is the placement the
    /// evaluation uses (RSIM's default round-robin page allocation).
    #[inline]
    pub fn home(self, block_bytes: u64, page_bytes: u64, nodes: usize) -> NodeId {
        debug_assert!(page_bytes >= block_bytes && page_bytes.is_power_of_two());
        let blocks_per_page = page_bytes / block_bytes;
        ((self.0 / blocks_per_page) % nodes as u64) as NodeId
    }
}

/// Geometry helper bundling the block/page parameters so call sites cannot
/// mix the block size used for address splitting with a different one used
/// for home mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    /// Cache block (line) size in bytes.
    pub block_bytes: u64,
    /// Page size in bytes; pages are interleaved round-robin across nodes.
    pub page_bytes: u64,
    /// Number of nodes in the machine.
    pub nodes: usize,
}

impl AddressMap {
    /// Creates a map, panicking on non-power-of-two or inconsistent sizes.
    pub fn new(block_bytes: u64, page_bytes: u64, nodes: usize) -> Self {
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        assert!(page_bytes.is_power_of_two(), "page size must be a power of two");
        assert!(page_bytes >= block_bytes, "page must be at least one block");
        assert!(nodes > 0, "need at least one node");
        AddressMap { block_bytes, page_bytes, nodes }
    }

    /// Block address of a byte address.
    #[inline]
    pub fn block(&self, addr: Addr) -> BlockAddr {
        BlockAddr::from_byte(addr, self.block_bytes)
    }

    /// Home node of a byte address.
    #[inline]
    pub fn home_of(&self, addr: Addr) -> NodeId {
        self.block(addr).home(self.block_bytes, self.page_bytes, self.nodes)
    }

    /// Home node of a block address.
    #[inline]
    pub fn home_of_block(&self, block: BlockAddr) -> NodeId {
        block.home(self.block_bytes, self.page_bytes, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_strips_offset_bits() {
        assert_eq!(BlockAddr::from_byte(0, 32), BlockAddr(0));
        assert_eq!(BlockAddr::from_byte(31, 32), BlockAddr(0));
        assert_eq!(BlockAddr::from_byte(32, 32), BlockAddr(1));
        assert_eq!(BlockAddr::from_byte(0x1000, 32), BlockAddr(0x80));
    }

    #[test]
    fn base_byte_round_trips() {
        for addr in [0u64, 31, 32, 4095, 4096, 123_456_789] {
            let b = BlockAddr::from_byte(addr, 32);
            let base = b.base_byte(32);
            assert!(base <= addr && addr < base + 32);
        }
    }

    #[test]
    fn home_is_page_interleaved() {
        let map = AddressMap::new(32, 4096, 16);
        // All blocks of page 0 live on node 0, page 1 on node 1, ...
        for off in (0..4096).step_by(32) {
            assert_eq!(map.home_of(off), 0);
            assert_eq!(map.home_of(4096 + off), 1);
            assert_eq!(map.home_of(15 * 4096 + off), 15);
            assert_eq!(map.home_of(16 * 4096 + off), 0);
        }
    }

    #[test]
    fn home_covers_all_nodes() {
        let map = AddressMap::new(32, 4096, 16);
        let mut seen = [false; 16];
        for page in 0..64u64 {
            seen[map.home_of(page * 4096) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_block() {
        AddressMap::new(48, 4096, 16);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_page_smaller_than_block() {
        AddressMap::new(64, 32, 16);
    }
}
