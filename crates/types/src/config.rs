//! Configuration structs and the paper's parameter presets.
//!
//! [`SystemConfig::paper_table2`] encodes the execution-driven simulation
//! parameters of the paper's Table 2; [`TraceSimConfig::paper_table3`]
//! encodes the trace-driven parameters of Table 3. Every struct validates
//! itself so misconfigured sweeps fail loudly instead of producing silently
//! wrong figures.

use crate::addr::AddressMap;
use crate::protocol::Protocol;

/// Largest supported machine: the full range a `NodeId` (`u8`) can
/// address. The hybrid `SharerSet` bitmap covers exactly this range, so no
/// valid configuration can ever wrap a directory bit vector.
pub const MAX_NODES: usize = 256;

/// Geometry and access time of one set-associative cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line (block) size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in cycles.
    pub access_cycles: u32,
}

impl CacheGeometry {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways as u64)
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Checks the geometry is internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() {
            return Err(format!("line size {} not a power of two", self.line_bytes));
        }
        if self.ways == 0 {
            return Err("associativity must be at least 1".into());
        }
        let set_bytes = self.line_bytes * self.ways as u64;
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(set_bytes) {
            return Err(format!(
                "cache size {} is not a multiple of way-set size {}",
                self.size_bytes, set_bytes
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(format!("set count {} not a power of two", self.sets()));
        }
        Ok(())
    }
}

/// Main-memory (DRAM) module parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// DRAM access time in cycles (Table 2: 40).
    pub access_cycles: u32,
    /// Interleaving factor: number of banks per module (Table 2: 4).
    pub interleave: u32,
    /// Directory controller occupancy per request, in cycles. The paper
    /// repeatedly cites "coherence controller occupancies" as a component of
    /// dirty-read latency; this models the controller's busy time.
    pub controller_occupancy: u32,
}

/// Processor-core parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessorConfig {
    /// Instructions issued per cycle (Table 2: 4-way issue).
    pub issue_width: u32,
    /// Write-buffer depth; under release consistency stores retire through
    /// this buffer without stalling the processor until it fills.
    pub write_buffer_entries: u32,
    /// Cycles a processor waits before re-issuing a NAK'd request.
    pub retry_backoff_cycles: u32,
}

/// Crossbar switch and link parameters (Table 2 / §4.1, after the SGI
/// SPIDER and Intel Cavallino numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Down-ports per switch (toward processors). An "8x8 crossbar" in the
    /// paper's bidirectional arrangement has 4 down-ports and 4 up-ports,
    /// i.e. `radix = 4`; a "4x4 crossbar" has `radix = 2`.
    pub radix: u32,
    /// Switch-core traversal delay in cycles (Table 2: 4).
    pub core_cycles: u32,
    /// Link cycles to transmit one flit (16-bit links, 8-byte flits:
    /// 4 cycles — Table 2).
    pub link_cycles_per_flit: u32,
    /// Flit length in bytes (Table 2: 8).
    pub flit_bytes: u64,
    /// Virtual channels per input link (Table 2: 2).
    pub virtual_channels: u32,
    /// Input FIFO capacity per virtual channel, in flits (Table 2: 4).
    pub buffer_flits: u32,
}

/// Switch-directory (DRESAR) parameters (Table 2 / §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchDirConfig {
    /// Total entries per switch directory (paper sweeps 256–2048).
    pub entries: u32,
    /// Associativity (paper: 4-way).
    pub ways: u32,
    /// Lookup ports on the SRAM array (paper: 2-way multiported).
    pub lookup_ports: u32,
    /// Pending-buffer entries for transient blocks in large (8x8) switches
    /// (paper §4.3: 8–16 entries).
    pub pending_buffer_entries: u32,
}

impl SwitchDirConfig {
    /// The paper's default operating point: 1024 entries, 4-way.
    pub fn paper_default() -> Self {
        SwitchDirConfig { entries: 1024, ways: 4, lookup_ports: 2, pending_buffer_entries: 16 }
    }

    /// The sweep the paper evaluates in Figures 8–11.
    pub fn paper_sweep() -> Vec<Self> {
        [256u32, 512, 1024, 2048]
            .into_iter()
            .map(|entries| SwitchDirConfig { entries, ..Self::paper_default() })
            .collect()
    }

    /// Checks the directory geometry.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 || self.entries == 0 {
            return Err("switch directory needs at least one entry and one way".into());
        }
        if !self.entries.is_multiple_of(self.ways) {
            return Err(format!("{} entries not divisible by {} ways", self.entries, self.ways));
        }
        if !(self.entries / self.ways).is_power_of_two() {
            return Err("switch-directory set count must be a power of two".into());
        }
        if self.lookup_ports == 0 {
            return Err("need at least one lookup port".into());
        }
        Ok(())
    }
}

/// Complete configuration of the execution-driven CC-NUMA simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of nodes (processor + memory module each). Table 2: 16.
    pub nodes: usize,
    /// Page size for round-robin home placement.
    pub page_bytes: u64,
    /// L1 cache geometry (Table 2: 16 KB, 32 B lines, 2-way, 1 cycle).
    pub l1: CacheGeometry,
    /// L2 cache geometry (Table 2: 128 KB, 32 B lines, 4-way, 8 cycles).
    pub l2: CacheGeometry,
    /// Memory/directory parameters.
    pub memory: MemoryConfig,
    /// Processor parameters.
    pub processor: ProcessorConfig,
    /// Switch/link parameters.
    pub switch: SwitchConfig,
    /// Switch-directory parameters; `None` simulates the base machine the
    /// paper normalizes against.
    pub switch_dir: Option<SwitchDirConfig>,
    /// Coherence protocol the caches and home directories run
    /// (default [`Protocol::Msi`], the paper's protocol).
    pub protocol: Protocol,
}

impl SystemConfig {
    /// The paper's Table 2 configuration: a 16-node machine with 8x8
    /// switches in 2 stages, the default 1K-entry switch directory enabled.
    pub fn paper_table2() -> Self {
        SystemConfig {
            nodes: 16,
            page_bytes: 4096,
            l1: CacheGeometry { size_bytes: 16 * 1024, line_bytes: 32, ways: 2, access_cycles: 1 },
            l2: CacheGeometry { size_bytes: 128 * 1024, line_bytes: 32, ways: 4, access_cycles: 8 },
            memory: MemoryConfig { access_cycles: 40, interleave: 4, controller_occupancy: 16 },
            processor: ProcessorConfig {
                issue_width: 4,
                write_buffer_entries: 8,
                retry_backoff_cycles: 32,
            },
            switch: SwitchConfig {
                radix: 4,
                core_cycles: 4,
                link_cycles_per_flit: 4,
                flit_bytes: 8,
                virtual_channels: 2,
                buffer_flits: 4,
            },
            switch_dir: Some(SwitchDirConfig::paper_default()),
            protocol: Protocol::Msi,
        }
    }

    /// The base machine (no directory caching) the paper normalizes to.
    pub fn paper_base() -> Self {
        SystemConfig { switch_dir: None, ..Self::paper_table2() }
    }

    /// A Table 2 machine scaled to a deeper butterfly: `nodes` processors
    /// behind `radix`-down-port switches (e.g. 64 nodes/radix 4 = 3 stages,
    /// 256 nodes/radix 4 = 4 stages). Everything else keeps the paper's
    /// parameters so scaling sweeps vary exactly one axis.
    pub fn scaled(nodes: usize, radix: u32) -> Self {
        let mut cfg = Self::paper_table2();
        cfg.nodes = nodes;
        cfg.switch.radix = radix;
        cfg
    }

    /// Address map implied by this configuration (L1 and L2 share one line
    /// size; `validate` enforces it).
    pub fn address_map(&self) -> AddressMap {
        AddressMap::new(self.l2.line_bytes, self.page_bytes, self.nodes)
    }

    /// Number of BMIN stages needed: `radix^stages >= nodes`.
    pub fn stages(&self) -> u32 {
        let mut stages = 0u32;
        let mut reach = 1usize;
        while reach < self.nodes {
            reach *= self.switch.radix as usize;
            stages += 1;
        }
        stages.max(1)
    }

    /// Validates the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 || self.nodes > MAX_NODES {
            return Err(format!("nodes = {} outside supported range 2..={MAX_NODES}", self.nodes));
        }
        if !self.nodes.is_power_of_two() {
            return Err("node count must be a power of two for the butterfly BMIN".into());
        }
        self.l1.validate().map_err(|e| format!("l1: {e}"))?;
        self.l2.validate().map_err(|e| format!("l2: {e}"))?;
        if self.l1.line_bytes != self.l2.line_bytes {
            return Err("L1 and L2 must share one line size (inclusive hierarchy)".into());
        }
        if self.l2.size_bytes < self.l1.size_bytes {
            return Err("L2 must be at least as large as L1 (inclusion)".into());
        }
        if self.switch.radix < 2 {
            return Err("switch radix must be at least 2".into());
        }
        let mut reach = 1usize;
        for _ in 0..self.stages() {
            reach *= self.switch.radix as usize;
        }
        if reach != self.nodes {
            return Err(format!(
                "nodes = {} is not a power of switch radix {}",
                self.nodes, self.switch.radix
            ));
        }
        if self.processor.issue_width == 0 {
            return Err("issue width must be at least 1".into());
        }
        if let Some(sd) = &self.switch_dir {
            sd.validate().map_err(|e| format!("switch_dir: {e}"))?;
        }
        Ok(())
    }
}

/// Constant latencies of the trace-driven simulator (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceLatencies {
    /// Cache access time.
    pub cache_access: u32,
    /// Read serviced by the local memory.
    pub local_memory: u32,
    /// Cache-to-cache transfer whose home node is local to the requester.
    pub ctoc_local_home: u32,
    /// Read serviced by a remote memory.
    pub remote_memory: u32,
    /// Cache-to-cache transfer whose home node is remote.
    pub ctoc_remote_home: u32,
    /// Cache-to-cache transfer served via a switch-directory hit.
    pub switch_dir_hit: u32,
}

/// Configuration of the trace-driven simulator (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSimConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node cache: Table 3 models a single 2 MB 4-way set-associative
    /// layer.
    pub cache: CacheGeometry,
    /// Page size for home placement.
    pub page_bytes: u64,
    /// The constant service latencies.
    pub latencies: TraceLatencies,
    /// Switch directory parameters; `None` = base system.
    pub switch_dir: Option<SwitchDirConfig>,
    /// Down-radix of the butterfly used to place switch directories (the
    /// trace simulator models topology only for switch-directory reach, not
    /// for contention).
    pub switch_radix: u32,
}

impl TraceSimConfig {
    /// The paper's Table 3 configuration.
    pub fn paper_table3() -> Self {
        TraceSimConfig {
            nodes: 16,
            cache: CacheGeometry {
                size_bytes: 2 * 1024 * 1024,
                line_bytes: 32,
                ways: 4,
                access_cycles: 8,
            },
            page_bytes: 4096,
            latencies: TraceLatencies {
                cache_access: 8,
                local_memory: 100,
                ctoc_local_home: 220,
                remote_memory: 260,
                ctoc_remote_home: 320,
                switch_dir_hit: 200,
            },
            switch_dir: Some(SwitchDirConfig::paper_default()),
            switch_radix: 4,
        }
    }

    /// The base (no switch directory) variant.
    pub fn paper_base() -> Self {
        TraceSimConfig { switch_dir: None, ..Self::paper_table3() }
    }

    /// Address map implied by this configuration.
    pub fn address_map(&self) -> AddressMap {
        AddressMap::new(self.cache.line_bytes, self.page_bytes, self.nodes)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 || self.nodes > MAX_NODES {
            return Err(format!("nodes = {} outside supported range 2..={MAX_NODES}", self.nodes));
        }
        if !self.nodes.is_power_of_two() {
            return Err("node count must be a power of two for the butterfly BMIN".into());
        }
        // The BMIN is constructed even for base (no switch directory)
        // machines, so the butterfly shape must always be realizable.
        let radix = self.switch_radix as usize;
        if radix < 2 {
            return Err("switch radix must be at least 2".into());
        }
        let mut reach = 1usize;
        while reach < self.nodes {
            reach *= radix;
        }
        if reach != self.nodes {
            return Err(format!("nodes = {} is not a power of switch radix {radix}", self.nodes));
        }
        self.cache.validate().map_err(|e| format!("cache: {e}"))?;
        if let Some(sd) = &self.switch_dir {
            sd.validate().map_err(|e| format!("switch_dir: {e}"))?;
        }
        let l = &self.latencies;
        if l.ctoc_local_home <= l.local_memory || l.ctoc_remote_home <= l.remote_memory {
            return Err("cache-to-cache latencies must exceed the corresponding clean-memory \
                 latencies (the 1.5-2x premium the paper attacks)"
                .into());
        }
        if l.switch_dir_hit >= l.ctoc_remote_home {
            return Err("a switch-directory hit must be faster than a remote-home CtoC".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_preset_is_valid() {
        let c = SystemConfig::paper_table2();
        c.validate().expect("Table 2 preset must validate");
        assert_eq!(c.nodes, 16);
        assert_eq!(c.stages(), 2, "16 nodes with radix-4 switches = 2 stages");
        assert_eq!(c.l1.sets(), 256);
        assert_eq!(c.l2.sets(), 1024);
    }

    #[test]
    fn table3_preset_is_valid() {
        let c = TraceSimConfig::paper_table3();
        c.validate().expect("Table 3 preset must validate");
        assert_eq!(c.cache.lines(), 65536);
        assert_eq!(c.latencies.ctoc_remote_home, 320);
    }

    #[test]
    fn base_presets_disable_switch_dir() {
        assert!(SystemConfig::paper_base().switch_dir.is_none());
        assert!(TraceSimConfig::paper_base().switch_dir.is_none());
    }

    #[test]
    fn sweep_covers_paper_sizes() {
        let sizes: Vec<u32> = SwitchDirConfig::paper_sweep().iter().map(|c| c.entries).collect();
        assert_eq!(sizes, vec![256, 512, 1024, 2048]);
        for c in SwitchDirConfig::paper_sweep() {
            c.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_bad_cache() {
        let mut c = SystemConfig::paper_table2();
        c.l1.line_bytes = 48;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::paper_table2();
        c.l1.line_bytes = 64; // differs from L2
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_power_of_two_nodes() {
        let mut c = SystemConfig::paper_table2();
        c.nodes = 12;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_slow_switch_dir() {
        let mut c = TraceSimConfig::paper_table3();
        c.latencies.switch_dir_hit = 400;
        assert!(c.validate().is_err());
    }

    #[test]
    fn stages_scale_with_radix() {
        let mut c = SystemConfig::paper_table2();
        c.switch.radix = 2; // "4x4" switches
        assert_eq!(c.stages(), 4);
        c.validate().unwrap();
    }

    #[test]
    fn scaled_presets_cover_deeper_butterflies() {
        for (nodes, radix, stages) in [(64, 4, 3), (128, 2, 7), (256, 4, 4), (256, 2, 8)] {
            let c = SystemConfig::scaled(nodes, radix);
            c.validate().unwrap_or_else(|e| panic!("scaled({nodes},{radix}): {e}"));
            assert_eq!(c.stages(), stages, "scaled({nodes},{radix})");
        }
    }

    #[test]
    fn validate_rejects_out_of_range_and_unbuildable_nodes() {
        let mut c = SystemConfig::paper_table2();
        c.nodes = 512;
        assert!(c.validate().unwrap_err().contains("2..=256"));
        let mut c = SystemConfig::scaled(128, 4); // 128 is not a power of 4
        c.nodes = 128;
        assert!(c.validate().unwrap_err().contains("not a power of switch radix"));
        let mut t = TraceSimConfig::paper_table3();
        t.nodes = 512;
        assert!(t.validate().unwrap_err().contains("2..=256"));
        t.nodes = 12;
        assert!(t.validate().is_err(), "unbuildable butterfly must be rejected up front");
        t.nodes = 256;
        t.validate().expect("256-node trace machine (4 stages of radix 4) must validate");
    }

    #[test]
    fn switch_dir_geometry_checks() {
        let mut sd = SwitchDirConfig::paper_default();
        sd.entries = 100; // 25 sets, not a power of two
        assert!(sd.validate().is_err());
        sd.entries = 0;
        assert!(sd.validate().is_err());
    }
}
