//! # dresar-types
//!
//! Shared vocabulary for the `dresar` reproduction of *"Using Switch
//! Directories to Speed Up Cache-to-Cache Transfers in CC-NUMA
//! Multiprocessors"* (Iyer, Bhuyan, Nanda; IPPS 2000).
//!
//! Every simulator crate in the workspace — the set-associative caches, the
//! full-map home directory, the BMIN interconnect, the DRESAR switch
//! directory, and the execution-/trace-driven system models — speaks in the
//! types defined here:
//!
//! * [`addr`] — byte addresses, cache-block addresses, node identities and
//!   the home-node mapping.
//! * [`msg`] — the coherence message vocabulary of the paper's Table 1 plus
//!   the ordinary data-carrying replies, and the [`msg::Message`] envelope
//!   that flows through the interconnect.
//! * [`sharers`] — a compact bit-vector sharer set (the "directory vector").
//! * [`config`] — configuration structs mirroring the paper's Table 2
//!   (execution-driven parameters) and Table 3 (trace-driven parameters),
//!   with validated presets.
//! * [`refstream`] — the memory-reference stream items produced by workload
//!   generators and consumed by the simulators.
//! * [`json`] — a dependency-free JSON tree, writer and parser with the
//!   [`ToJson`]/[`FromJson`] traits behind the `--json` telemetry surface.
//! * [`protocol`] — the coherence-protocol family identifier
//!   (MSI/MESI/MOESI + the directoryless baseline).
//! * [`rng`] — the small seeded deterministic RNG the workload generators
//!   and randomized tests draw from.
//! * [`runspec`] — the canonical run-request struct ([`RunSpec`]) and its
//!   stable FNV-1a content digest, the serving layer's cache key.

#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod fasthash;
pub mod json;
pub mod msg;
pub mod protocol;
pub mod refstream;
pub mod rng;
pub mod runspec;
pub mod sharers;

pub use addr::{Addr, BlockAddr, NodeId};
pub use config::{SystemConfig, TraceSimConfig, MAX_NODES};
pub use fasthash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use json::{FromJson, JsonError, JsonValue, ObjBuilder, ToJson, SCHEMA_VERSION};
pub use msg::{Message, MsgType};
pub use protocol::Protocol;
pub use refstream::{MemRef, RefKind, StreamItem, Workload};
pub use rng::SmallRng;
pub use runspec::RunSpec;
pub use sharers::SharerSet;

/// Simulation time, in cycles of the 200 MHz clock shared by the processor
/// core, the switch core and the link transmitters (paper §4.1 / Table 2).
pub type Cycle = u64;
