//! Coherence-protocol identifiers.
//!
//! The simulator grew up hardwired to the paper's 3-hop MSI-style directory
//! protocol. This module names the protocol *family* the workspace now
//! models — the identifier lives here (the bottom of the crate graph) so
//! configuration ([`crate::config::SystemConfig`]), request specs
//! ([`crate::RunSpec`]) and every simulator crate can agree on it; the
//! per-protocol line-state machine and invariant rules live in
//! `dresar-protocol`, which builds on top of the cache and fault crates.

use crate::json::{FromJson, JsonError, JsonValue, ToJson};

/// Which coherence protocol the home directories and caches run.
///
/// `Msi` is the paper's protocol and the default everywhere: a config or
/// spec that never mentions a protocol simulates exactly what it simulated
/// before the family existed (pinned digests and committed baselines stay
/// bit-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum Protocol {
    /// The paper's 3-hop MSI directory protocol (default).
    #[default]
    Msi,
    /// MESI: an unshared read fill is granted EXCLUSIVE, so the first
    /// write upgrades silently (no `WriteRequest` round-trip).
    Mesi,
    /// MOESI: MESI plus the OWNED state — an owner serving a read CtoC
    /// keeps the dirty block and supplies later readers itself instead of
    /// writing back through memory.
    Moesi,
    /// Directoryless shared LLC baseline (after the DLS proposal,
    /// arXiv:1206.4753): the home serves reads to dirty blocks straight
    /// from memory without forwarding a cache-to-cache transfer. A latency
    /// *lower bound* for the read path, not a fully coherent protocol —
    /// see DESIGN.md §15 for the tracking caveats.
    Dls,
}

impl Protocol {
    /// Every member of the family, in canonical order.
    pub const ALL: [Protocol; 4] = [Protocol::Msi, Protocol::Mesi, Protocol::Moesi, Protocol::Dls];

    /// Stable lowercase label (JSON value, run names, CLI).
    pub fn as_str(self) -> &'static str {
        match self {
            Protocol::Msi => "msi",
            Protocol::Mesi => "mesi",
            Protocol::Moesi => "moesi",
            Protocol::Dls => "dls",
        }
    }

    /// Parses a stable label back (case-sensitive, like every other
    /// enum-valued config string in the workspace).
    pub fn parse(s: &str) -> Option<Protocol> {
        match s {
            "msi" => Some(Protocol::Msi),
            "mesi" => Some(Protocol::Mesi),
            "moesi" => Some(Protocol::Moesi),
            "dls" => Some(Protocol::Dls),
            _ => None,
        }
    }

    /// Whether the home grants EXCLUSIVE on an unshared read fill (the
    /// MESI/MOESI E-state rule). Under this rule the home books the reader
    /// as the block's owner, because an E holder may upgrade to MODIFIED
    /// silently.
    pub fn exclusive_read_fill(self) -> bool {
        matches!(self, Protocol::Mesi | Protocol::Moesi)
    }

    /// Whether an owner serving a read intervention retains dirty
    /// ownership (MOESI's OWNED state) instead of downgrading to SHARED
    /// with a memory copyback.
    pub fn owner_retains_on_read(self) -> bool {
        self == Protocol::Moesi
    }

    /// Whether the home serves reads to dirty blocks straight from memory
    /// (the directoryless-shared-LLC baseline) instead of forwarding a
    /// cache-to-cache transfer.
    pub fn home_read_bypass(self) -> bool {
        self == Protocol::Dls
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl ToJson for Protocol {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.as_str().to_string())
    }
}

impl FromJson for Protocol {
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let s = v.as_str().ok_or_else(|| JsonError::new("protocol must be a string"))?;
        Protocol::parse(s).ok_or_else(|| {
            JsonError::new(format!("unknown protocol '{s}'; expected msi|mesi|moesi|dls"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::parse(p.as_str()), Some(p));
            assert_eq!(Protocol::from_json(&p.to_json()).unwrap(), p);
        }
        assert_eq!(Protocol::parse("MESI"), None, "labels are case-sensitive");
        assert!(Protocol::from_json(&JsonValue::parse("7").unwrap()).is_err());
    }

    #[test]
    fn default_is_the_papers_protocol() {
        assert_eq!(Protocol::default(), Protocol::Msi);
        assert!(!Protocol::Msi.exclusive_read_fill());
        assert!(!Protocol::Msi.owner_retains_on_read());
        assert!(!Protocol::Msi.home_read_bypass());
    }

    #[test]
    fn family_predicates_partition_as_documented() {
        assert!(Protocol::Mesi.exclusive_read_fill());
        assert!(Protocol::Moesi.exclusive_read_fill());
        assert!(!Protocol::Dls.exclusive_read_fill());
        assert!(Protocol::Moesi.owner_retains_on_read());
        assert!(!Protocol::Mesi.owner_retains_on_read());
        assert!(Protocol::Dls.home_read_bypass());
        assert!(!Protocol::Moesi.home_read_bypass());
    }
}
