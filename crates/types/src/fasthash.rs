//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! `std`'s default `RandomState` sips a per-instance random key, which (a)
//! costs ~1.5ns per small-key lookup on the MSHR/directory/flit-route maps
//! the inner loops hit every event, and (b) makes map iteration order vary
//! between *processes* even for identical inputs. The simulator never lets
//! iteration order reach an output without sorting, but a deterministic
//! hasher turns that convention into a property: two runs of the same build
//! walk every map identically.
//!
//! The mix is the Firefox/rustc "Fx" multiply-rotate: not DoS-resistant,
//! which is fine — every key hashed here is a simulator-internal integer
//! (block addresses, message ids), never attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over native words (the rustc `FxHasher` scheme).
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" + "" and "a" + "b" differ.
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (zero-sized, `Default`).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by the deterministic [`FastHasher`]. Drop-in for hot
/// simulator maps with small integer-like keys.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` over the deterministic [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_hash_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_keys_differ() {
        let hash = |n: u64| {
            let mut h = FastHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_ne!(hash(0), hash(1));
        assert_ne!(hash(1), hash(1 << 32));
    }

    #[test]
    fn byte_streams_respect_boundaries() {
        let hash = |b: &[u8]| {
            let mut h = FastHasher::default();
            h.write(b);
            h.finish()
        };
        assert_eq!(hash(b"abcdefgh"), hash(b"abcdefgh"));
        assert_ne!(hash(b"abcdefgh"), hash(b"abcdefg"));
        assert_ne!(hash(b"a"), hash(b""));
    }

    #[test]
    fn fast_map_behaves_like_hashmap() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 3) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1500));
        m.remove(&500);
        assert_eq!(m.get(&500), None);
    }
}
