//! Canonical simulation-run request: [`RunSpec`] and its content digest.
//!
//! The serving layer (`dresar-server`) keys its result cache and its
//! in-flight request coalescing on [`RunSpec::digest`], so the digest has
//! two hard requirements:
//!
//! 1. **Canonical** — two requests that describe the same simulation must
//!    digest identically regardless of how they were spelled (JSON field
//!    order, omitted-vs-explicit defaults). The digest is therefore
//!    computed from the *parsed struct*, never from request bytes.
//! 2. **Stable** — the digest is a cache key that outlives a process (and,
//!    with a persisted cache, a build). Accidentally changing it — by
//!    reordering fields, renaming one, or swapping the hash function —
//!    silently splits the cache in two. A pinned-value test
//!    (`runspec_digest_stability`) turns that accident into a tier-1
//!    failure.
//!
//! The hash is FNV-1a over a length-delimited field encoding, the same
//! digest idiom the coherence audit uses for its machine-state digest
//! (`dresar::system::coherence`). Determinism of the *simulator* is what
//! makes the digest sound as a cache key: equal specs produce byte-identical
//! reports, so a cache hit is indistinguishable from a re-run.

use crate::json::{FromJson, JsonError, JsonValue, ToJson};
use crate::protocol::Protocol;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Domain-separation prefix folded into every digest. Bump the version
/// suffix whenever the field encoding changes shape so old and new digests
/// can never collide.
const DIGEST_DOMAIN: &[u8] = b"dresar.runspec.v1";

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// One simulation run request, as accepted by the serving layer.
///
/// Every field has a server-side default (see [`Default`]), so a request
/// only needs to name what it changes. `workload` is the paper's figure
/// label (`"FFT"`, `"TC"`, `"SOR"`, `"FWA"`, `"GAUSS"` run execution-driven;
/// `"TPC-C"`, `"TPC-D"` run trace-driven).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Workload label, matching the paper's figures.
    pub workload: String,
    /// Input-size preset: `tiny`, `reduced` or `paper`.
    pub scale: String,
    /// Node count (topology). Must be a power of the switch radix for the
    /// butterfly BMIN; the paper's machine is 16.
    pub nodes: u32,
    /// Switch-directory entries; `None` simulates the base machine the
    /// paper normalizes against. In JSON, an *omitted* field means the
    /// paper-default 1024 while an explicit `null` means the base machine.
    pub sd_entries: Option<u32>,
    /// Seed for the synthetic commercial trace generators (ignored by the
    /// deterministic scientific kernels but always part of the digest).
    pub seed: u64,
    /// Optional fault-plan spec (`key=value,...` — see
    /// `dresar_faults::FaultPlan::parse`). Execution-driven workloads only.
    pub faults: Option<String>,
    /// Optional per-request compute deadline in milliseconds (the server
    /// caps it). A *scheduling* directive, not part of the simulation:
    /// deliberately excluded from [`RunSpec::digest`] and from the JSON
    /// echo, so the same run requested with different deadlines shares one
    /// cache entry and one byte-identical body.
    pub deadline_ms: Option<u64>,
    /// Coherence protocol. `None` means the paper's MSI protocol; parsing
    /// canonicalizes an explicit `"protocol":"msi"` to `None` so both
    /// spellings share one digest, one cache entry and one echo body —
    /// and so every pre-protocol-era spec keeps its v1 digest.
    pub protocol: Option<Protocol>,
}

impl Default for RunSpec {
    /// The serving default: FFT at tiny scale on the paper's 16-node
    /// machine with the default 1K-entry switch directory, the suite's
    /// commercial seed, no faults.
    fn default() -> Self {
        RunSpec {
            workload: "FFT".to_string(),
            scale: "tiny".to_string(),
            nodes: 16,
            sd_entries: Some(1024),
            seed: 0xD2E5_A25E,
            faults: None,
            deadline_ms: None,
            protocol: None,
        }
    }
}

impl RunSpec {
    /// Canonical FNV-1a content digest (the serving cache key).
    ///
    /// Fields are folded in declared order, each as
    /// `name \0 value-encoding`: strings as their UTF-8 bytes followed by a
    /// `\0` terminator, integers as 8 little-endian bytes, options as a
    /// presence byte (`0`/`1`) followed by the value encoding when present.
    /// The encoding is length-delimited everywhere a field is
    /// variable-sized, so no two distinct specs share a byte stream.
    ///
    /// `deadline_ms` is *not* folded in: it changes when a request is
    /// willing to wait, never what the simulation computes, and folding it
    /// in would split the cache per deadline (and break body identity
    /// across deadline spellings).
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, DIGEST_DOMAIN);
        h = fold_str(h, b"workload", &self.workload);
        h = fold_str(h, b"scale", &self.scale);
        h = fold_u64(h, b"nodes", u64::from(self.nodes));
        h = fold_opt_u64(h, b"sd_entries", self.sd_entries.map(u64::from));
        h = fold_u64(h, b"seed", self.seed);
        h = match &self.faults {
            None => fnv1a(fnv1a(h, b"faults\0"), &[0]),
            Some(s) => fold_str(fnv1a(fnv1a(h, b"faults\0"), &[1]), b"", s),
        };
        // MSI (absent or explicit) folds nothing at all, so every
        // pre-protocol-era spec keeps its exact v1 byte stream and digest;
        // only the newer protocols extend the stream. The `parse` guarantee
        // that no protocol label is empty keeps the extension unambiguous.
        if let Some(p) = self.protocol {
            if p != Protocol::Msi {
                h = fold_str(h, b"protocol", p.as_str());
            }
        }
        h
    }

    /// The digest in the fixed-width hex form used in served documents.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }
}

fn fold_str(h: u64, name: &[u8], value: &str) -> u64 {
    let h = fnv1a(fnv1a(h, name), &[0]);
    fnv1a(fnv1a(h, value.as_bytes()), &[0])
}

fn fold_u64(h: u64, name: &[u8], value: u64) -> u64 {
    let h = fnv1a(fnv1a(h, name), &[0]);
    fnv1a(h, &value.to_le_bytes())
}

fn fold_opt_u64(h: u64, name: &[u8], value: Option<u64>) -> u64 {
    let h = fnv1a(fnv1a(h, name), &[0]);
    match value {
        None => fnv1a(h, &[0]),
        Some(v) => fnv1a(fnv1a(h, &[1]), &v.to_le_bytes()),
    }
}

impl ToJson for RunSpec {
    /// The canonical spec echo. `deadline_ms` is omitted on purpose: served
    /// bodies must be byte-identical for equal digests, and the deadline is
    /// not part of the digest.
    fn to_json(&self) -> JsonValue {
        let b = JsonValue::obj()
            .field("workload", self.workload.as_str())
            .field("scale", self.scale.as_str())
            .field("nodes", self.nodes)
            .field("sd_entries", self.sd_entries.map(u64::from))
            .field("seed", self.seed)
            .field("faults", self.faults.clone());
        // MSI is never echoed (it is canonicalized to `None` on parse), so
        // pre-protocol-era bodies stay byte-identical.
        match self.protocol {
            Some(p) if p != Protocol::Msi => b.field("protocol", p.as_str()).build(),
            _ => b.build(),
        }
    }
}

impl FromJson for RunSpec {
    /// Strict reconstruction: unknown fields are rejected (error message
    /// leads with ``unknown field `name` ``, which the server maps to a
    /// distinct machine-readable error code), wrong-typed fields are
    /// rejected, `workload` is required, everything else defaults.
    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let JsonValue::Obj(fields) = v else {
            return Err(JsonError::new("run spec must be a JSON object"));
        };
        let mut spec = RunSpec::default();
        let mut saw_workload = false;
        for (key, val) in fields {
            match key.as_str() {
                "workload" => {
                    spec.workload = want_str(val, key)?;
                    saw_workload = true;
                }
                "scale" => spec.scale = want_str(val, key)?,
                "nodes" => spec.nodes = want_u32(val, key)?,
                "sd_entries" => {
                    spec.sd_entries = match val {
                        JsonValue::Null => None,
                        other => Some(want_u32(other, key)?),
                    }
                }
                "seed" => {
                    spec.seed = val
                        .as_u64()
                        .ok_or_else(|| JsonError::new("field `seed` must be an integer"))?
                }
                "faults" => {
                    spec.faults = match val {
                        JsonValue::Null => None,
                        JsonValue::Str(s) => Some(s.clone()),
                        _ => return Err(JsonError::new("field `faults` must be a string or null")),
                    }
                }
                "deadline_ms" => {
                    spec.deadline_ms = match val {
                        JsonValue::Null => None,
                        other => Some(other.as_u64().ok_or_else(|| {
                            JsonError::new("field `deadline_ms` must be an integer or null")
                        })?),
                    }
                }
                "protocol" => {
                    spec.protocol = match val {
                        JsonValue::Null => None,
                        other => {
                            let s = other.as_str().ok_or_else(|| {
                                JsonError::new("field `protocol` must be a string or null")
                            })?;
                            let p = Protocol::parse(s).ok_or_else(|| {
                                JsonError::new(format!(
                                    "field `protocol` has unknown value `{s}` \
                                     (expected msi|mesi|moesi|dls)"
                                ))
                            })?;
                            // Canonicalize: explicit MSI is the default.
                            (p != Protocol::Msi).then_some(p)
                        }
                    }
                }
                other => return Err(JsonError::new(format!("unknown field `{other}`"))),
            }
        }
        if !saw_workload {
            return Err(JsonError::new("missing field `workload`"));
        }
        Ok(spec)
    }
}

fn want_str(v: &JsonValue, key: &str) -> Result<String, JsonError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| JsonError::new(format!("field `{key}` must be a string")))
}

fn want_u32(v: &JsonValue, key: &str) -> Result<u32, JsonError> {
    v.as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| JsonError::new(format!("field `{key}` must be a 32-bit integer")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_canonical_over_json_spelling() {
        // Same effective spec, three spellings: field order swapped,
        // defaults omitted, defaults explicit.
        let a = RunSpec::from_json(&JsonValue::parse(r#"{"workload":"FFT"}"#).unwrap()).unwrap();
        let b = RunSpec::from_json(
            &JsonValue::parse(r#"{"scale":"tiny","workload":"FFT","nodes":16}"#).unwrap(),
        )
        .unwrap();
        // 3538264670 == 0xD2E5_A25E, the default seed spelled explicitly.
        let c = RunSpec::from_json(
            &JsonValue::parse(r#"{"workload":"FFT","sd_entries":1024,"seed":3538264670}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn digest_separates_every_field() {
        let base = RunSpec::default();
        let variants = [
            RunSpec { workload: "TC".into(), ..base.clone() },
            RunSpec { scale: "reduced".into(), ..base.clone() },
            RunSpec { nodes: 4, ..base.clone() },
            RunSpec { sd_entries: None, ..base.clone() },
            RunSpec { sd_entries: Some(256), ..base.clone() },
            RunSpec { seed: 1, ..base.clone() },
            RunSpec { faults: Some("drop_ppm=100".into()), ..base.clone() },
            RunSpec { faults: Some(String::new()), ..base.clone() },
            RunSpec { protocol: Some(Protocol::Mesi), ..base.clone() },
            RunSpec { protocol: Some(Protocol::Moesi), ..base.clone() },
            RunSpec { protocol: Some(Protocol::Dls), ..base.clone() },
        ];
        let mut digests: Vec<u64> = variants.iter().map(RunSpec::digest).collect();
        digests.push(base.digest());
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), variants.len() + 1, "all variants must digest distinctly");
    }

    #[test]
    fn json_null_sd_means_base_machine_while_omission_means_default() {
        let omitted =
            RunSpec::from_json(&JsonValue::parse(r#"{"workload":"SOR"}"#).unwrap()).unwrap();
        assert_eq!(omitted.sd_entries, Some(1024));
        let explicit = RunSpec::from_json(
            &JsonValue::parse(r#"{"workload":"SOR","sd_entries":null}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(explicit.sd_entries, None);
        assert_ne!(omitted.digest(), explicit.digest());
    }

    #[test]
    fn from_json_rejects_unknown_and_wrong_typed_fields() {
        let unknown =
            RunSpec::from_json(&JsonValue::parse(r#"{"workload":"FFT","entires":512}"#).unwrap())
                .unwrap_err();
        assert!(unknown.msg.starts_with("unknown field `entires`"), "{unknown}");
        let wrong =
            RunSpec::from_json(&JsonValue::parse(r#"{"workload":7}"#).unwrap()).unwrap_err();
        assert!(wrong.msg.contains("`workload`"), "{wrong}");
        let missing =
            RunSpec::from_json(&JsonValue::parse(r#"{"scale":"tiny"}"#).unwrap()).unwrap_err();
        assert!(missing.msg.contains("missing field `workload`"), "{missing}");
        assert!(RunSpec::from_json(&JsonValue::parse("[1,2]").unwrap()).is_err());
    }

    #[test]
    fn json_roundtrip_preserves_digest() {
        let spec = RunSpec {
            workload: "TPC-C".into(),
            scale: "reduced".into(),
            nodes: 16,
            sd_entries: None,
            seed: 42,
            faults: Some("drop_ppm=2000,seed=7".into()),
            deadline_ms: None,
            protocol: Some(Protocol::Moesi),
        };
        let back = RunSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.digest(), spec.digest());
    }

    #[test]
    fn deadline_is_accepted_but_never_in_digest_or_echo() {
        let with = RunSpec::from_json(
            &JsonValue::parse(r#"{"workload":"FFT","deadline_ms":250}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(with.deadline_ms, Some(250));
        let without =
            RunSpec::from_json(&JsonValue::parse(r#"{"workload":"FFT"}"#).unwrap()).unwrap();
        // Scheduling directive, not simulation input: one cache entry, one
        // body, regardless of deadline spelling.
        assert_eq!(with.digest(), without.digest());
        assert_eq!(with.to_json().dump(), without.to_json().dump());
        assert!(!with.to_json().dump().contains("deadline"));
        let null = RunSpec::from_json(
            &JsonValue::parse(r#"{"workload":"FFT","deadline_ms":null}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(null.deadline_ms, None);
        assert!(RunSpec::from_json(
            &JsonValue::parse(r#"{"workload":"FFT","deadline_ms":"soon"}"#).unwrap()
        )
        .is_err());
    }

    /// The protocol field must be *scheduling-compatible* the way
    /// `deadline_ms` is body-compatible: `"protocol":"msi"`, explicit
    /// `null` and an absent field are one spec — one digest, one echo —
    /// while the newer protocols digest distinctly. This is what keeps
    /// every pre-protocol-era digest (and the committed BENCH baselines
    /// keyed on them) valid.
    #[test]
    fn protocol_msi_and_absent_are_one_spec() {
        let absent =
            RunSpec::from_json(&JsonValue::parse(r#"{"workload":"FFT"}"#).unwrap()).unwrap();
        let msi = RunSpec::from_json(
            &JsonValue::parse(r#"{"workload":"FFT","protocol":"msi"}"#).unwrap(),
        )
        .unwrap();
        let null =
            RunSpec::from_json(&JsonValue::parse(r#"{"workload":"FFT","protocol":null}"#).unwrap())
                .unwrap();
        assert_eq!(msi.protocol, None, "explicit msi must canonicalize to None");
        assert_eq!(null.protocol, None);
        assert_eq!(absent.digest(), msi.digest());
        assert_eq!(absent.digest(), null.digest());
        assert_eq!(absent.to_json().dump(), msi.to_json().dump());
        assert!(!msi.to_json().dump().contains("protocol"));
        // Constructing Some(Msi) directly (bypassing parse) must still
        // digest and echo as the canonical spec.
        let direct = RunSpec { protocol: Some(Protocol::Msi), ..RunSpec::default() };
        assert_eq!(direct.digest(), RunSpec::default().digest());
        assert_eq!(direct.to_json().dump(), RunSpec::default().to_json().dump());

        let mesi = RunSpec::from_json(
            &JsonValue::parse(r#"{"workload":"FFT","protocol":"mesi"}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(mesi.protocol, Some(Protocol::Mesi));
        assert_ne!(mesi.digest(), absent.digest());
        assert!(mesi.to_json().dump().contains(r#""protocol":"mesi""#));
        let err = RunSpec::from_json(
            &JsonValue::parse(r#"{"workload":"FFT","protocol":"mosi"}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.msg.contains("`protocol`"), "{err}");
        assert!(RunSpec::from_json(
            &JsonValue::parse(r#"{"workload":"FFT","protocol":3}"#).unwrap()
        )
        .is_err());
    }

    /// Pinned digests of the standard-run configurations. These values are
    /// cache keys: if this test fails, the canonical encoding changed, and
    /// every externally persisted digest (cached result, telemetry join
    /// key) silently stops matching. Bump the [`DIGEST_DOMAIN`] version
    /// when changing the encoding on purpose, and re-pin.
    #[test]
    fn digests_of_standard_runs_are_pinned() {
        let pinned = [
            ("FFT", "da9fa70f0d0b9a03"),
            ("TC", "b708ea78134e16b4"),
            ("SOR", "910d88788264367f"),
            ("FWA", "add84ca142f4771d"),
            ("GAUSS", "74a3f3042b6a3e8c"),
            ("TPC-C", "87da317e4225e5e8"),
            ("TPC-D", "cf2ab89064e282eb"),
        ];
        for (workload, hex) in pinned {
            let spec = RunSpec { workload: workload.into(), ..RunSpec::default() };
            assert_eq!(spec.digest_hex(), hex, "digest drift for default {workload} run");
        }
        let no_sd = RunSpec { sd_entries: None, ..RunSpec::default() };
        assert_eq!(no_sd.digest_hex(), "8fb17a3bac40e8f6", "digest drift for SD-less run");
        let big = RunSpec { nodes: 64, sd_entries: Some(4096), seed: 42, ..RunSpec::default() };
        assert_eq!(big.digest_hex(), "bce9d5e004ea73f6", "digest drift for 64-node run");
    }
}
