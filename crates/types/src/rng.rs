//! Small deterministic pseudo-random number generator.
//!
//! The workload generators and the randomized protocol tests need a seeded,
//! reproducible stream of numbers — nothing more. This is a counter-based
//! splitmix64 generator: tiny state, full 64-bit period per seed, and
//! identical output on every platform, which is what the determinism
//! guarantees of the simulator require. The API mirrors the subset of
//! `rand::rngs::SmallRng` the workspace uses (`seed_from_u64`, `gen`,
//! `gen_range`, `gen_bool`) so call sites read idiomatically.

use std::ops::Range;

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// A seeded, deterministic, non-cryptographic RNG.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed. Equal seeds give equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix the seed once so that related seeds (0, 1, 2, ...) do not
        // produce correlated first outputs.
        let mut rng = SmallRng { state: seed };
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit output (splitmix64 finalizer over a Weyl sequence).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample of type `T` (`f64` in `[0, 1)`, or a full-range
    /// integer).
    pub fn gen<T: RandValue>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform integer in `[range.start, range.end)`. Panics on an empty
    /// range, like `rand`.
    pub fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "gen_range called with empty range");
        let span = hi - lo;
        // Multiply-shift keeps the bias below 2^-64, far under anything a
        // simulation-scale sample count can see.
        let v = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + v)
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Types [`SmallRng::gen`] can produce.
pub trait RandValue {
    /// Draws one value from the generator.
    fn from_rng(rng: &mut SmallRng) -> Self;
}

impl RandValue for f64 {
    fn from_rng(rng: &mut SmallRng) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandValue for u64 {
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u64()
    }
}

impl RandValue for u32 {
    fn from_rng(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Integer types usable with [`SmallRng::gen_range`].
pub trait UniformInt: Copy {
    /// Widens to `u64` (all workspace ranges are non-negative).
    fn to_u64(self) -> u64;
    /// Narrows back; the sample is always inside the caller's range.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_within_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }
}
