//! Minimal JSON document model, writer and parser.
//!
//! The bench binaries emit machine-readable run telemetry (`--json`) and the
//! observability layer round-trips full [`ExecutionReport`]s, so the
//! workspace needs a JSON layer that works in a hermetic, offline build.
//! This module provides one: a [`JsonValue`] tree, a deterministic compact
//! writer (object keys keep insertion order, integers print without a
//! fractional part), a recursive-descent parser for round-tripping, and the
//! [`ToJson`]/[`FromJson`] conversion traits the stats and report types
//! implement.
//!
//! Determinism matters here: two identical simulator runs must serialize to
//! byte-identical output, so objects are ordered vectors (never hash maps)
//! and float formatting is the shortest round-trip form Rust's `{}` gives.

use std::collections::BTreeMap;
use std::fmt;

/// Version stamp carried by every machine-readable JSON document the
/// workspace emits (`--json` modes of the bench binaries, `BENCH_*.json`).
/// Bump it whenever the shape of any emitted document changes so downstream
/// tooling can detect incompatible formats instead of mis-parsing them.
///
/// History: 1 = PR 1 (probe/ablations/fig* documents, unversioned);
/// 2 = PR 2 (adds `schema_version`, component metrics, percentiles, BENCH
/// telemetry).
pub const SCHEMA_VERSION: u32 = 2;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for object nodes.
    pub fn obj() -> ObjBuilder {
        ObjBuilder(Vec::new())
    }

    /// Looks a key up in an object node.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The node as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The node as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The node as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The node as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace). Deterministic: equal trees
    /// produce equal bytes.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(*n, out),
            JsonValue::Str(s) => write_str(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing characters", p.pos));
        }
        Ok(v)
    }
}

fn write_num(n: f64, out: &mut String) {
    use fmt::Write;
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder for object nodes with a fluent field API.
#[derive(Debug)]
pub struct ObjBuilder(Vec<(String, JsonValue)>);

impl ObjBuilder {
    /// Adds a field.
    pub fn field(mut self, key: &str, value: impl ToJson) -> Self {
        self.0.push((key.to_string(), value.to_json()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> JsonValue {
        JsonValue::Obj(self.0)
    }
}

/// Conversion into a [`JsonValue`].
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> JsonValue;
}

/// Conversion from a [`JsonValue`].
pub trait FromJson: Sized {
    /// Reconstructs the value; fails on shape mismatches.
    fn from_json(v: &JsonValue) -> Result<Self, JsonError>;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Num(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Num(*self as f64)
            }
        }
    )*};
}

impl_tojson_int!(u8, u16, u32, u64, usize, i32, i64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<u64, V> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(self.iter().map(|(k, v)| (k.to_string(), v.to_json())).collect())
    }
}

/// Error from parsing or [`FromJson`] reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input, when parsing.
    pub pos: Option<usize>,
}

impl JsonError {
    /// A shape/reconstruction error with no input position.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into(), pos: None }
    }

    fn at(msg: impl Into<String>, pos: usize) -> Self {
        JsonError { msg: msg.into(), pos: Some(pos) }
    }

    /// Helper: fetch a required numeric field from an object node.
    pub fn want_u64(v: &JsonValue, key: &str) -> Result<u64, JsonError> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| JsonError::new(format!("missing or non-integer field `{key}`")))
    }

    /// Helper: fetch a required float field from an object node.
    pub fn want_f64(v: &JsonValue, key: &str) -> Result<f64, JsonError> {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| JsonError::new(format!("missing or non-numeric field `{key}`")))
    }

    /// Helper: fetch a required string field from an object node.
    pub fn want_str(v: &JsonValue, key: &str) -> Result<String, JsonError> {
        v.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| JsonError::new(format!("missing or non-string field `{key}`")))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} at byte {}", self.msg, p),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_word(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_word("null", JsonValue::Null),
            Some(b't') => self.eat_word("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_word("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(JsonError::at("expected a JSON value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError::at("bad \\u escape", self.pos))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::at("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so it
                    // is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| JsonError::at("bad number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.dump(), text);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = JsonValue::obj()
            .field("name", "fft")
            .field("cycles", 1234u64)
            .field("ratio", 0.25)
            .field("tags", vec!["a".to_string(), "b\"c".to_string()])
            .build();
        let text = v.dump();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.dump(), text);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(JsonValue::Num(42.0).dump(), "42");
        assert_eq!(JsonValue::Num(0.5).dump(), "0.5");
    }

    #[test]
    fn object_lookup_helpers() {
        let v = JsonValue::parse("{\"a\":1,\"b\":\"x\",\"c\":[1,2]}").unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(JsonValue::as_arr).unwrap().len(), 2);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = JsonValue::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_arr).unwrap().len(), 2);
    }
}
