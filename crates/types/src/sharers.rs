//! Compact sharer sets ("directory bit vectors").
//!
//! The full-map directory keeps one bit per node for every memory block
//! (paper §3.2); the switch directory entries likewise carry "a bit vector
//! for marking subsequent sharers" (§4.2). Machines up to 64 nodes — the
//! overwhelmingly common case — stay on an inline `u64` fast path; larger
//! machines (up to the 256 ids a [`NodeId`] can express) transparently
//! promote to a boxed 4-word bitmap. Because the set covers the full
//! `NodeId` range, an id can never silently wrap a mask bit: out-of-range
//! ids (relative to a machine's configured node count) are a *machine*
//! bounds violation and are rejected with structured errors at the
//! directory/system layer, never here.
//!
//! Representation invariant: a set whose members all fit in word 0 is
//! always held inline (`Small`); `Big` demotes eagerly whenever its upper
//! words drain to zero. This keeps the derived `PartialEq`/`Eq`/`Hash`
//! canonical — equal sets always share one representation.

use crate::addr::NodeId;

/// Words in the heap representation: 4 × 64 bits covers every `NodeId`.
const WORDS: usize = 4;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Members all `< 64`: one inline word, no allocation.
    Small(u64),
    /// At least one member `>= 64`: boxed fixed-size bitmap.
    Big(Box<[u64; WORDS]>),
}

/// A set of node ids represented as a hybrid small/heap bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SharerSet(Repr);

impl Default for SharerSet {
    fn default() -> Self {
        SharerSet::EMPTY
    }
}

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet(Repr::Small(0));

    /// Creates a set containing exactly one node.
    #[inline]
    pub fn singleton(node: NodeId) -> Self {
        let mut s = SharerSet::EMPTY;
        s.insert(node);
        s
    }

    /// Creates a set from an iterator of node ids.
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator below
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = SharerSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }

    #[inline]
    fn word_bit(node: NodeId) -> (usize, u64) {
        ((node >> 6) as usize, 1u64 << (node & 63))
    }

    /// Demotes `Big` back to `Small` when the upper words are all zero,
    /// restoring the canonical-representation invariant after removals.
    #[inline]
    fn normalize(&mut self) {
        if let Repr::Big(words) = &self.0 {
            if words[1..].iter().all(|&w| w == 0) {
                self.0 = Repr::Small(words[0]);
            }
        }
    }

    /// Inserts a node; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, bit) = Self::word_bit(node);
        match &mut self.0 {
            Repr::Small(word) => {
                if w == 0 {
                    let added = *word & bit == 0;
                    *word |= bit;
                    added
                } else {
                    let mut words = Box::new([0u64; WORDS]);
                    words[0] = *word;
                    words[w] |= bit;
                    self.0 = Repr::Big(words);
                    true
                }
            }
            Repr::Big(words) => {
                let added = words[w] & bit == 0;
                words[w] |= bit;
                added
            }
        }
    }

    /// Removes a node; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (w, bit) = Self::word_bit(node);
        let present = match &mut self.0 {
            Repr::Small(word) => {
                if w != 0 {
                    return false;
                }
                let present = *word & bit != 0;
                *word &= !bit;
                return present;
            }
            Repr::Big(words) => {
                let present = words[w] & bit != 0;
                words[w] &= !bit;
                present
            }
        };
        self.normalize();
        present
    }

    /// Whether the node is in the set.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let (w, bit) = Self::word_bit(node);
        match &self.0 {
            Repr::Small(word) => w == 0 && *word & bit != 0,
            Repr::Big(words) => words[w] & bit != 0,
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match &self.0 {
            Repr::Small(word) => *word == 0,
            // Canonical: Big always has a nonzero upper word.
            Repr::Big(_) => false,
        }
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Small(word) => word.count_ones() as usize,
            Repr::Big(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// The set's bits as a fixed word array (word `i` holds ids
    /// `64*i..64*i+63`). Used for canonical digests and compact logging.
    #[inline]
    pub fn words(&self) -> [u64; WORDS] {
        match &self.0 {
            Repr::Small(word) => {
                let mut ws = [0u64; WORDS];
                ws[0] = *word;
                ws
            }
            Repr::Big(words) => **words,
        }
    }

    /// Union with another set.
    #[inline]
    pub fn union(self, other: SharerSet) -> SharerSet {
        match (&self.0, &other.0) {
            (Repr::Small(a), Repr::Small(b)) => SharerSet(Repr::Small(a | b)),
            _ => {
                let (a, b) = (self.words(), other.words());
                let mut words = Box::new([0u64; WORDS]);
                for i in 0..WORDS {
                    words[i] = a[i] | b[i];
                }
                let mut s = SharerSet(Repr::Big(words));
                s.normalize();
                s
            }
        }
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(self, other: SharerSet) -> SharerSet {
        match (&self.0, &other.0) {
            (Repr::Small(a), Repr::Small(b)) => SharerSet(Repr::Small(a & !b)),
            _ => {
                let (a, b) = (self.words(), other.words());
                let mut words = Box::new([0u64; WORDS]);
                for i in 0..WORDS {
                    words[i] = a[i] & !b[i];
                }
                let mut s = SharerSet(Repr::Big(words));
                s.normalize();
                s
            }
        }
    }

    /// If the set holds exactly one node, returns it.
    #[inline]
    pub fn sole_member(&self) -> Option<NodeId> {
        match &self.0 {
            Repr::Small(word) => {
                if word.count_ones() == 1 {
                    Some(word.trailing_zeros() as NodeId)
                } else {
                    None
                }
            }
            Repr::Big(_) => {
                if self.len() == 1 {
                    self.iter().next()
                } else {
                    None
                }
            }
        }
    }

    /// Iterates the members in ascending id order (identical order for
    /// both representations).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        let words = self.words();
        let mut w = 0usize;
        let mut bits = words[0];
        std::iter::from_fn(move || loop {
            if bits != 0 {
                let n = (w as u32 * 64 + bits.trailing_zeros()) as NodeId;
                bits &= bits - 1;
                return Some(n);
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            bits = words[w];
        })
    }

    /// Whether the set currently uses the inline (no-allocation)
    /// representation. Exposed for representation-equivalence tests only.
    #[doc(hidden)]
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Small(_))
    }
}

impl FromIterator<NodeId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        SharerSet::from_iter(iter)
    }
}

impl std::fmt::Display for SharerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::EMPTY;
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.sole_member(), Some(3));
        assert!(s.insert(15));
        assert_eq!(s.sole_member(), None);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.sole_member(), Some(15));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s: SharerSet = [9u8, 1, 4, 63, 0].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![0, 1, 4, 9, 63]);
    }

    #[test]
    fn union_and_difference() {
        let a: SharerSet = [1u8, 2, 3].into_iter().collect();
        let b: SharerSet = [3u8, 4].into_iter().collect();
        assert_eq!(a.union(b).len(), 4);
        let a: SharerSet = [1u8, 2, 3].into_iter().collect();
        let b: SharerSet = [3u8, 4].into_iter().collect();
        let d = a.difference(b);
        assert!(d.contains(1) && d.contains(2) && !d.contains(3));
    }

    #[test]
    fn display_formats_members() {
        let s: SharerSet = [2u8, 5].into_iter().collect();
        assert_eq!(s.to_string(), "{2,5}");
    }

    #[test]
    fn high_ids_promote_and_behave_identically() {
        let mut s = SharerSet::EMPTY;
        assert!(s.is_inline());
        assert!(s.insert(200));
        assert!(!s.is_inline());
        assert!(s.contains(200) && !s.contains(72));
        assert_eq!(s.sole_member(), Some(200));
        assert!(s.insert(5));
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![5, 200]);
        assert_eq!(s.to_string(), "{5,200}");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn removal_demotes_back_to_inline_canonically() {
        let mut big: SharerSet = [1u8, 255].into_iter().collect();
        assert!(!big.is_inline());
        assert!(big.remove(255));
        assert!(big.is_inline(), "upper words drained: must demote");
        let small = SharerSet::singleton(1);
        assert_eq!(big, small, "equal sets must compare equal across history");
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |s: &SharerSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&big), hash(&small));
    }

    #[test]
    fn set_algebra_spans_the_representation_boundary() {
        let a: SharerSet = [63u8, 64, 130].into_iter().collect();
        let b: SharerSet = [64u8, 7].into_iter().collect();
        let u = a.clone().union(b.clone());
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![7, 63, 64, 130]);
        let d = a.clone().difference(b.clone());
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![63, 130]);
        // Difference that erases every high bit must demote.
        let high: SharerSet = [64u8, 130].into_iter().collect();
        let low = a.difference(high);
        assert!(low.is_inline());
        assert_eq!(low, SharerSet::singleton(63));
        // Union of two smalls stays inline.
        let s = SharerSet::singleton(1).union(SharerSet::singleton(63));
        assert!(s.is_inline());
    }

    #[test]
    fn words_round_trip_both_representations() {
        let small: SharerSet = [0u8, 63].into_iter().collect();
        assert_eq!(small.words(), [(1u64 << 63) | 1, 0, 0, 0]);
        let big: SharerSet = [0u8, 64, 255].into_iter().collect();
        assert_eq!(big.words(), [1, 1, 0, 1u64 << 63]);
    }

    #[test]
    fn every_node_id_is_representable_without_wrap() {
        // The acceptance property of the 64-node ceiling fix: no id of the
        // full NodeId range aliases another (the old u64 mask wrapped
        // `1 << node` in release builds, so 64 aliased 0, 65 aliased 1...).
        let mut s = SharerSet::EMPTY;
        for n in 0..=255u8 {
            assert!(s.insert(n), "id {n} must insert fresh");
        }
        assert_eq!(s.len(), 256);
        let members: Vec<NodeId> = s.iter().collect();
        assert_eq!(members, (0..=255u8).collect::<Vec<_>>());
        for n in (0..=255u8).rev() {
            assert!(s.remove(n));
        }
        assert!(s.is_empty() && s.is_inline());
    }
}
