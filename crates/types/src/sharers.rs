//! Compact sharer sets ("directory bit vectors").
//!
//! The full-map directory keeps one bit per node for every memory block
//! (paper §3.2); the switch directory entries likewise carry "a bit vector
//! for marking subsequent sharers" (§4.2). With at most 64 nodes supported
//! by the workspace, a single `u64` suffices and keeps directory state
//! `Copy`.

use crate::addr::NodeId;

/// A set of node ids represented as a 64-bit mask.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// Creates a set containing exactly one node.
    #[inline]
    pub fn singleton(node: NodeId) -> Self {
        debug_assert!(node < 64);
        SharerSet(1u64 << node)
    }

    /// Creates a set from an iterator of node ids.
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator below
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = SharerSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }

    /// Inserts a node; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        debug_assert!(node < 64);
        let bit = 1u64 << node;
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Removes a node; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        debug_assert!(node < 64);
        let bit = 1u64 << node;
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether the node is in the set.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        debug_assert!(node < 64);
        self.0 & (1u64 << node) != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Union with another set.
    #[inline]
    pub fn union(self, other: SharerSet) -> SharerSet {
        SharerSet(self.0 | other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(self, other: SharerSet) -> SharerSet {
        SharerSet(self.0 & !other.0)
    }

    /// If the set holds exactly one node, returns it.
    #[inline]
    pub fn sole_member(&self) -> Option<NodeId> {
        if self.len() == 1 {
            Some(self.0.trailing_zeros() as NodeId)
        } else {
            None
        }
    }

    /// Iterates the members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let n = bits.trailing_zeros() as NodeId;
                bits &= bits - 1;
                Some(n)
            }
        })
    }

    /// Raw mask, for compact logging.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl FromIterator<NodeId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        SharerSet::from_iter(iter)
    }
}

impl std::fmt::Display for SharerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::EMPTY;
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.sole_member(), Some(3));
        assert!(s.insert(15));
        assert_eq!(s.sole_member(), None);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.sole_member(), Some(15));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s: SharerSet = [9u8, 1, 4, 63, 0].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![0, 1, 4, 9, 63]);
    }

    #[test]
    fn union_and_difference() {
        let a: SharerSet = [1u8, 2, 3].into_iter().collect();
        let b: SharerSet = [3u8, 4].into_iter().collect();
        assert_eq!(a.union(b).len(), 4);
        let d = a.difference(b);
        assert!(d.contains(1) && d.contains(2) && !d.contains(3));
    }

    #[test]
    fn display_formats_members() {
        let s: SharerSet = [2u8, 5].into_iter().collect();
        assert_eq!(s.to_string(), "{2,5}");
    }
}
