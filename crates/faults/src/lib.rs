//! # dresar-faults
//!
//! Deterministic fault injection and runtime robustness machinery for the
//! dresar simulators.
//!
//! The paper's central safety argument is that a switch directory is only a
//! *hint cache*: any entry may be evicted or lost at any time, and
//! correctness is always recoverable from the home full-map directory. This
//! crate exists to test that claim adversarially:
//!
//! * [`FaultPlan`] — a seeded, fully deterministic fault schedule. Every
//!   decision is a pure function of the plan's seed plus stable simulation
//!   identifiers (message id, retry attempt, scrub epoch, switch index), so
//!   the same seed produces a byte-identical fault schedule regardless of
//!   host, build, or wall clock. Plans are parsed from a compact
//!   `key=value,key=value` spec string (the `--faults` CLI flag).
//! * [`FaultSession`] — the per-run mutable state (counters, scrub clock,
//!   one-shot latches) a simulator drives from its event loop.
//! * [`Watchdog`] — a cycle-driven monitor that turns livelock, stuck
//!   messages and quiescence failures into a structured [`WatchdogReport`]
//!   (with per-MSHR message lineage) instead of a hang or a panic.
//! * [`SimError`] — the typed, recoverable simulation error surfaced
//!   through `ExecutionReport` by the audited hot paths; true invariant
//!   violations stay `debug_assert!`s at the call sites.
//!
//! The crate deliberately depends only on `dresar-types`: every simulator
//! layer (interconnect, directory, core) can consume these types without
//! dependency cycles.

#![warn(missing_docs)]

use dresar_types::msg::MsgType;
use dresar_types::{BlockAddr, Cycle, JsonValue, NodeId, SmallRng, ToJson};

/// Upper bound on the exponential-backoff shift so `base << attempt` cannot
/// overflow or schedule absurdly far into the future.
const MAX_BACKOFF_SHIFT: u32 = 16;

/// Mixes the plan seed with stable identifiers into one decision word.
///
/// This is the determinism keystone: every injected fault is derived from
/// `(seed, a, b)` through the same splitmix64 finalizer as
/// [`dresar_types::SmallRng`], never from iteration order or host state.
fn decision_word(seed: u64, a: u64, b: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(
        seed ^ a.rotate_left(17).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.rotate_left(43),
    );
    rng.next_u64()
}

/// A deterministic, seeded fault schedule.
///
/// All-zero fields (the [`Default`]) inject nothing: a `FaultPlan::default()`
/// run is behaviorally identical to a fault-free run. The plan is `Copy` so
/// it can ride inside the simulators' `RunOptions`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision. Same seed ⇒ same schedule.
    pub seed: u64,
    /// Per-launch message drop probability in parts per million (0 = never).
    /// A dropped message is NACK'd by the link and retried with exponential
    /// backoff up to [`FaultPlan::max_retries`] times.
    pub drop_ppm: u32,
    /// Bounded retransmission budget per message; beyond it the message is
    /// permanently lost (the watchdog's problem).
    pub max_retries: u32,
    /// Base retransmission delay in cycles; attempt `n` waits
    /// `backoff_base << n` cycles.
    pub backoff_base: u32,
    /// Period in cycles of the ECC scrub pulse that invalidates one
    /// pseudo-randomly chosen MODIFIED switch-directory entry per switch
    /// (0 = off). TRANSIENT entries are never scrubbed: they pin in-flight
    /// protocol state, and real scrub engines skip busy lines the same way.
    pub scrub_period: u64,
    /// Cycle at which a forced eviction storm hits every switch directory
    /// (0 = off).
    pub storm_at: Cycle,
    /// MODIFIED entries evicted per switch by the storm.
    pub storm_evictions: u32,
    /// Cycle at which every switch directory is disabled — degraded mode,
    /// all traffic falls back to the home-directory path (0 = off).
    pub disable_at: Cycle,
    /// Cycle at which disabled switch directories are re-enabled (0 =
    /// never re-enable).
    pub enable_at: Cycle,
    /// Permanently lose the [`FaultPlan::lose_nth`] launched message of this
    /// kind (no retry, no NACK — models an undetected drop).
    pub lose_kind: Option<MsgType>,
    /// 1-based ordinal of the `lose_kind` message to lose.
    pub lose_nth: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_ppm: 0,
            max_retries: 8,
            backoff_base: 16,
            scrub_period: 0,
            storm_at: 0,
            storm_evictions: 16,
            disable_at: 0,
            enable_at: 0,
            lose_kind: None,
            lose_nth: 1,
        }
    }
}

impl FaultPlan {
    /// Parses a `key=value,key=value` spec string (the `--faults` flag).
    ///
    /// Keys: `seed`, `drop_ppm`, `max_retries`, `backoff`, `scrub_period`,
    /// `storm_at`, `storm_evictions`, `disable_at`, `enable_at`,
    /// `lose_kind` (a message-type name such as `WriteReply`), `lose_nth`.
    /// Unset keys keep their defaults.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item '{part}' is not key=value"))?;
            let num = || -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("fault spec {key}='{value}': not a number"))
            };
            match key {
                "seed" => plan.seed = num()?,
                "drop_ppm" => plan.drop_ppm = num()? as u32,
                "max_retries" => plan.max_retries = num()? as u32,
                "backoff" => plan.backoff_base = num()? as u32,
                "scrub_period" => plan.scrub_period = num()?,
                "storm_at" => plan.storm_at = num()?,
                "storm_evictions" => plan.storm_evictions = num()? as u32,
                "disable_at" => plan.disable_at = num()?,
                "enable_at" => plan.enable_at = num()?,
                "lose_nth" => plan.lose_nth = (num()?).max(1) as u32,
                "lose_kind" => {
                    plan.lose_kind = Some(MsgType::parse(value).ok_or_else(|| {
                        format!("fault spec lose_kind='{value}': unknown message type")
                    })?)
                }
                other => return Err(format!("fault spec: unknown key '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Whether this plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_ppm > 0
            || self.scrub_period > 0
            || self.storm_at > 0
            || self.disable_at > 0
            || self.lose_kind.is_some()
    }

    /// Pure drop decision for launching message `msg_id` on attempt
    /// `attempt` (0 = first launch). Deterministic in `(seed, msg_id,
    /// attempt)`.
    pub fn should_drop(&self, msg_id: u64, attempt: u32) -> bool {
        if self.drop_ppm == 0 {
            return false;
        }
        let w = decision_word(self.seed, msg_id, 0x6472_6f70 ^ u64::from(attempt) << 32);
        (w % 1_000_000) < u64::from(self.drop_ppm)
    }

    /// Retransmission delay before attempt `attempt + 1`.
    pub fn backoff(&self, attempt: u32) -> Cycle {
        u64::from(self.backoff_base.max(1)) << attempt.min(MAX_BACKOFF_SHIFT)
    }

    /// Decision word for scrub epoch `epoch` at switch `switch_linear`;
    /// the switch directory uses it to pick the victim entry.
    pub fn scrub_nonce(&self, epoch: u64, switch_linear: u64) -> u64 {
        decision_word(self.seed, 0x7363_7275_6200 ^ epoch, switch_linear)
    }
}

/// Counters describing what a [`FaultSession`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by a link (each followed by a NACK + retry).
    pub dropped: u64,
    /// Retransmissions scheduled after a drop.
    pub retransmissions: u64,
    /// Messages permanently lost (retry budget exhausted, or `lose_kind`).
    pub lost: u64,
    /// MODIFIED switch-directory entries invalidated by ECC scrub pulses.
    pub scrubbed: u64,
    /// MODIFIED switch-directory entries evicted by forced storms.
    pub storm_evicted: u64,
    /// Switch-directory disable transitions (entering degraded mode).
    pub sd_disables: u64,
    /// Switch-directory re-enable transitions.
    pub sd_enables: u64,
}

impl ToJson for FaultStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("dropped", self.dropped)
            .field("retransmissions", self.retransmissions)
            .field("lost", self.lost)
            .field("scrubbed", self.scrubbed)
            .field("storm_evicted", self.storm_evicted)
            .field("sd_disables", self.sd_disables)
            .field("sd_enables", self.sd_enables)
            .build()
    }
}

/// What a link decided about one message launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchVerdict {
    /// Deliver normally.
    Deliver,
    /// Drop; the sender's network interface retries after the given
    /// backoff delay (attempt number already incremented by the caller).
    DropRetry {
        /// Cycles to wait before the retransmission.
        backoff: Cycle,
    },
    /// Drop permanently: retry budget exhausted or targeted loss.
    Lost,
}

/// Per-run fault-injection state: the plan plus its mutable clocks and
/// one-shot latches. Owned by the simulator; every method is cheap and
/// deterministic.
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: FaultPlan,
    /// What was actually injected.
    pub stats: FaultStats,
    kind_seen: u64,
    next_scrub: Cycle,
    scrub_epoch: u64,
    storm_fired: bool,
    disable_fired: bool,
    enable_fired: bool,
    sd_disabled: bool,
}

impl FaultSession {
    /// Starts a session for one run of `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultSession {
            plan,
            stats: FaultStats::default(),
            kind_seen: 0,
            next_scrub: if plan.scrub_period > 0 { plan.scrub_period } else { 0 },
            scrub_epoch: 0,
            storm_fired: false,
            disable_fired: false,
            enable_fired: false,
            sd_disabled: false,
        }
    }

    /// The plan this session executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether switch directories are currently in degraded (disabled)
    /// mode.
    pub fn sd_disabled(&self) -> bool {
        self.sd_disabled
    }

    /// Judges one message launch. `attempt` is 0 for the first launch of a
    /// message id and increments per retransmission; the targeted
    /// `lose_kind` counter only advances on first launches so retries do
    /// not double-count.
    pub fn on_launch(&mut self, msg_id: u64, kind: MsgType, attempt: u32) -> LaunchVerdict {
        if attempt == 0 && self.plan.lose_kind == Some(kind) {
            self.kind_seen += 1;
            if self.kind_seen == u64::from(self.plan.lose_nth.max(1)) {
                self.stats.lost += 1;
                return LaunchVerdict::Lost;
            }
        }
        if !self.plan.should_drop(msg_id, attempt) {
            return LaunchVerdict::Deliver;
        }
        self.stats.dropped += 1;
        if attempt >= self.plan.max_retries {
            self.stats.lost += 1;
            return LaunchVerdict::Lost;
        }
        self.stats.retransmissions += 1;
        LaunchVerdict::DropRetry { backoff: self.plan.backoff(attempt) }
    }

    /// Returns the scrub nonce for each due scrub epoch at time `now`
    /// (usually zero or one; more after a long event gap). The simulator
    /// applies one scrub per switch per returned nonce.
    pub fn due_scrubs(&mut self, now: Cycle) -> Vec<u64> {
        let mut nonces = Vec::new();
        if self.plan.scrub_period == 0 {
            return nonces;
        }
        while self.next_scrub <= now {
            nonces.push(self.scrub_epoch);
            self.scrub_epoch += 1;
            self.next_scrub += self.plan.scrub_period;
        }
        nonces
    }

    /// Nonce for scrub epoch `epoch` at switch `switch_linear`.
    pub fn scrub_nonce(&self, epoch: u64, switch_linear: u64) -> u64 {
        self.plan.scrub_nonce(epoch, switch_linear)
    }

    /// Whether the forced eviction storm fires now (one-shot latch).
    pub fn storm_due(&mut self, now: Cycle) -> Option<u32> {
        if self.plan.storm_at > 0 && !self.storm_fired && now >= self.plan.storm_at {
            self.storm_fired = true;
            return Some(self.plan.storm_evictions);
        }
        None
    }

    /// Whether the whole-switch SD disable fires now (one-shot latch).
    pub fn disable_due(&mut self, now: Cycle) -> bool {
        if self.plan.disable_at > 0 && !self.disable_fired && now >= self.plan.disable_at {
            self.disable_fired = true;
            self.sd_disabled = true;
            return true;
        }
        false
    }

    /// Whether the SD re-enable fires now (one-shot latch; only after a
    /// disable actually happened).
    pub fn enable_due(&mut self, now: Cycle) -> bool {
        if self.plan.enable_at > 0
            && self.disable_fired
            && !self.enable_fired
            && now >= self.plan.enable_at
        {
            self.enable_fired = true;
            self.sd_disabled = false;
            return true;
        }
        false
    }
}

/// A typed, recoverable simulation error. Hot paths that used to `panic!`
/// or `unwrap()` on conditions a fault can legitimately produce now return
/// or record one of these; the run completes and the errors surface in
/// `ExecutionReport::sim_errors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A route could not be constructed between two endpoints.
    Route {
        /// The route-builder that failed.
        context: &'static str,
        /// Human-readable specifics.
        detail: String,
    },
    /// The flit network refused or mishandled a message.
    Network {
        /// The network operation that failed.
        context: &'static str,
        /// Human-readable specifics.
        detail: String,
    },
    /// A coherence component received a message it has no transition for.
    Protocol {
        /// The component that received it.
        context: &'static str,
        /// Human-readable specifics.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Route { context, detail } => write!(f, "route/{context}: {detail}"),
            SimError::Network { context, detail } => write!(f, "network/{context}: {detail}"),
            SimError::Protocol { context, detail } => write!(f, "protocol/{context}: {detail}"),
        }
    }
}

impl ToJson for SimError {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

/// Watchdog configuration. `Copy` so it can ride in `RunOptions`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycles without forward progress (a completed fill, a retired write,
    /// an executed reference) before the run is declared livelocked.
    pub progress_budget: Cycle,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        // Generous: the longest legitimate progress gap in the paper
        // configurations is a NAK-retry round trip (hundreds of cycles).
        WatchdogConfig { progress_budget: 100_000 }
    }
}

/// Why the watchdog tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogKind {
    /// Events kept flowing but nothing made forward progress for longer
    /// than the budget (e.g. a NAK-retry storm around a lost message).
    Livelock,
    /// The event queue drained but some node still holds unfinished
    /// transactions (e.g. a reply that was permanently lost).
    QuiescenceFailure,
    /// The run exceeded its absolute `max_cycles` budget.
    BudgetExceeded,
}

impl WatchdogKind {
    /// Stable label.
    pub fn label(&self) -> &'static str {
        match self {
            WatchdogKind::Livelock => "livelock",
            WatchdogKind::QuiescenceFailure => "quiescence_failure",
            WatchdogKind::BudgetExceeded => "budget_exceeded",
        }
    }
}

/// One stuck transaction in a watchdog report: the message lineage of an
/// MSHR that never completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckMsg {
    /// Node holding the MSHR.
    pub node: NodeId,
    /// Block the transaction targets.
    pub block: BlockAddr,
    /// Transaction kind label (`read` / `write`).
    pub kind: &'static str,
    /// Transaction id of the stuck miss (the `txn` every message on its
    /// behalf carries), cross-referencing the causal trees in traces and
    /// flight-recorder dumps. Zero for untracked transactions.
    pub txn: u64,
    /// Cycle the transaction was first issued.
    pub issued_at: Cycle,
    /// Whether a retry event was still pending when the run ended.
    pub retry_pending: bool,
}

impl ToJson for StuckMsg {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("node", u64::from(self.node))
            .field("block", self.block.0)
            .field("kind", self.kind)
            .field("txn", self.txn)
            .field("issued_at", self.issued_at)
            .field("retry_pending", self.retry_pending)
            .build()
    }
}

/// The watchdog's structured verdict: what went wrong, when, and which
/// transactions were stuck.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogReport {
    /// Failure class.
    pub kind: WatchdogKind,
    /// Cycle the watchdog tripped.
    pub at: Cycle,
    /// Last cycle that made forward progress.
    pub last_progress: Cycle,
    /// Stuck-transaction lineage, one entry per unfinished MSHR.
    pub lineage: Vec<StuckMsg>,
    /// Free-form context (lost messages, budget values).
    pub detail: String,
}

impl ToJson for WatchdogReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("kind", self.kind.label())
            .field("at", self.at)
            .field("last_progress", self.last_progress)
            .field("lineage", self.lineage.clone())
            .field("detail", self.detail.as_str())
            .build()
    }
}

/// Cycle-driven progress monitor. The simulator calls [`Watchdog::progress`]
/// at every forward-progress point and [`Watchdog::check_livelock`] from its
/// event loop; on a trip the simulator stops the run and attaches the
/// report to its `ExecutionReport` instead of hanging or panicking.
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    last_progress: Cycle,
    report: Option<WatchdogReport>,
}

impl Watchdog {
    /// Creates a watchdog with the given budget.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog { cfg, last_progress: 0, report: None }
    }

    /// Marks forward progress at cycle `t`.
    #[inline]
    pub fn progress(&mut self, t: Cycle) {
        if t > self.last_progress {
            self.last_progress = t;
        }
    }

    /// Whether the watchdog already tripped.
    pub fn tripped(&self) -> bool {
        self.report.is_some()
    }

    /// Checks the progress budget at cycle `t`; returns true exactly once,
    /// when the budget is first exceeded. The caller then assembles the
    /// lineage and calls [`Watchdog::trip`].
    #[inline]
    pub fn check_livelock(&self, t: Cycle) -> bool {
        self.report.is_none() && t.saturating_sub(self.last_progress) > self.cfg.progress_budget
    }

    /// Records the verdict. The first trip wins; later calls are ignored.
    pub fn trip(&mut self, kind: WatchdogKind, at: Cycle, lineage: Vec<StuckMsg>, detail: String) {
        if self.report.is_none() {
            self.report = Some(WatchdogReport {
                kind,
                at,
                last_progress: self.last_progress,
                lineage,
                detail,
            });
        }
    }

    /// The report, if the watchdog tripped.
    pub fn report(&self) -> Option<&WatchdogReport> {
        self.report.as_ref()
    }

    /// Consumes the watchdog, yielding the report if it tripped.
    pub fn into_report(self) -> Option<WatchdogReport> {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut s = FaultSession::new(plan);
        for id in 0..1000 {
            assert_eq!(s.on_launch(id, MsgType::ReadRequest, 0), LaunchVerdict::Deliver);
        }
        assert!(s.due_scrubs(1_000_000).is_empty());
        assert_eq!(s.storm_due(1_000_000), None);
        assert!(!s.disable_due(1_000_000));
        assert_eq!(s.stats, FaultStats::default());
    }

    #[test]
    fn drop_decisions_are_deterministic_and_ppm_scaled() {
        let plan = FaultPlan { seed: 42, drop_ppm: 100_000, ..FaultPlan::default() };
        let a: Vec<bool> = (0..10_000).map(|id| plan.should_drop(id, 0)).collect();
        let b: Vec<bool> = (0..10_000).map(|id| plan.should_drop(id, 0)).collect();
        assert_eq!(a, b);
        let hits = a.iter().filter(|&&d| d).count();
        // 10% +- 1.5% over 10k trials.
        assert!((850..=1150).contains(&hits), "hits = {hits}");
        // Different attempts decide independently.
        assert!((0..10_000u64).any(|id| plan.should_drop(id, 0) != plan.should_drop(id, 1)));
    }

    #[test]
    fn backoff_is_exponential_and_bounded() {
        let plan = FaultPlan { backoff_base: 8, ..FaultPlan::default() };
        assert_eq!(plan.backoff(0), 8);
        assert_eq!(plan.backoff(1), 16);
        assert_eq!(plan.backoff(3), 64);
        assert_eq!(plan.backoff(200), 8 << MAX_BACKOFF_SHIFT);
    }

    #[test]
    fn bounded_retry_then_lost() {
        let plan =
            FaultPlan { seed: 7, drop_ppm: 1_000_000, max_retries: 3, ..FaultPlan::default() };
        let mut s = FaultSession::new(plan);
        for attempt in 0..3 {
            assert!(matches!(
                s.on_launch(5, MsgType::ReadReply, attempt),
                LaunchVerdict::DropRetry { .. }
            ));
        }
        assert_eq!(s.on_launch(5, MsgType::ReadReply, 3), LaunchVerdict::Lost);
        assert_eq!(s.stats.dropped, 4);
        assert_eq!(s.stats.retransmissions, 3);
        assert_eq!(s.stats.lost, 1);
    }

    #[test]
    fn targeted_loss_hits_the_nth_launch_only() {
        let plan =
            FaultPlan { lose_kind: Some(MsgType::WriteReply), lose_nth: 2, ..FaultPlan::default() };
        let mut s = FaultSession::new(plan);
        assert_eq!(s.on_launch(1, MsgType::WriteReply, 0), LaunchVerdict::Deliver);
        assert_eq!(s.on_launch(2, MsgType::ReadReply, 0), LaunchVerdict::Deliver);
        assert_eq!(s.on_launch(3, MsgType::WriteReply, 0), LaunchVerdict::Lost);
        assert_eq!(s.on_launch(4, MsgType::WriteReply, 0), LaunchVerdict::Deliver);
        // Retries of an already-counted message do not advance the ordinal.
        assert_eq!(s.on_launch(4, MsgType::WriteReply, 1), LaunchVerdict::Deliver);
        assert_eq!(s.stats.lost, 1);
    }

    #[test]
    fn scrub_clock_ticks_per_period() {
        let plan = FaultPlan { scrub_period: 100, ..FaultPlan::default() };
        let mut s = FaultSession::new(plan);
        assert!(s.due_scrubs(99).is_empty());
        assert_eq!(s.due_scrubs(100), vec![0]);
        assert!(s.due_scrubs(150).is_empty());
        assert_eq!(s.due_scrubs(450), vec![1, 2, 3]);
        // Nonces are deterministic per (epoch, switch).
        assert_eq!(s.scrub_nonce(2, 5), s.scrub_nonce(2, 5));
        assert_ne!(s.scrub_nonce(2, 5), s.scrub_nonce(2, 6));
    }

    #[test]
    fn disable_enable_latches_fire_once_in_order() {
        let plan = FaultPlan { disable_at: 100, enable_at: 200, ..FaultPlan::default() };
        let mut s = FaultSession::new(plan);
        assert!(!s.enable_due(150)); // never before the disable
        assert!(!s.disable_due(99));
        assert!(s.disable_due(100));
        assert!(s.sd_disabled());
        assert!(!s.disable_due(101)); // one-shot
        assert!(!s.enable_due(199));
        assert!(s.enable_due(200));
        assert!(!s.sd_disabled());
        assert!(!s.enable_due(201)); // one-shot
    }

    #[test]
    fn spec_parser_round_trips_and_rejects_junk() {
        let plan = FaultPlan::parse(
            "seed=42, drop_ppm=500, max_retries=6, backoff=8, scrub_period=4096, \
             storm_at=10000, storm_evictions=32, disable_at=20000, enable_at=40000, \
             lose_kind=WriteReply, lose_nth=3",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.drop_ppm, 500);
        assert_eq!(plan.max_retries, 6);
        assert_eq!(plan.backoff_base, 8);
        assert_eq!(plan.scrub_period, 4096);
        assert_eq!(plan.storm_at, 10_000);
        assert_eq!(plan.storm_evictions, 32);
        assert_eq!(plan.disable_at, 20_000);
        assert_eq!(plan.enable_at, 40_000);
        assert_eq!(plan.lose_kind, Some(MsgType::WriteReply));
        assert_eq!(plan.lose_nth, 3);
        assert_eq!(FaultPlan::parse(""), Ok(FaultPlan::default()));
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("lose_kind=NotAMessage").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
    }

    #[test]
    fn watchdog_trips_once_past_budget() {
        let mut w = Watchdog::new(WatchdogConfig { progress_budget: 100 });
        w.progress(50);
        assert!(!w.check_livelock(150));
        assert!(w.check_livelock(151));
        w.trip(WatchdogKind::Livelock, 151, Vec::new(), "test".into());
        assert!(w.tripped());
        assert!(!w.check_livelock(10_000)); // already tripped
        w.trip(WatchdogKind::BudgetExceeded, 200, Vec::new(), "late".into());
        assert_eq!(w.report().unwrap().kind, WatchdogKind::Livelock); // first trip wins
        assert_eq!(w.report().unwrap().last_progress, 50);
    }

    #[test]
    fn report_json_is_deterministic() {
        let mut w = Watchdog::new(WatchdogConfig::default());
        w.trip(
            WatchdogKind::QuiescenceFailure,
            1234,
            vec![StuckMsg {
                node: 3,
                block: BlockAddr(0x40),
                kind: "write",
                txn: 77,
                issued_at: 1000,
                retry_pending: false,
            }],
            "lost WriteReply".into(),
        );
        let a = w.report().unwrap().to_json().dump();
        let b = w.report().unwrap().to_json().dump();
        assert_eq!(a, b);
        assert!(a.contains("quiescence_failure"));
        assert!(a.contains("lost WriteReply"));
        assert!(a.contains("\"txn\":77"), "lineage carries the transaction id: {a}");
    }
}
