//! Bounded, content-addressed result cache.
//!
//! Keys are [`dresar_types::RunSpec`] digests; values are complete,
//! already-serialized response bodies behind `Arc` (so one cached body is
//! shared by every concurrent response writing it out). Determinism makes
//! the cache *sound*, not merely probably-fine: the simulator guarantees
//! equal specs produce byte-identical reports, so a hit is
//! indistinguishable from a re-run and never needs invalidation.
//!
//! Eviction is least-recently-used, tracked with a monotone use-stamp per
//! entry. The victim scan is linear in the entry count, which is the right
//! trade at serving cache sizes (the paper's whole Figures 8–11 lattice is
//! seven workloads x five configurations): no linked-list bookkeeping on
//! the hit path, and the map stays a plain deterministic [`FastMap`].

use dresar_types::FastMap;
use std::sync::Arc;

/// A bounded LRU map from run digest to served body.
#[derive(Debug)]
pub struct ResultCache {
    entries: FastMap<u64, CacheEntry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct CacheEntry {
    body: Arc<String>,
    last_used: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            entries: FastMap::default(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks a digest up, refreshing its recency on a hit.
    pub fn get(&mut self, digest: u64) -> Option<Arc<String>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&digest) {
            Some(e) => {
                e.last_used = clock;
                self.hits += 1;
                Some(Arc::clone(&e.body))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly computed body, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, digest: u64, body: Arc<String>) {
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&digest) {
            if let Some(&victim) =
                self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(digest, CacheEntry { body, last_used: self.clock });
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, evictions)` counters since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn hit_returns_the_inserted_body() {
        let mut c = ResultCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, body("one"));
        assert_eq!(c.get(1).unwrap().as_str(), "one");
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(1, body("a"));
        c.insert(2, body("b"));
        assert!(c.get(1).is_some()); // 1 is now more recent than 2
        c.insert(3, body("c")); // evicts 2
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "LRU entry 2 must be the victim");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn reinserting_an_existing_digest_does_not_evict() {
        let mut c = ResultCache::new(2);
        c.insert(1, body("a"));
        c.insert(2, body("b"));
        c.insert(1, body("a2"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap().as_str(), "a2");
        assert!(c.get(2).is_some());
        assert_eq!(c.stats().2, 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c = ResultCache::new(0);
        c.insert(1, body("a"));
        c.insert(2, body("b"));
        assert_eq!(c.len(), 1);
    }
}
