//! Minimal HTTP client + load generator for `dresar-serve`.
//!
//! The client speaks the same one-request-per-connection HTTP/1.1 subset
//! the server does: it writes one request, half-closes, and reads to EOF
//! (sound because every server response carries `Connection: close`). The
//! load generator drives a fixed request mix from a configurable number of
//! concurrent connections and reports per-status counts plus service-time
//! percentiles from the workspace's log2 histogram
//! ([`dresar_obs::log2_percentile`]), the same estimator the latency
//! breakdowns use.

use dresar_obs::{log2_bucket, log2_percentile};
use dresar_types::{JsonValue, ToJson};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Buckets in the client-side latency histogram (microseconds).
const CLIENT_HIST_BUCKETS: usize = 40;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header fields in arrival order, names as sent (values trimmed).
    pub headers: Vec<(String, String)>,
    /// Response body (the server always sends JSON).
    pub body: String,
}

impl HttpResponse {
    /// First header with the given name, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// A numeric header (the server's `X-Dresar-*-Us` timing fields).
    pub fn header_u64(&self, name: &str) -> Option<u64> {
        self.header(name).and_then(|v| v.parse().ok())
    }
}

/// Issues one HTTP request to `addr` and reads the full response.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<HttpResponse> {
    http_request_with(addr, method, path, &[], body)
}

/// [`http_request`] with extra request header fields (each written
/// verbatim as `Name: value`) — how a caller asks for a traced run
/// (`X-Dresar-Trace`) or Prometheus metrics (`Accept: text/plain`).
pub fn http_request_with(
    addr: &str,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.to_string(), v.trim().to_string()))
        .collect();
    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|_| bad("response body is not UTF-8"))?;
    Ok(HttpResponse { status, headers, body })
}

/// Opens `GET /metrics/stream?{query}` on `addr` and invokes `on_event`
/// with each SSE `data:` payload as the server pushes it — the one place
/// the client does *not* read to EOF, because the response is unbounded.
/// Returns the number of events delivered once the server terminates the
/// stream (frame limit or drain), the connection drops, or `on_event`
/// returns `false`.
pub fn stream_metrics(
    addr: &str,
    query: &str,
    on_event: impl FnMut(&str) -> bool,
) -> std::io::Result<u64> {
    let mut stream = TcpStream::connect(addr)?;
    let path = if query.is_empty() {
        "/metrics/stream".to_string()
    } else {
        format!("/metrics/stream?{query}")
    };
    let head = format!(
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    read_sse_events(BufReader::new(stream), on_event)
}

/// Incrementally decodes a chunked-transfer SSE response, invoking
/// `on_event` per `data:` line as chunks arrive. Split from
/// [`stream_metrics`] so the decoder is testable against canned bytes.
fn read_sse_events<R: BufRead>(
    mut reader: R,
    mut on_event: impl FnMut(&str) -> bool,
) -> std::io::Result<u64> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status = line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(format!("malformed status line: {line:?}")))?;
    if status != 200 {
        return Err(bad(format!("stream refused: HTTP {status}")));
    }
    let mut chunked = false;
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }
    if !chunked {
        return Err(bad("stream response is not chunked".to_string()));
    }
    let mut events = 0u64;
    let mut pending = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break; // connection dropped without a terminal chunk
        }
        let size = usize::from_str_radix(line.trim(), 16)
            .map_err(|_| bad(format!("bad chunk size line: {line:?}")))?;
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size + 2]; // payload + trailing CRLF
        reader.read_exact(&mut chunk)?;
        chunk.truncate(size);
        pending.push_str(std::str::from_utf8(&chunk).map_err(|_| bad("chunk not UTF-8".into()))?);
        // A blank line terminates one SSE event; a chunk may end mid-event.
        while let Some(pos) = pending.find("\n\n") {
            let event: String = pending.drain(..pos + 2).collect();
            for event_line in event.lines() {
                if let Some(data) = event_line.strip_prefix("data: ") {
                    events += 1;
                    if !on_event(data) {
                        return Ok(events);
                    }
                }
            }
        }
    }
    Ok(events)
}

/// Posts one run-spec body to `/run`.
pub fn post_run(addr: &str, spec_json: &str) -> std::io::Result<HttpResponse> {
    http_request(addr, "POST", "/run", spec_json)
}

/// Retry/backoff policy for [`post_run_retry`]: capped exponential backoff
/// with deterministic seeded jitter.
///
/// A retryable reply (429/503, which the server marks with `Retry-After`)
/// is retried up to `max_retries` times. The `k`-th wait is
/// `min(base_ms << k, cap_ms)` scaled by a jitter factor in `[0.5, 1.0)`
/// drawn from a [`SmallRng`](dresar_types::SmallRng) seeded with `seed` —
/// so a load run's retry schedule is reproducible, matching the
/// workspace-wide determinism discipline. When the server sends
/// `Retry-After: N` (seconds), the wait is raised to at least `N * 1000`
/// milliseconds: an explicit server hint outranks the local schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = behave like [`post_run`]).
    pub max_retries: u32,
    /// First backoff wait, milliseconds.
    pub base_ms: u64,
    /// Upper bound any single wait is clamped to, milliseconds.
    pub cap_ms: u64,
    /// Jitter seed; equal seeds give equal retry schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, base_ms: 50, cap_ms: 2_000, seed: 0 }
    }
}

impl RetryPolicy {
    /// The wait before retry number `attempt` (0-based), in milliseconds,
    /// honoring the server's `Retry-After` hint (seconds) as a floor.
    /// Pure — the deterministic schedule is unit-testable without a clock.
    pub fn backoff_ms(
        &self,
        attempt: u32,
        retry_after_s: Option<u64>,
        rng: &mut dresar_types::SmallRng,
    ) -> u64 {
        let exp =
            self.base_ms.checked_shl(attempt.min(63)).unwrap_or(u64::MAX).min(self.cap_ms).max(1);
        let jittered = ((exp as f64) * (0.5 + rng.gen::<f64>() * 0.5)).round() as u64;
        jittered.max(retry_after_s.unwrap_or(0).saturating_mul(1000))
    }
}

/// Whether a reply should be retried under a [`RetryPolicy`]: the
/// transient statuses the server marks retryable (429 shed, 503
/// draining/deadline). 500s are not retried — a deterministic engine will
/// fail deterministically again.
fn retryable(status: u16) -> bool {
    status == 429 || status == 503
}

/// What one [`post_run_retry`] call did, beyond the final response.
#[derive(Debug, Clone, Default)]
pub struct RetryOutcome {
    /// Retries performed (0 = first attempt succeeded or was terminal).
    pub retries: u32,
    /// True if retries were exhausted while the server still said 429/503.
    pub gave_up: bool,
}

/// [`post_run`] with retry/backoff: retries 429/503 replies per `policy`,
/// sleeping the backoff schedule between attempts. Transport errors are
/// retried too (the server may be restarting). Returns the final response
/// plus how many retries it took.
pub fn post_run_retry(
    addr: &str,
    spec_json: &str,
    policy: &RetryPolicy,
) -> std::io::Result<(HttpResponse, RetryOutcome)> {
    let mut rng = dresar_types::SmallRng::seed_from_u64(policy.seed);
    let mut outcome = RetryOutcome::default();
    for attempt in 0..=policy.max_retries {
        let result = post_run(addr, spec_json);
        let retry_after_s = match &result {
            Ok(resp) if retryable(resp.status) => resp.header_u64("retry-after").filter(|&s| s > 0),
            Ok(_) => return Ok((result.expect("just matched Ok"), outcome)),
            Err(_) => None,
        };
        if attempt == policy.max_retries {
            outcome.gave_up = true;
            return result.map(|resp| (resp, outcome.clone()));
        }
        let wait = policy.backoff_ms(attempt, retry_after_s, &mut rng);
        std::thread::sleep(std::time::Duration::from_millis(wait));
        outcome.retries += 1;
    }
    unreachable!("loop returns on the final attempt")
}

/// The default load mix: a handful of distinct tiny-scale specs (several
/// workloads, two SD sizes) plus a repeated one, so a run exercises cache
/// hits, coalescing and distinct executions all at once.
pub fn default_mix() -> Vec<String> {
    vec![
        r#"{"workload":"FFT","scale":"tiny","nodes":16,"sd_entries":1024,"seed":7}"#.to_string(),
        r#"{"workload":"FFT","scale":"tiny","nodes":16,"sd_entries":1024,"seed":7}"#.to_string(),
        r#"{"workload":"TC","scale":"tiny","nodes":16,"sd_entries":1024,"seed":7}"#.to_string(),
        r#"{"workload":"SOR","scale":"tiny","nodes":16,"sd_entries":256,"seed":7}"#.to_string(),
        r#"{"workload":"TPC-C","scale":"tiny","nodes":16,"sd_entries":1024,"seed":7}"#.to_string(),
    ]
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Total requests to issue.
    pub total: usize,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Retry shed/draining replies per this policy; `None` records the
    /// raw 429/503s instead (the pre-retry behavior). Each request derives
    /// its jitter seed from `policy.seed ^ request_index`, so concurrent
    /// workers never share (or sleep in lockstep on) one RNG.
    pub retry: Option<RetryPolicy>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions { total: 32, concurrency: 4, retry: None }
    }
}

/// Aggregate result of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests issued.
    pub total: u64,
    /// Transport-level failures (connect/read errors, not HTTP errors).
    pub transport_errors: u64,
    /// Completed responses per HTTP status code.
    pub by_status: BTreeMap<u64, u64>,
    /// Responses served from the cache (`X-Dresar-Cache: hit`).
    pub cache_hits: u64,
    /// Retries performed across all requests (0 unless a [`RetryPolicy`]
    /// was configured). `by_status` counts only each request's *final*
    /// response; the shed replies a retry absorbed show up here instead.
    pub retries: u64,
    /// Requests whose retries were exhausted while the server still
    /// answered 429/503 — the load the retry policy could not hide.
    pub give_ups: u64,
    /// Log2 histogram of request service times, microseconds.
    pub service_us_hist: Vec<u64>,
    /// Log2 histogram of server-reported queue waits, microseconds. Only
    /// fresh executions report one, so the hist counts fewer samples than
    /// `service_us_hist` whenever the cache or coalescing served requests.
    pub queue_us_hist: Vec<u64>,
    /// Log2 histogram of server-reported execution times, microseconds.
    pub exec_us_hist: Vec<u64>,
}

impl LoadReport {
    /// The `p`-th percentile (0..=100) service time in microseconds.
    pub fn percentile_us(&self, p: f64) -> Option<f64> {
        log2_percentile(&self.service_us_hist, p / 100.0)
    }

    /// The `p`-th percentile server-side queue wait, microseconds.
    pub fn queue_percentile_us(&self, p: f64) -> Option<f64> {
        log2_percentile(&self.queue_us_hist, p / 100.0)
    }

    /// The `p`-th percentile server-side execution time, microseconds.
    pub fn exec_percentile_us(&self, p: f64) -> Option<f64> {
        log2_percentile(&self.exec_us_hist, p / 100.0)
    }
}

impl ToJson for LoadReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("total", self.total)
            .field("transport_errors", self.transport_errors)
            .field("by_status", self.by_status.clone())
            .field("cache_hits", self.cache_hits)
            .field("retries", self.retries)
            .field("give_ups", self.give_ups)
            .field("p50_us", self.percentile_us(50.0))
            .field("p95_us", self.percentile_us(95.0))
            .field("p99_us", self.percentile_us(99.0))
            .field("queue_p50_us", self.queue_percentile_us(50.0))
            .field("queue_p95_us", self.queue_percentile_us(95.0))
            .field("queue_p99_us", self.queue_percentile_us(99.0))
            .field("exec_p50_us", self.exec_percentile_us(50.0))
            .field("exec_p95_us", self.exec_percentile_us(95.0))
            .field("exec_p99_us", self.exec_percentile_us(99.0))
            .field("service_us_hist", self.service_us_hist.clone())
            .field("queue_us_hist", self.queue_us_hist.clone())
            .field("exec_us_hist", self.exec_us_hist.clone())
            .build()
    }
}

/// Drives `opts.total` requests (round-robin over `mix`) from
/// `opts.concurrency` threads and aggregates statuses and latencies.
pub fn run_load(addr: &str, mix: &[String], opts: &LoadOptions) -> LoadReport {
    let report = Arc::new(Mutex::new(LoadReport {
        service_us_hist: vec![0; CLIENT_HIST_BUCKETS],
        queue_us_hist: vec![0; CLIENT_HIST_BUCKETS],
        exec_us_hist: vec![0; CLIENT_HIST_BUCKETS],
        ..LoadReport::default()
    }));
    let mix: Arc<Vec<String>> = Arc::new(mix.to_vec());
    let addr = addr.to_string();
    let workers = opts.concurrency.max(1);
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let report = Arc::clone(&report);
            let mix = Arc::clone(&mix);
            let addr = addr.clone();
            let total = opts.total;
            let retry = opts.retry.clone();
            std::thread::spawn(move || {
                let mut i = w;
                while i < total {
                    let spec = &mix[i % mix.len()];
                    let t0 = Instant::now();
                    let (outcome, stats) = match &retry {
                        Some(policy) => {
                            let per_request =
                                RetryPolicy { seed: policy.seed ^ i as u64, ..policy.clone() };
                            match post_run_retry(&addr, spec, &per_request) {
                                Ok((resp, stats)) => (Ok(resp), stats),
                                // A terminal Err means every attempt ran.
                                Err(e) => (
                                    Err(e),
                                    RetryOutcome {
                                        retries: per_request.max_retries,
                                        gave_up: true,
                                    },
                                ),
                            }
                        }
                        None => (post_run(&addr, spec), RetryOutcome::default()),
                    };
                    let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    let mut r = report.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    r.total += 1;
                    r.retries += u64::from(stats.retries);
                    if stats.gave_up {
                        r.give_ups += 1;
                    }
                    match outcome {
                        Ok(resp) => {
                            *r.by_status.entry(u64::from(resp.status)).or_insert(0) += 1;
                            r.service_us_hist[log2_bucket(us, CLIENT_HIST_BUCKETS)] += 1;
                            if resp.header("x-dresar-cache") == Some("hit") {
                                r.cache_hits += 1;
                            }
                            if let Some(q) = resp.header_u64("x-dresar-queue-us") {
                                r.queue_us_hist[log2_bucket(q, CLIENT_HIST_BUCKETS)] += 1;
                            }
                            if let Some(e) = resp.header_u64("x-dresar-exec-us") {
                                r.exec_us_hist[log2_bucket(e, CLIENT_HIST_BUCKETS)] += 1;
                            }
                        }
                        Err(_) => r.transport_errors += 1,
                    }
                    drop(r);
                    i += workers;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("load worker panicked");
    }
    Arc::try_unwrap(report).expect("workers joined").into_inner().expect("load report poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parsing_splits_status_and_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, "{}");
    }

    #[test]
    fn response_headers_are_captured_and_parsed() {
        let raw = b"HTTP/1.1 200 OK\r\nX-Dresar-Queue-Us: 42\r\nX-Dresar-Cache: miss\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.header("x-dresar-cache"), Some("miss"));
        assert_eq!(resp.header_u64("X-DRESAR-QUEUE-US"), Some(42));
        assert_eq!(resp.header_u64("x-dresar-exec-us"), None);
    }

    #[test]
    fn malformed_responses_are_io_errors() {
        assert!(parse_response(b"no terminator").is_err());
        assert!(parse_response(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }

    #[test]
    fn sse_decoder_reassembles_events_across_chunk_boundaries() {
        let body = "data: {\"seq\":0}\n\ndata: {\"seq\":1}\n\n";
        let (a, b) = body.split_at(10); // second chunk starts mid-event
        let raw = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
             Transfer-Encoding: chunked\r\n\r\n{:x}\r\n{a}\r\n{:x}\r\n{b}\r\n0\r\n\r\n",
            a.len(),
            b.len()
        );
        let mut got = Vec::new();
        let n = read_sse_events(raw.as_bytes(), |d| {
            got.push(d.to_string());
            true
        })
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(got, vec!["{\"seq\":0}", "{\"seq\":1}"]);
    }

    #[test]
    fn sse_decoder_rejects_non_streaming_responses() {
        let refused = b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\n{}";
        assert!(read_sse_events(&refused[..], |_| true).is_err());
        let unchunked = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}";
        assert!(read_sse_events(&unchunked[..], |_| true).is_err());
    }

    #[test]
    fn sse_decoder_callback_can_stop_the_stream_early() {
        let event = "data: x\n\n";
        let raw = format!(
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
             {len:x}\r\n{event}\r\n{len:x}\r\n{event}\r\n0\r\n\r\n",
            len = event.len()
        );
        let n = read_sse_events(raw.as_bytes(), |_| false).unwrap();
        assert_eq!(n, 1, "a false return should stop after the first event");
    }

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_honors_retry_after() {
        let policy = RetryPolicy { max_retries: 8, base_ms: 50, cap_ms: 400, seed: 11 };
        let schedule = |seed| {
            let mut rng = dresar_types::SmallRng::seed_from_u64(seed);
            (0..6).map(|k| policy.backoff_ms(k, None, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(schedule(11), schedule(11), "equal seeds give equal schedules");
        for (k, &wait) in schedule(11).iter().enumerate() {
            let exp = (policy.base_ms << k).min(policy.cap_ms);
            assert!(
                wait >= exp / 2 && wait <= exp,
                "wait {wait} for retry {k} outside jitter envelope [{}, {exp}]",
                exp / 2
            );
        }
        // An explicit server hint outranks the local schedule.
        let mut rng = dresar_types::SmallRng::seed_from_u64(11);
        assert_eq!(policy.backoff_ms(0, Some(3), &mut rng), 3_000);
    }

    #[test]
    fn only_shed_and_draining_statuses_are_retryable() {
        assert!(retryable(429) && retryable(503));
        for status in [200u16, 400, 404, 413, 500] {
            assert!(!retryable(status), "status {status} must not be retried");
        }
    }

    #[test]
    fn retry_exhaustion_against_a_dead_server_reports_give_up() {
        // Nothing listens on this address: every attempt is a transport
        // error, so the call must run the full schedule and then fail.
        let policy = RetryPolicy { max_retries: 2, base_ms: 1, cap_ms: 2, seed: 5 };
        let err = post_run_retry("127.0.0.1:1", "{}", &policy);
        assert!(err.is_err(), "no server means a terminal transport error");
    }

    #[test]
    fn load_report_percentiles_come_from_the_hist() {
        let mut r = LoadReport { service_us_hist: vec![0; 8], ..LoadReport::default() };
        r.service_us_hist[3] = 10; // [4, 8) us
        let p50 = r.percentile_us(50.0).unwrap();
        assert!((4.0..8.0).contains(&p50), "p50 {p50} outside bucket bounds");
        let json = r.to_json();
        assert!(json.get("p99_us").is_some());
    }
}
