//! Turning a validated [`RunSpec`] into a served JSON document.
//!
//! Validation is split from execution on purpose: the server validates
//! *before* admission (so malformed requests are rejected instantly with a
//! structured error and never occupy a queue slot or an engine worker), and
//! executes only specs that are guaranteed to configure cleanly.
//!
//! The served body is the existing report document — an
//! [`dresar::system::ExecutionReport`] for the five scientific workloads
//! (execution-driven, Table 2) or a [`dresar_trace_sim::TraceReport`] for
//! the two commercial traces (trace-driven, Table 3) — wrapped in the
//! workspace's standard schema-versioned envelope together with the spec
//! echo and its digest. Bodies are fully deterministic (host profiling is
//! never included), which is what lets the cache serve them byte-identical
//! to a fresh run.

use crate::error::ServeError;
use dresar::system::{RunOptions, System};
use dresar::TransientReadPolicy;
use dresar_faults::{FaultPlan, WatchdogConfig};
use dresar_trace_sim::TraceSimulator;
use dresar_types::config::{SwitchDirConfig, SystemConfig, TraceSimConfig};
use dresar_types::{RunSpec, ToJson, Workload};
use dresar_workloads::{commercial, scientific, Scale};

/// Which simulator a workload label runs on (mirrors
/// `dresar_bench::Driver`, but resolved from a request instead of the
/// fixed suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Fft,
    Tc,
    Sor,
    Fwa,
    Gauss,
    Tpcc,
    Tpcd,
}

impl Kind {
    fn parse(label: &str) -> Option<Kind> {
        match label {
            "FFT" => Some(Kind::Fft),
            "TC" => Some(Kind::Tc),
            "SOR" => Some(Kind::Sor),
            "FWA" => Some(Kind::Fwa),
            "GAUSS" => Some(Kind::Gauss),
            "TPC-C" => Some(Kind::Tpcc),
            "TPC-D" => Some(Kind::Tpcd),
            _ => None,
        }
    }

    fn is_trace_driven(self) -> bool {
        matches!(self, Kind::Tpcc | Kind::Tpcd)
    }
}

/// A spec that passed every admission-time check and is ready to execute.
#[derive(Debug, Clone)]
pub struct ValidatedSpec {
    spec: RunSpec,
    kind: Kind,
    scale: Scale,
    sd: Option<SwitchDirConfig>,
    faults: Option<FaultPlan>,
}

/// Checks everything about a spec that can fail, mapping each failure to
/// its distinct machine-readable [`ServeError`].
pub fn validate(spec: &RunSpec) -> Result<ValidatedSpec, ServeError> {
    let kind = Kind::parse(&spec.workload).ok_or_else(|| {
        ServeError::BadWorkload(format!(
            "unknown workload '{}'; expected FFT|TC|SOR|FWA|GAUSS|TPC-C|TPC-D",
            spec.workload
        ))
    })?;
    let scale = Scale::parse(&spec.scale).ok_or_else(|| {
        ServeError::BadScale(format!("unknown scale '{}'; expected tiny|reduced|paper", spec.scale))
    })?;
    let sd = spec
        .sd_entries
        .map(|entries| {
            let sd = SwitchDirConfig { entries, ..SwitchDirConfig::paper_default() };
            sd.validate().map_err(ServeError::BadSdSize).map(|()| sd)
        })
        .transpose()?;
    // The full config check (node count vs switch radix, cache geometry)
    // runs against the simulator the workload will actually use.
    if kind.is_trace_driven() {
        if let Some(p) = spec.protocol.filter(|&p| p != dresar_types::Protocol::Msi) {
            return Err(ServeError::BadField(format!(
                "workload '{}' is trace-driven (constant-latency model, MSI only; \
                 protocol '{p}' needs the execution-driven simulator)",
                spec.workload
            )));
        }
        let mut cfg = TraceSimConfig::paper_table3();
        cfg.nodes = spec.nodes as usize;
        cfg.switch_dir = sd;
        cfg.validate().map_err(ServeError::BadTopology)?;
    } else {
        let mut cfg = SystemConfig::paper_table2();
        cfg.nodes = spec.nodes as usize;
        cfg.switch_dir = sd;
        cfg.validate().map_err(ServeError::BadTopology)?;
    }
    let faults = match &spec.faults {
        None => None,
        Some(plan) if kind.is_trace_driven() => {
            return Err(ServeError::FaultsUnsupported(format!(
                "workload '{}' is trace-driven (constant-latency model, no message system to \
                 inject '{plan}' into)",
                spec.workload
            )));
        }
        Some(plan) => Some(
            FaultPlan::parse(plan)
                .map_err(|e| ServeError::BadFaults(format!("bad fault plan '{plan}': {e}")))?,
        ),
    };
    Ok(ValidatedSpec { spec: spec.clone(), kind, scale, sd, faults })
}

impl ValidatedSpec {
    /// The underlying request.
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }

    /// Generates the workload streams for this request. Scientific kernels
    /// are pure functions of (processors, scale); commercial traces also
    /// fold in the request seed, exactly like the bench suite.
    fn workload(&self) -> Workload {
        let p = self.spec.nodes as usize;
        match self.kind {
            Kind::Fft => scientific::fft(p, self.scale.fft_points()),
            Kind::Tc => scientific::tc(p, self.scale.matrix_n()),
            Kind::Sor => scientific::sor(p, self.scale.grid_n(), self.scale.sor_iters()),
            Kind::Fwa => scientific::fwa(p, self.scale.matrix_n()),
            Kind::Gauss => scientific::gauss(p, self.scale.matrix_n()),
            Kind::Tpcc => commercial::tpcc(p, self.scale.commercial_refs(), self.spec.seed),
            Kind::Tpcd => {
                commercial::tpcd(p, self.scale.commercial_refs(), self.spec.seed ^ 0x9e37_79b9)
            }
        }
    }

    /// Runs the simulation and serializes the complete response body
    /// (trailing newline included). Deterministic: equal specs produce
    /// byte-identical bodies.
    pub fn execute(&self) -> Result<String, ServeError> {
        self.execute_full(false).map(|out| out.body)
    }

    /// [`ValidatedSpec::execute`] plus the observability side channels:
    /// the flight-recorder dump when the run was anomalous, and — when
    /// `traced` — the simulator's Chrome-trace document, pulled out of the
    /// report so the body itself stays identical to an untraced run.
    pub fn execute_full(&self, traced: bool) -> Result<ExecOutput, ServeError> {
        let workload = self.workload();
        let mut flight = None;
        let mut trace = None;
        let (driver, report_json) = if self.kind.is_trace_driven() {
            let mut cfg = TraceSimConfig::paper_table3();
            cfg.nodes = self.spec.nodes as usize;
            cfg.switch_dir = self.sd;
            let report = TraceSimulator::new(cfg).run(&workload);
            ("trace", report.to_json())
        } else {
            let mut cfg = SystemConfig::paper_table2();
            cfg.nodes = self.spec.nodes as usize;
            cfg.switch_dir = self.sd;
            cfg.protocol = self.spec.protocol.unwrap_or_default();
            let mut options = RunOptions {
                transient_policy: TransientReadPolicy::Retry,
                faults: self.faults,
                watchdog: self.faults.as_ref().map(|_| WatchdogConfig::default()),
                verify_coherence: self.faults.is_some(),
                ..RunOptions::default()
            };
            options.observers.trace = traced;
            let mut report = System::new(cfg, &workload).run(options);
            if let Some(obs) = report.obs.as_mut() {
                flight = obs.flight.as_ref().map(|f| f.to_json().dump());
                trace = obs.trace.take();
                if obs.is_empty() {
                    report.obs = None;
                }
            }
            ("execution", report.to_json())
        };
        let mut body = dresar_bench::json_doc("dresar-serve")
            .field("digest", self.spec.digest_hex().as_str())
            .field("driver", driver)
            .field("spec", self.spec.to_json())
            .field("report", report_json)
            .build()
            .dump();
        body.push('\n');
        Ok(ExecOutput { body, flight, trace })
    }
}

/// Everything one execution yields beyond its serialized body.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// The complete response body (trailing newline included).
    pub body: String,
    /// Serialized flight-recorder dump, present when the run was anomalous
    /// (watchdog trip, coherence failure, lost messages, sim errors).
    pub flight: Option<String>,
    /// The simulator's Chrome-trace event document, present when tracing
    /// was requested (execution-driven workloads only — the trace-driven
    /// model has no message system to trace).
    pub trace: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates() {
        let v = validate(&RunSpec::default()).expect("default spec is servable");
        assert_eq!(v.kind, Kind::Fft);
        assert_eq!(v.scale, Scale::Tiny);
    }

    #[test]
    fn each_semantic_failure_gets_its_own_code() {
        let cases: Vec<(RunSpec, &str)> = vec![
            (RunSpec { workload: "LINPACK".into(), ..RunSpec::default() }, "bad_workload"),
            (RunSpec { scale: "huge".into(), ..RunSpec::default() }, "bad_scale"),
            (RunSpec { nodes: 12, ..RunSpec::default() }, "bad_topology"),
            (RunSpec { sd_entries: Some(100), ..RunSpec::default() }, "bad_sd_size"),
            (RunSpec { faults: Some("warp=9".into()), ..RunSpec::default() }, "bad_faults"),
            (
                RunSpec {
                    workload: "TPC-C".into(),
                    faults: Some("drop_ppm=10".into()),
                    ..RunSpec::default()
                },
                "faults_unsupported",
            ),
        ];
        for (spec, code) in cases {
            let err = validate(&spec).expect_err("spec must be rejected");
            assert_eq!(err.code(), code, "spec {spec:?}");
        }
    }

    #[test]
    fn protocol_threads_through_and_trace_driven_rejects() {
        let spec = RunSpec { protocol: Some(dresar_types::Protocol::Mesi), ..RunSpec::default() };
        validate(&spec).expect("execution-driven spec accepts a protocol override");

        let trace = RunSpec {
            workload: "TPC-C".into(),
            protocol: Some(dresar_types::Protocol::Mesi),
            ..RunSpec::default()
        };
        let err = validate(&trace).expect_err("trace-driven spec must reject non-MSI protocols");
        assert_eq!(err.code(), "bad_field");

        let trace_msi = RunSpec {
            workload: "TPC-C".into(),
            protocol: Some(dresar_types::Protocol::Msi),
            ..RunSpec::default()
        };
        validate(&trace_msi).expect("explicit MSI matches the trace-driven default");
    }

    #[test]
    fn execution_is_deterministic_per_digest() {
        let spec = RunSpec { sd_entries: Some(256), ..RunSpec::default() };
        let a = validate(&spec).unwrap().execute().unwrap();
        let b = validate(&spec).unwrap().execute().unwrap();
        assert_eq!(a, b, "equal specs must serialize byte-identically");
        let doc = dresar_types::JsonValue::parse(&a).unwrap();
        assert_eq!(
            doc.get("digest").and_then(dresar_types::JsonValue::as_str),
            Some(spec.digest_hex().as_str())
        );
        assert!(doc.get("report").and_then(|r| r.get("cycles")).is_some());
    }

    #[test]
    fn trace_driven_workloads_serve_trace_reports() {
        let spec = RunSpec { workload: "TPC-C".into(), ..RunSpec::default() };
        let body = validate(&spec).unwrap().execute().unwrap();
        let doc = dresar_types::JsonValue::parse(&body).unwrap();
        assert_eq!(doc.get("driver").and_then(dresar_types::JsonValue::as_str), Some("trace"));
        assert!(doc.get("report").and_then(|r| r.get("exec_cycles")).is_some());
    }
}
