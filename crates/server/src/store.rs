//! Durable content-addressed result store: the disk tier under the
//! in-memory [`crate::ResultCache`].
//!
//! The same determinism argument that makes the LRU sound makes the disk
//! tier sound: equal [`dresar_types::RunSpec`] digests produce
//! byte-identical bodies, so a stored result never needs invalidation —
//! only *verification*. Each result lives in its own file named by the
//! spec digest and framed so that every way a file can be wrong on disk is
//! detected on read:
//!
//! ```text
//! <digest:016x>.result :=
//!     magic   "DRSR\x01"            (5 bytes — wrong/old format detected)
//!     digest  u64 LE                (must match the filename's digest)
//!     len     u64 LE                (body length — truncation detected)
//!     body    len bytes             (the serialized response document)
//!     check   u64 LE                (FNV-1a over body — bit flips detected)
//! ```
//!
//! Writes go through a temp file in the same directory followed by an
//! atomic rename, so a crash mid-write leaves either the previous state or
//! a stray `.tmp` file (swept at boot) — never a half-written `.result`
//! that a later boot would have to trust. A corrupt entry is *quarantined*
//! (renamed to `<name>.corrupt`, counted) rather than deleted or served:
//! the request falls through to a fresh execution, and the evidence stays
//! on disk for inspection.
//!
//! The store holds bodies only. In-flight coalescing state is deliberately
//! not durable — a flight is a promise between live connections, and a
//! crash voids it honestly (clients retry; see DESIGN §13).

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 5] = b"DRSR\x01";

/// Serialized results larger than this are refused by [`ResultStore::save`]
/// (and treated as corrupt on load): a framing `len` beyond it means a
/// damaged header, not a real body, so the reader never allocates from a
/// lie.
const MAX_BODY_BYTES: u64 = 256 * 1024 * 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the stored body — the integrity check, independent of the
/// spec digest in the filename (which addresses the *request*, not the
/// bytes).
fn body_check(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Why a stored entry could not be used. Everything here degrades to a
/// re-execution; nothing is fatal to the server.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error reading, writing, or renaming.
    Io(std::io::Error),
    /// The entry failed verification and was quarantined (renamed to
    /// `.corrupt`). The string says which check failed.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
            StoreError::Corrupt(why) => write!(f, "store entry corrupt: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One directory of digest-named result files plus its health counters.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    /// Distinct `.result` files believed present (boot scan + saves).
    entries: u64,
    /// Loads served from disk.
    hits: u64,
    /// Entries quarantined after failing verification.
    corrupt: u64,
    /// Monotone counter making temp names unique within this process.
    tmp_seq: u64,
}

impl ResultStore {
    /// Opens (creating if needed) the store directory, sweeps stray `.tmp`
    /// files from interrupted writes, and counts the existing entries —
    /// the warm-start scan that lets a restarted server answer previously
    /// computed digests without re-simulating.
    pub fn open(dir: &Path) -> Result<ResultStore, StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut entries = 0u64;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                // A crash between temp write and rename: the previous state
                // (absence) is the truth; the partial file is noise.
                let _ = std::fs::remove_file(entry.path());
            } else if name.ends_with(".result") {
                entries += 1;
            }
        }
        Ok(ResultStore { dir: dir.to_path_buf(), entries, hits: 0, corrupt: 0, tmp_seq: 0 })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `.result` files present (from the boot scan plus saves since).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// `(hits, corrupt)` — loads served from disk and entries quarantined.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.corrupt)
    }

    fn entry_path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.result"))
    }

    /// The on-disk path an entry for `digest` lives at (whether or not it
    /// exists). Exposed for the chaos harness and for operators inspecting
    /// quarantined files.
    pub fn path_of(&self, digest: u64) -> PathBuf {
        self.entry_path(digest)
    }

    /// Persists one result body under its digest: temp file in the same
    /// directory, fsync, atomic rename. Overwriting an existing entry is
    /// fine (determinism: the bytes are identical) and does not double
    /// count.
    pub fn save(&mut self, digest: u64, body: &str) -> Result<(), StoreError> {
        if body.len() as u64 > MAX_BODY_BYTES {
            return Err(StoreError::Io(std::io::Error::other(format!(
                "result body of {} bytes exceeds the {MAX_BODY_BYTES}-byte store cap",
                body.len()
            ))));
        }
        self.tmp_seq += 1;
        let tmp =
            self.dir.join(format!("{digest:016x}.{}.{}.tmp", std::process::id(), self.tmp_seq));
        let final_path = self.entry_path(digest);
        let existed = final_path.exists();
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&digest.to_le_bytes())?;
            f.write_all(&(body.len() as u64).to_le_bytes())?;
            f.write_all(body.as_bytes())?;
            f.write_all(&body_check(body.as_bytes()).to_le_bytes())?;
            f.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp, &final_path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        if !existed {
            self.entries += 1;
        }
        Ok(())
    }

    /// Loads and verifies the body stored for `digest`.
    ///
    /// `Ok(Some(body))` is a verified disk hit; `Ok(None)` means no entry;
    /// `Err(Corrupt)` means the entry failed a check and was quarantined
    /// (renamed to `.corrupt`, counted) — the caller re-executes.
    pub fn load(&mut self, digest: u64) -> Result<Option<String>, StoreError> {
        let path = self.entry_path(digest);
        let mut f = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut raw = Vec::new();
        f.read_to_end(&mut raw)?;
        drop(f);
        match verify(digest, &raw) {
            Ok(body) => {
                self.hits += 1;
                Ok(Some(body))
            }
            Err(why) => {
                self.quarantine(&path);
                Err(StoreError::Corrupt(why))
            }
        }
    }

    /// Whether an entry file exists for `digest` (no verification).
    pub fn contains(&self, digest: u64) -> bool {
        self.entry_path(digest).exists()
    }

    /// Moves a failed entry aside as `<name>.corrupt` so it cannot be
    /// served again but stays available for inspection. The count is
    /// exported as `serve.store_corrupt`.
    fn quarantine(&mut self, path: &Path) {
        let mut aside = path.as_os_str().to_owned();
        aside.push(".corrupt");
        if std::fs::rename(path, &aside).is_err() {
            // Rename failed (e.g. read-only dir): removing is the next-best
            // way to stop re-serving it; if even that fails the verify step
            // still rejects it on every future read.
            let _ = std::fs::remove_file(path);
        }
        self.entries = self.entries.saturating_sub(1);
        self.corrupt += 1;
    }
}

/// Checks every frame of a raw entry file against `digest`, returning the
/// body. Each failure mode names itself: the message lands in logs and in
/// the quarantine accounting.
fn verify(digest: u64, raw: &[u8]) -> Result<String, String> {
    let header = MAGIC.len() + 8 + 8;
    if raw.len() < header + 8 {
        return Err(format!("file too short ({} bytes) for framing", raw.len()));
    }
    if &raw[..MAGIC.len()] != MAGIC {
        return Err("bad magic (not a dresar result file, or an old format)".into());
    }
    let stored_digest = u64::from_le_bytes(raw[5..13].try_into().expect("8 bytes"));
    if stored_digest != digest {
        return Err(format!(
            "digest mismatch: file claims {stored_digest:016x}, name says {digest:016x}"
        ));
    }
    let len = u64::from_le_bytes(raw[13..21].try_into().expect("8 bytes"));
    if len > MAX_BODY_BYTES {
        return Err(format!("framed length {len} exceeds the {MAX_BODY_BYTES}-byte cap"));
    }
    let len = len as usize;
    let expected_total = header + len + 8;
    if raw.len() != expected_total {
        return Err(format!(
            "length mismatch: framing promises {expected_total} bytes, file has {}",
            raw.len()
        ));
    }
    let body = &raw[header..header + len];
    let check = u64::from_le_bytes(raw[header + len..].try_into().expect("8 bytes"));
    if body_check(body) != check {
        return Err("body checksum mismatch (bit flip or partial overwrite)".into());
    }
    String::from_utf8(body.to_vec()).map_err(|_| "body is not valid UTF-8".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("dresar-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_then_load_round_trips_byte_identically() {
        let dir = tmp_dir("roundtrip");
        let mut store = ResultStore::open(&dir).unwrap();
        let body = "{\"metrics\":{\"sim.cycles\":12345}}\n";
        store.save(0xdead_beef, body).unwrap();
        assert_eq!(store.entries(), 1);
        assert_eq!(store.load(0xdead_beef).unwrap().as_deref(), Some(body));
        assert_eq!(store.stats(), (1, 0));
        assert_eq!(store.load(0x1234).unwrap(), None, "absent digest is a clean miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_scans_existing_entries_and_serves_them() {
        let dir = tmp_dir("reopen");
        let body = "warm body";
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.save(7, body).unwrap();
            store.save(8, "other").unwrap();
        }
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.entries(), 2, "boot scan counts surviving entries");
        assert_eq!(store.load(7).unwrap().as_deref(), Some(body));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_quarantined_not_served() {
        let dir = tmp_dir("truncate");
        let mut store = ResultStore::open(&dir).unwrap();
        store.save(42, "a body long enough to truncate meaningfully").unwrap();
        let path = dir.join(format!("{:016x}.result", 42));
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();
        match store.load(42) {
            Err(StoreError::Corrupt(why)) => assert!(why.contains("length mismatch"), "{why}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        assert!(!path.exists(), "corrupt entry renamed aside");
        assert!(
            path.with_extension("result.corrupt").exists(),
            "quarantined file kept for inspection"
        );
        assert_eq!(store.stats(), (0, 1));
        assert_eq!(store.load(42).unwrap(), None, "after quarantine the digest is a clean miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_the_body_is_quarantined() {
        let dir = tmp_dir("bitflip");
        let mut store = ResultStore::open(&dir).unwrap();
        store.save(9, "pristine result body").unwrap();
        let path = dir.join(format!("{:016x}.result", 9));
        let mut raw = std::fs::read(&path).unwrap();
        let mid = MAGIC.len() + 16 + 3; // inside the body
        raw[mid] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        match store.load(9) {
            Err(StoreError::Corrupt(why)) => assert!(why.contains("checksum"), "{why}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        assert_eq!(store.stats().1, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_mismatch_between_name_and_frame_is_quarantined() {
        let dir = tmp_dir("wrongname");
        let mut store = ResultStore::open(&dir).unwrap();
        store.save(1, "body of digest one").unwrap();
        // Rename digest 1's file to claim digest 2: the framed digest
        // catches a misfiled or maliciously renamed entry.
        std::fs::rename(
            dir.join(format!("{:016x}.result", 1)),
            dir.join(format!("{:016x}.result", 2)),
        )
        .unwrap();
        match store.load(2) {
            Err(StoreError::Corrupt(why)) => assert!(why.contains("digest mismatch"), "{why}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_files_are_swept_at_boot() {
        let dir = tmp_dir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let stray = dir.join("00000000000000aa.1.1.tmp");
        std::fs::write(&stray, b"half a write").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(!stray.exists(), "interrupted write swept");
        assert_eq!(store.entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_does_not_double_count_entries() {
        let dir = tmp_dir("overwrite");
        let mut store = ResultStore::open(&dir).unwrap();
        store.save(5, "same bytes").unwrap();
        store.save(5, "same bytes").unwrap();
        assert_eq!(store.entries(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
