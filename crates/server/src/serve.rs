//! The `dresar-serve` server: accept loop, request routing, and the three
//! serving mechanisms — content-addressed caching, in-flight coalescing,
//! and bounded admission.
//!
//! A `POST /run` request travels:
//!
//! 1. **Validate** — before touching any shared state; malformed requests
//!    cost one parse, never a queue slot.
//! 2. **Cache** — the spec's canonical digest indexes the bounded LRU
//!    [`ResultCache`]. A hit serves the stored body; determinism makes it
//!    byte-identical to a fresh run.
//! 3. **Coalesce** — misses consult the in-flight table. If an execution
//!    for the same digest is already queued or running, the request
//!    *attaches* to it (one engine execution, N responses) instead of
//!    re-running. The table entry is created before the job is submitted,
//!    under the same lock admission runs under, so there is no window in
//!    which two leaders can start for one digest.
//! 4. **Admit** — new digests are submitted to the bounded
//!    [`ServicePool`]. A full queue sheds the request with a structured
//!    429 `overloaded` error — published to the in-flight entry too, so
//!    any follower that attached in the same instant also gets the error
//!    instead of waiting forever.
//!
//! `GET /metrics` exposes the serving counters (`serve.cache_hits`,
//! `serve.coalesced`, `serve.shed`, `serve.queue_depth`, ...) as a
//! [`MetricsRegistry`] document plus a host section (uptime, peak RSS) in
//! the `hostprof` spirit: host numbers are informational and never
//! deterministic. `GET /metrics/stream` pushes the same registry as
//! chunked server-sent events at a configurable interval, each frame
//! carrying the counter deltas since the previous one (what
//! `dresar_client --watch` renders). `GET /healthz` answers liveness;
//! `POST /shutdown` triggers a graceful drain (stop admissions, finish
//! queued work, join workers).

use crate::cache::ResultCache;
use crate::chaos::{ServeChaos, ServeFaultPlan};
use crate::error::ServeError;
use crate::http::{
    read_request, write_response, write_response_with, write_sse_end, write_sse_event,
    write_sse_head, Request,
};
use crate::run::{validate, ExecOutput, ValidatedSpec};
use crate::store::ResultStore;
use dresar_bench::sweep::{catch_job_panic, ServicePool, SubmitError, SweepRunner};
use dresar_obs::{hostprof, log2_bucket, MetricValue, MetricsRegistry};
use dresar_types::{FastMap, FromJson, JsonValue, RunSpec, ToJson};
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Number of log2 buckets in the service-time histogram (microseconds).
const SERVICE_HIST_BUCKETS: usize = 40;

/// Cap on distinct per-digest latency histograms kept in `/metrics`;
/// at the cap a new digest evicts the least-recently-updated histogram
/// (counted by `serve.hist_digests_evicted`), so a hot digest arriving
/// late still gets a histogram while the registry stays bounded against
/// digest churn.
const MAX_DIGEST_HISTS: usize = 64;

/// Default `GET /metrics/stream` frame interval when the query string does
/// not set `interval_ms`.
const STREAM_DEFAULT_INTERVAL_MS: u64 = 1000;

/// The `pid` server request spans use in merged Perfetto documents —
/// far from the simulator's pids 0..2, so the serving timeline renders as
/// its own process.
const PID_SERVER: u32 = 100;

/// Default cap on (and default value of) a request's compute deadline.
/// Generous: tier-1 runs tiny workloads in debug builds. Requests lower it
/// per-spec via `deadline_ms`; [`ServerConfig::max_deadline`] caps what
/// they may ask for.
const DEFAULT_MAX_DEADLINE: Duration = Duration::from_secs(600);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded admission queue depth; submissions beyond it are shed.
    pub queue_depth: usize,
    /// Engine worker threads; 0 sizes by [`SweepRunner::from_env`]
    /// (`DRESAR_SWEEP_THREADS`, else one per core).
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_entries: usize,
    /// Start with the engine workers paused (requests queue and coalesce
    /// but nothing executes until [`Server::resume_workers`]). Tests use
    /// this to make concurrency assertions deterministic.
    pub start_paused: bool,
    /// Directory for the durable result store ([`ResultStore`]); `None`
    /// serves memory-only, exactly as before the disk tier existed.
    pub store_dir: Option<std::path::PathBuf>,
    /// Upper bound on (and default for) per-request compute deadlines. A
    /// spec's `deadline_ms` is clamped to this; specs without one get it
    /// whole.
    pub max_deadline: Duration,
    /// Seeded serve-tier fault injection; `None` (the default) injects
    /// nothing. Test/CI-only — the binary arms it behind an explicit
    /// `--chaos` flag or `DRESAR_SERVE_CHAOS` env var.
    pub chaos: Option<ServeFaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_depth: 64,
            workers: 0,
            cache_entries: 128,
            start_paused: false,
            store_dir: None,
            max_deadline: DEFAULT_MAX_DEADLINE,
            chaos: None,
        }
    }
}

/// A finished execution as published to waiting requests: the shared body
/// plus the phase timings every attached request reports.
#[derive(Debug, Clone)]
struct RunOutcome {
    body: Arc<String>,
    /// Microseconds the job waited in the admission queue.
    queue_us: u64,
    /// Microseconds the engine execution (and serialization) took.
    exec_us: u64,
}

/// One pending result that any number of requests await.
#[derive(Debug)]
struct Flight<T> {
    result: Mutex<Option<Result<T, ServeError>>>,
    ready: Condvar,
}

impl<T> Default for Flight<T> {
    fn default() -> Self {
        Flight { result: Mutex::new(None), ready: Condvar::new() }
    }
}

impl<T: Clone> Flight<T> {
    fn publish(&self, result: Result<T, ServeError>) {
        *lock_recover(&self.result) = Some(result);
        self.ready.notify_all();
    }

    /// Waits for the result until `deadline`. Each waiter enforces its
    /// *own* deadline here — a coalesced follower with a tighter deadline
    /// than the leader gives up on time even though the shared execution
    /// keeps running (and lands in the cache for its retry).
    fn wait(&self, deadline: Instant, deadline_ms: u64) -> Result<T, ServeError> {
        let mut slot = lock_recover(&self.result);
        while slot.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ServeError::DeadlineExceeded { deadline_ms, at: "waiting" });
            }
            let (guard, _) =
                self.ready.wait_timeout(slot, left).unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
        slot.as_ref().expect("checked above").clone()
    }
}

/// Poison-tolerant lock: serving state must stay usable after a panic
/// elsewhere — the panic is already contained and counted; cascading a
/// poisoned mutex into every later request would turn one bug into an
/// outage.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The effective compute deadline for a request: the spec's `deadline_ms`
/// clamped to the server cap, or the whole cap when the spec sets none.
fn effective_deadline_ms(spec: &RunSpec, max_deadline: Duration) -> u64 {
    let cap = us(max_deadline) / 1000;
    spec.deadline_ms.map_or(cap, |d| d.clamp(1, cap.max(1)))
}

/// One in-flight coalesced execution that same-digest requests share.
type InFlight = Flight<RunOutcome>;

/// Serving counters, all monotone and lock-free on the request path.
#[derive(Debug)]
struct ServeMetrics {
    requests: AtomicU64,
    run_requests: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    executions: AtomicU64,
    errors: AtomicU64,
    inflight_peak: AtomicU64,
    /// Executions whose panic the per-job guard converted into a
    /// structured 500 (`internal_panic`); the worker survived each one.
    worker_panics: AtomicU64,
    /// Jobs whose deadline expired while still queued (dequeue-time check;
    /// no worker time was burned) plus waits that timed out.
    deadline_expired: AtomicU64,
    /// Store writes that failed (injected or real I/O errors); the result
    /// was still served from memory, only durability was lost.
    store_write_errors: AtomicU64,
    /// `GET /metrics/stream` connections accepted.
    metric_streams: AtomicU64,
    service_us_hist: Mutex<[u64; SERVICE_HIST_BUCKETS]>,
    /// Per-digest service-time histograms (bounded at [`MAX_DIGEST_HISTS`]
    /// with least-recently-updated eviction).
    digest_us_hists: Mutex<DigestHists>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            requests: AtomicU64::new(0),
            run_requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            inflight_peak: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            store_write_errors: AtomicU64::new(0),
            metric_streams: AtomicU64::new(0),
            service_us_hist: Mutex::new([0; SERVICE_HIST_BUCKETS]),
            digest_us_hists: Mutex::new(DigestHists::default()),
        }
    }
}

/// One digest's service-time histogram plus its recency stamp.
#[derive(Debug)]
struct DigestHist {
    buckets: [u64; SERVICE_HIST_BUCKETS],
    last_touch: u64,
}

/// Bounded per-digest service-time histograms. `BTreeMap` keeps `/metrics`
/// emission sorted by digest; the logical clock orders evictions.
#[derive(Debug, Default)]
struct DigestHists {
    clock: u64,
    /// Histograms dropped to admit newer digests at the cap.
    evicted: u64,
    hists: BTreeMap<u64, DigestHist>,
}

impl DigestHists {
    /// Records one observation. At [`MAX_DIGEST_HISTS`] a new digest
    /// evicts the least-recently-updated histogram instead of being
    /// silently dropped, so late-arriving hot digests are still tracked.
    fn record(&mut self, digest: u64, bucket: usize) {
        self.clock += 1;
        if !self.hists.contains_key(&digest) && self.hists.len() >= MAX_DIGEST_HISTS {
            let coldest = self
                .hists
                .iter()
                .min_by_key(|(_, h)| h.last_touch)
                .map(|(&d, _)| d)
                .expect("map is nonempty at the cap");
            self.hists.remove(&coldest);
            self.evicted += 1;
        }
        let h = self
            .hists
            .entry(digest)
            .or_insert(DigestHist { buckets: [0; SERVICE_HIST_BUCKETS], last_touch: 0 });
        h.buckets[bucket] += 1;
        h.last_touch = self.clock;
    }
}

struct Shared {
    pool: ServicePool,
    cache: Mutex<ResultCache>,
    /// Disk tier under the LRU; `None` when no `--store-dir` was given.
    store: Option<Mutex<ResultStore>>,
    inflight: Mutex<FastMap<u64, Arc<InFlight>>>,
    metrics: ServeMetrics,
    shutting_down: AtomicBool,
    started: Instant,
    /// Server cap on per-request compute deadlines.
    max_deadline: Duration,
    /// Armed fault injection; `None` in every production configuration.
    chaos: Option<ServeChaos>,
    /// Most recent flight-recorder dump deposited by an anomalous run,
    /// served verbatim by `GET /debug/flight`.
    last_flight: Mutex<Option<Arc<String>>>,
}

/// A running `dresar-serve` instance. Construct with [`Server::start`];
/// stop with [`Server::shutdown`] (graceful drain) or by `POST /shutdown`
/// plus [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn start(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Nonblocking accept + short sleep: lets the acceptor observe the
        // shutdown flag without platform-specific signal machinery.
        listener.set_nonblocking(true)?;
        let runner = if cfg.workers == 0 {
            SweepRunner::from_env()
        } else {
            SweepRunner::with_threads(cfg.workers)
        };
        // Warm-start: opening the store scans existing entries, so a
        // restarted server answers previously computed digests from disk.
        let store = match &cfg.store_dir {
            Some(dir) => Some(Mutex::new(
                ResultStore::open(dir).map_err(|e| std::io::Error::other(e.to_string()))?,
            )),
            None => None,
        };
        let shared = Arc::new(Shared {
            pool: ServicePool::start(runner, cfg.queue_depth, cfg.start_paused),
            cache: Mutex::new(ResultCache::new(cfg.cache_entries)),
            store,
            inflight: Mutex::new(FastMap::default()),
            metrics: ServeMetrics::default(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            max_deadline: cfg.max_deadline,
            chaos: cfg.chaos.filter(ServeFaultPlan::is_active).map(ServeChaos::arm),
            last_flight: Mutex::new(None),
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &shared, &conns))
        };
        Ok(Server { shared, addr: local, acceptor: Some(acceptor), conns })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Releases engine workers started paused (see
    /// [`ServerConfig::start_paused`]).
    pub fn resume_workers(&self) {
        self.shared.pool.resume();
    }

    /// A point-in-time snapshot of the serving metrics (same registry the
    /// `/metrics` endpoint serves).
    pub fn metrics(&self) -> MetricsRegistry {
        snapshot(&self.shared)
    }

    /// Graceful shutdown: stop accepting, drain queued executions, join
    /// every thread. Idempotent with a prior `POST /shutdown`.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.join_inner();
    }

    /// Blocks until the server shuts down (via [`Server::shutdown`] from
    /// another handle is impossible — `self` is owned — so in practice:
    /// until a client `POST /shutdown` arrives), then drains.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        // A poisoned acceptor or handler thread must not abort the drain:
        // count the casualty and keep shutting down — every remaining
        // thread still gets joined and every queued job still runs.
        if let Some(a) = self.acceptor.take() {
            if a.join().is_err() {
                self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        // New connections are no longer accepted; finish the ones in
        // flight (their queued executions run to completion in drain).
        let report = self.shared.pool.drain();
        if !report.clean() {
            eprintln!(
                "dresar-serve: unclean drain: {} worker(s) lost, {} job(s) abandoned",
                report.workers_lost, report.jobs_abandoned
            );
        }
        let handles: Vec<_> = std::mem::take(&mut *lock_recover(&self.conns));
        for h in handles {
            if h.join().is_err() {
                self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || handle_conn(stream, &shared));
                let mut reg = lock_recover(conns);
                // Opportunistically reap finished handlers so the registry
                // does not grow with total connections served.
                reg.retain(|h| !h.is_finished());
                reg.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One routed response: status, content type, extra headers, body.
struct Reply {
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply { status, content_type: "application/json", headers: Vec::new(), body }
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(&mut stream, &e);
            return;
        }
    };
    // The streaming route writes the socket itself (chunked SSE frames);
    // everything else goes through the Content-Length reply path.
    if request.method == "GET" && request.route().0 == "/metrics/stream" {
        serve_metrics_stream(&mut stream, &request, shared);
        return;
    }
    match route(&request, shared) {
        Ok(reply) => {
            let _ = write_response_with(
                &mut stream,
                reply.status,
                reply.content_type,
                &reply.headers,
                &reply.body,
            );
        }
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(&mut stream, &e);
        }
    }
}

/// Writes a structured error reply, with a `Retry-After` header on every
/// retryable failure (429 `overloaded`, 503 `shutting_down` /
/// `deadline_exceeded`) so well-behaved clients back off instead of
/// hammering.
fn write_error(stream: &mut TcpStream, e: &ServeError) -> std::io::Result<()> {
    match e.retry_after() {
        Some(secs) => write_response_with(
            stream,
            e.status(),
            "application/json",
            &[("Retry-After", secs.to_string())],
            &e.body(),
        ),
        None => write_response(stream, e.status(), &e.body()),
    }
}

fn route(request: &Request, shared: &Arc<Shared>) -> Result<Reply, ServeError> {
    let (path, query) = request.route();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Ok(Reply::json(200, healthz_body(shared))),
        ("GET", "/metrics") => {
            // Content negotiation: Prometheus text exposition on
            // `?format=prom` or an Accept preferring text/plain; the
            // JSON document otherwise.
            let wants_prom = query.split('&').any(|kv| kv == "format=prom")
                || request.header("accept").is_some_and(|a| a.contains("text/plain"));
            if wants_prom {
                Ok(Reply {
                    status: 200,
                    content_type: "text/plain; version=0.0.4",
                    headers: Vec::new(),
                    body: snapshot(shared).to_prometheus(),
                })
            } else {
                Ok(Reply::json(200, metrics_body(shared)))
            }
        }
        ("GET", "/debug/flight") => {
            let dump = lock_recover(&shared.last_flight).clone();
            match dump {
                Some(body) => Ok(Reply::json(200, (*body).clone())),
                None => Err(ServeError::FlightUnavailable),
            }
        }
        ("POST", "/run") => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return Err(ServeError::ShuttingDown);
            }
            if let Some(trace_id) = request.header("x-dresar-trace") {
                let trace_id = trace_id.to_string();
                return serve_run_traced(&request.body, &trace_id, shared);
            }
            let t0 = Instant::now();
            let out = serve_run(&request.body, shared);
            out.map(|(served, digest)| {
                record_service_time(shared, digest, t0.elapsed());
                let mut reply = Reply::json(200, served.body);
                reply.headers = match served.source {
                    RunSource::Cache => vec![("X-Dresar-Cache", "hit".to_string())],
                    RunSource::Disk => vec![("X-Dresar-Cache", "disk".to_string())],
                    RunSource::Executed { queue_us, exec_us } => vec![
                        ("X-Dresar-Cache", "miss".to_string()),
                        ("X-Dresar-Queue-Us", queue_us.to_string()),
                        ("X-Dresar-Exec-Us", exec_us.to_string()),
                    ],
                };
                reply
            })
        }
        ("POST", "/shutdown") => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            Ok(Reply::json(200, "{\"draining\":true}\n".to_string()))
        }
        ("GET" | "POST", _) => {
            Err(ServeError::NotFound(format!("no route for '{}'", request.path)))
        }
        (m, _) => Err(ServeError::MethodNotAllowed(format!("method '{m}' not supported"))),
    }
}

/// Where a `/run` body came from, with phase timings when it was executed
/// (coalesced followers report the shared execution's timings).
enum RunSource {
    Cache,
    /// Served from the durable store after a restart (or an LRU eviction):
    /// the body was verified against its framing before being trusted.
    Disk,
    Executed {
        /// Microseconds the execution waited in the admission queue.
        queue_us: u64,
        /// Microseconds the engine run and serialization took.
        exec_us: u64,
    },
}

struct ServedRun {
    body: String,
    source: RunSource,
}

/// The `/run` pipeline: parse, validate, cache, store, coalesce, admit,
/// wait — each tier falling through to the next on a miss.
fn serve_run(body: &str, shared: &Arc<Shared>) -> Result<(ServedRun, u64), ServeError> {
    shared.metrics.run_requests.fetch_add(1, Ordering::Relaxed);
    let spec = parse_spec(body)?;
    let validated = validate(&spec)?;
    let digest = spec.digest();
    let deadline_ms = effective_deadline_ms(&spec, shared.max_deadline);
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);

    if let Some(cached) = lock_recover(&shared.cache).get(digest) {
        shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((ServedRun { body: (*cached).clone(), source: RunSource::Cache }, digest));
    }

    // Disk tier: a verified hit repopulates the LRU (so the next request is
    // a memory hit) and is served with the `disk` cache marker. A corrupt
    // entry was quarantined inside `load` — fall through and re-execute.
    if let Some(stored) = store_load(shared, digest) {
        lock_recover(&shared.cache).insert(digest, Arc::clone(&stored));
        return Ok((ServedRun { body: (*stored).clone(), source: RunSource::Disk }, digest));
    }

    let flight =
        attach_or_lead(digest, spec.digest_hex(), validated, deadline, deadline_ms, shared)?;
    let outcome = flight.wait(deadline, deadline_ms)?;
    Ok((
        ServedRun {
            body: (*outcome.body).clone(),
            source: RunSource::Executed { queue_us: outcome.queue_us, exec_us: outcome.exec_us },
        },
        digest,
    ))
}

/// Loads `digest` from the disk tier, if one is configured. Chaos may
/// corrupt the entry's bytes first — which must surface as a quarantine
/// (counted in `serve.store_corrupt`), never as served garbage.
fn store_load(shared: &Shared, digest: u64) -> Option<Arc<String>> {
    let store = shared.store.as_ref()?;
    let mut store = lock_recover(store);
    if let Some(chaos) = &shared.chaos {
        if store.contains(digest) && chaos.corrupt_store_read() {
            corrupt_entry_on_disk(&store.path_of(digest));
        }
    }
    match store.load(digest) {
        Ok(hit) => hit.map(Arc::new),
        // Io or Corrupt: either way the store already accounted for it and
        // the entry cannot be served; re-executing is the honest fallback.
        Err(_) => None,
    }
}

/// Chaos helper: flips one bit of the last body byte on disk, so the
/// store's checksum verification must catch it.
fn corrupt_entry_on_disk(path: &std::path::Path) {
    if let Ok(mut raw) = std::fs::read(path) {
        // The final 8 bytes are the checksum frame; byte len-9 is the last
        // body byte, so the flip damages the body, not the framing.
        if let Some(i) = raw.len().checked_sub(9) {
            raw[i] ^= 0x01;
            let _ = std::fs::write(path, raw);
        }
    }
}

/// Persists a freshly computed body to the disk tier (write-through under
/// the LRU). Failures cost durability, never the response: the error is
/// counted and the in-memory result is served regardless.
fn store_save(shared: &Shared, digest: u64, body: &str) {
    let Some(store) = shared.store.as_ref() else { return };
    if shared.chaos.as_ref().is_some_and(ServeChaos::fail_store_write) {
        shared.metrics.store_write_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if lock_recover(store).save(digest, body).is_err() {
        shared.metrics.store_write_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Joins the in-flight execution for `digest`, creating and admitting it
/// if this request is the first (the "leader"). Holding the in-flight lock
/// across admission closes both races: two leaders for one digest, and a
/// follower attaching to an entry that was shed between insert and submit.
fn attach_or_lead(
    digest: u64,
    digest_hex: String,
    validated: ValidatedSpec,
    deadline: Instant,
    deadline_ms: u64,
    shared: &Arc<Shared>,
) -> Result<Arc<InFlight>, ServeError> {
    let mut inflight = lock_recover(&shared.inflight);
    if let Some(existing) = inflight.get(&digest) {
        shared.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(existing));
    }
    let flight = Arc::new(InFlight::default());
    inflight.insert(digest, Arc::clone(&flight));
    let peak = inflight.len() as u64;
    shared.metrics.inflight_peak.fetch_max(peak, Ordering::Relaxed);

    let job = {
        let shared = Arc::clone(shared);
        let flight = Arc::clone(&flight);
        let digest_hex = digest_hex.clone();
        let submitted = Instant::now();
        Box::new(move || {
            // Dequeue-time deadline check: a job whose leader's deadline
            // expired while it sat queued is answered 503 without burning
            // a worker on a result nobody is waiting for.
            if Instant::now() >= deadline {
                shared.metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
                lock_recover(&shared.inflight).remove(&digest);
                flight.publish(Err(ServeError::DeadlineExceeded { deadline_ms, at: "queued" }));
                return;
            }
            let queue_us = us(submitted.elapsed());
            shared.metrics.executions.fetch_add(1, Ordering::Relaxed);
            let t_exec = Instant::now();
            // Panic isolation: an engine panic (or an injected chaos
            // panic) is contained here, converted to a structured 500
            // published to every waiter — the worker and the pool survive.
            let result = match catch_job_panic(|| {
                if let Some(chaos) = &shared.chaos {
                    if chaos.before_exec() {
                        panic!("chaos: injected worker panic");
                    }
                }
                validated.execute_full(false)
            }) {
                Ok(executed) => executed,
                Err(SubmitError::JobPanicked { message }) => {
                    shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::JobPanicked { digest: digest_hex.clone(), message })
                }
                Err(other) => Err(ServeError::Internal(format!("job guard: {other:?}"))),
            };
            let exec_us = us(t_exec.elapsed());
            let result = result.map(|out| {
                deposit_flight(&shared, out.flight.as_deref());
                RunOutcome { body: Arc::new(out.body), queue_us, exec_us }
            });
            if let Ok(outcome) = &result {
                lock_recover(&shared.cache).insert(digest, Arc::clone(&outcome.body));
                store_save(&shared, digest, &outcome.body);
            }
            // Unregister before publishing: a request arriving after this
            // point must hit the cache (or start a fresh run), never attach
            // to a completed flight.
            lock_recover(&shared.inflight).remove(&digest);
            flight.publish(result);
        })
    };
    match shared.pool.try_submit(job) {
        Ok(()) => Ok(flight),
        Err(submit_err) => {
            inflight.remove(&digest);
            let err = match submit_err {
                SubmitError::QueueFull { queue_depth } => ServeError::Overloaded { queue_depth },
                SubmitError::ShuttingDown => ServeError::ShuttingDown,
                SubmitError::JobPanicked { message } => {
                    ServeError::JobPanicked { digest: digest_hex.clone(), message }
                }
            };
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            // Any follower that attached before this lock was taken gets
            // the same structured error instead of waiting forever.
            flight.publish(Err(err.clone()));
            Err(err)
        }
    }
}

/// The traced `/run` pipeline (`X-Dresar-Trace` header). Admission runs
/// the same phases — parse/validate, cache lookup, bounded queue — but the
/// execution is instrumented and never shared: the cache verdict is
/// recorded yet bypassed and the run does not register in the in-flight
/// table, because the merged-trace response is request-specific. The body
/// is one Chrome-trace/Perfetto document: server request spans (pid
/// [`PID_SERVER`]) plus the simulator's causal spans, linked by the trace
/// id and spec digest carried in every server span's args.
fn serve_run_traced(body: &str, trace_id: &str, shared: &Arc<Shared>) -> Result<Reply, ServeError> {
    let t0 = Instant::now();
    shared.metrics.run_requests.fetch_add(1, Ordering::Relaxed);
    let spec = parse_spec(body)?;
    let validated = validate(&spec)?;
    let digest = spec.digest();
    let digest_hex = spec.digest_hex();
    let deadline_ms = effective_deadline_ms(&spec, shared.max_deadline);
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    let admit_end = us(t0.elapsed());

    let cache_hit = lock_recover(&shared.cache).get(digest).is_some();
    let cache_end = us(t0.elapsed());

    // Real queue wait: the instrumented run goes through the same bounded
    // admission as every other execution.
    let flight: Arc<Flight<(ExecOutput, u64, u64)>> = Arc::default();
    let submit_off = us(t0.elapsed());
    let job = {
        let shared = Arc::clone(shared);
        let flight = Arc::clone(&flight);
        let submitted = Instant::now();
        let digest_hex = digest_hex.clone();
        Box::new(move || {
            let queue_us = us(submitted.elapsed());
            shared.metrics.executions.fetch_add(1, Ordering::Relaxed);
            let t_exec = Instant::now();
            let result = match catch_job_panic(|| validated.execute_full(true)) {
                Ok(executed) => executed,
                Err(SubmitError::JobPanicked { message }) => {
                    shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::JobPanicked { digest: digest_hex, message })
                }
                Err(other) => Err(ServeError::Internal(format!("job guard: {other:?}"))),
            };
            let exec_us = us(t_exec.elapsed());
            let result = result.map(|out| {
                deposit_flight(&shared, out.flight.as_deref());
                (out, queue_us, exec_us)
            });
            flight.publish(result);
        })
    };
    if let Err(submit_err) = shared.pool.try_submit(job) {
        shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
        return Err(match submit_err {
            SubmitError::QueueFull { queue_depth } => ServeError::Overloaded { queue_depth },
            SubmitError::ShuttingDown => ServeError::ShuttingDown,
            SubmitError::JobPanicked { message } => {
                ServeError::JobPanicked { digest: digest_hex.clone(), message }
            }
        });
    }
    let (out, queue_us, exec_us) = flight.wait(deadline, deadline_ms)?;

    let ser_off = us(t0.elapsed());
    let sim_events = out.trace.as_deref().map(trace_inner).unwrap_or_default();
    let serialize_us = us(t0.elapsed()).saturating_sub(ser_off);

    let tid_json = JsonValue::Str(trace_id.to_string()).dump();
    let span_args = format!("\"trace_id\":{tid_json},\"digest\":\"{digest_hex}\"");
    let mut events: Vec<String> = vec![
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_SERVER},\
             \"args\":{{\"name\":\"dresar-serve\"}}}}"
        ),
        format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_SERVER},\"tid\":1,\
             \"args\":{{\"name\":\"request\"}}}}"
        ),
    ];
    let phases: [(&str, u64, u64); 5] = [
        ("admission", 0, admit_end),
        ("cache_lookup", admit_end, cache_end.saturating_sub(admit_end)),
        ("queue_wait", submit_off, queue_us),
        ("execute", submit_off + queue_us, exec_us),
        ("serialize", ser_off, serialize_us),
    ];
    for (name, ts, dur) in phases {
        events.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":{PID_SERVER},\
             \"tid\":1,\"ts\":{ts},\"dur\":{dur},\"args\":{{{span_args}}}}}"
        ));
    }
    let phase_json = JsonValue::obj()
        .field("admission_us", admit_end)
        .field("cache_lookup_us", cache_end.saturating_sub(admit_end))
        .field("queue_wait_us", queue_us)
        .field("execute_us", exec_us)
        .field("serialize_us", serialize_us)
        .build();
    let meta = JsonValue::obj()
        .field("tool", "dresar-serve")
        .field("trace_id", trace_id)
        .field("digest", digest_hex.as_str())
        .field("cache_hit_bypassed", cache_hit)
        .field("sim_trace", out.trace.is_some())
        .field("phases_us", phase_json)
        .build();

    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&events.join(",\n"));
    if !sim_events.is_empty() {
        doc.push_str(",\n");
        doc.push_str(sim_events);
    }
    doc.push_str("\n],\n\"dresar\":");
    doc.push_str(&meta.dump());
    doc.push_str("}\n");

    record_service_time(shared, digest, t0.elapsed());
    Ok(Reply {
        status: 200,
        content_type: "application/json",
        headers: vec![
            ("X-Dresar-Trace", trace_id.to_string()),
            ("X-Dresar-Queue-Us", queue_us.to_string()),
            ("X-Dresar-Exec-Us", exec_us.to_string()),
        ],
        body: doc,
    })
}

/// `GET /metrics/stream`: pushes windowed metric snapshots as chunked
/// server-sent events until the client disconnects, the server drains, or
/// the requested frame count is reached.
///
/// Query parameters: `frames=N` bounds the stream to N events (0 or absent
/// streams until shutdown/disconnect); `interval_ms=M` sets the frame
/// interval (clamped to 10..60000, default
/// [`STREAM_DEFAULT_INTERVAL_MS`]).
///
/// Each event's `data:` line is one compact JSON object: `seq`, host
/// `uptime_seconds`, the full cumulative `metrics` registry, and `window`
/// — the counter deltas since the previous frame (first frame: since the
/// counters were zero), which is what makes the stream a rate view rather
/// than a monotone ramp.
fn serve_metrics_stream(stream: &mut TcpStream, request: &Request, shared: &Arc<Shared>) {
    let (_, query) = request.route();
    let mut frames = 0u64;
    let mut interval_ms = STREAM_DEFAULT_INTERVAL_MS;
    for kv in query.split('&') {
        if let Some((k, v)) = kv.split_once('=') {
            match k {
                "frames" => frames = v.parse().unwrap_or(frames),
                "interval_ms" => interval_ms = v.parse().unwrap_or(interval_ms),
                _ => {}
            }
        }
    }
    let interval = Duration::from_millis(interval_ms.clamp(10, 60_000));
    if write_sse_head(stream).is_err() {
        return;
    }
    shared.metrics.metric_streams.fetch_add(1, Ordering::Relaxed);
    let mut prev: Option<MetricsRegistry> = None;
    let mut seq = 0u64;
    loop {
        let snap = snapshot(shared);
        let mut window = JsonValue::obj();
        for (name, v) in snap.iter() {
            if let MetricValue::Counter(c) = v {
                let before = match prev.as_ref().and_then(|p| p.get(name)) {
                    Some(MetricValue::Counter(b)) => *b,
                    _ => 0,
                };
                window = window.field(name, c.saturating_sub(before));
            }
        }
        let payload = JsonValue::obj()
            .field("seq", seq)
            .field("uptime_seconds", shared.started.elapsed().as_secs_f64())
            .field("interval_ms", interval.as_millis() as u64)
            .field("metrics", snap.to_json())
            .field("window", window.build())
            .build()
            .dump();
        if write_sse_event(stream, &payload).is_err() {
            return; // client hung up mid-stream; nothing to terminate
        }
        prev = Some(snap);
        seq += 1;
        if (frames != 0 && seq >= frames) || shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        // Sleep in short steps so a drain is observed promptly even at
        // slow frame intervals.
        let wake = Instant::now() + interval;
        while Instant::now() < wake && !shared.shutting_down.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10).min(interval));
        }
    }
    let _ = write_sse_end(stream);
}

/// The event lines of a Tracer document (strips the enclosing JSON array
/// brackets so the events splice into a larger `traceEvents` array).
fn trace_inner(doc: &str) -> &str {
    let inner = doc.strip_prefix("[\n").unwrap_or(doc);
    let inner = inner.strip_suffix("\n]\n").unwrap_or(inner);
    inner.trim_matches('\n')
}

fn parse_spec(body: &str) -> Result<RunSpec, ServeError> {
    let json = JsonValue::parse(body)
        .map_err(|e| ServeError::BadJson(format!("request body is not JSON: {e}")))?;
    RunSpec::from_json(&json).map_err(|e| {
        if e.msg.starts_with("unknown field") {
            ServeError::UnknownField(e.msg)
        } else {
            ServeError::BadField(e.msg)
        }
    })
}

fn us(elapsed: Duration) -> u64 {
    elapsed.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Deposits an anomalous run's flight dump into the `/debug/flight` slot.
fn deposit_flight(shared: &Shared, flight: Option<&str>) {
    if let Some(dump) = flight {
        *lock_recover(&shared.last_flight) = Some(Arc::new(dump.to_string()));
    }
}

fn record_service_time(shared: &Shared, digest: u64, elapsed: Duration) {
    let bucket = log2_bucket(us(elapsed), SERVICE_HIST_BUCKETS);
    lock_recover(&shared.metrics.service_us_hist)[bucket] += 1;
    lock_recover(&shared.metrics.digest_us_hists).record(digest, bucket);
}

/// Assembles the serving registry: every admission/coalescing/cache
/// counter plus the pool's queue gauges. Purely monotone counters and
/// gauges — host wall-clock lives in the separate `host` section.
fn snapshot(shared: &Shared) -> MetricsRegistry {
    let m = &shared.metrics;
    let mut reg = MetricsRegistry::new();
    reg.counter("serve.requests", m.requests.load(Ordering::Relaxed));
    reg.counter("serve.run_requests", m.run_requests.load(Ordering::Relaxed));
    reg.counter("serve.cache_hits", m.cache_hits.load(Ordering::Relaxed));
    reg.counter("serve.coalesced", m.coalesced.load(Ordering::Relaxed));
    reg.counter("serve.shed", m.shed.load(Ordering::Relaxed));
    reg.counter("serve.executions", m.executions.load(Ordering::Relaxed));
    reg.counter("serve.errors", m.errors.load(Ordering::Relaxed));
    {
        let cache = lock_recover(&shared.cache);
        let (hits, misses, evictions) = cache.stats();
        reg.counter("serve.cache_lookup_hits", hits);
        reg.counter("serve.cache_lookup_misses", misses);
        reg.counter("serve.cache_evictions", evictions);
        reg.gauge("serve.cache_entries", cache.len() as u64, cache.len() as u64);
    }
    // Panics contained by the per-job guard plus any that escaped to the
    // pool's worker-level backstop: either way the worker survived and the
    // request got a structured 500.
    reg.counter(
        "serve.worker_panics",
        m.worker_panics.load(Ordering::Relaxed) + shared.pool.panics(),
    );
    reg.counter("serve.deadline_expired", m.deadline_expired.load(Ordering::Relaxed));
    // Store counters are emitted even with no store configured (as zeros)
    // so dashboards and the prom exposition have a stable schema.
    let (store_hits, store_corrupt, store_entries) = match &shared.store {
        Some(store) => {
            let store = lock_recover(store);
            let (hits, corrupt) = store.stats();
            (hits, corrupt, store.entries())
        }
        None => (0, 0, 0),
    };
    reg.counter("serve.store_hits", store_hits);
    reg.counter("serve.store_corrupt", store_corrupt);
    reg.counter("serve.store_write_errors", m.store_write_errors.load(Ordering::Relaxed));
    reg.gauge("serve.store_entries", store_entries, store_entries);
    let (depth, peak, scheduled) = shared.pool.depth();
    reg.gauge("serve.queue_depth", depth, peak);
    reg.counter("serve.scheduled", scheduled);
    let inflight_now = lock_recover(&shared.inflight).len() as u64;
    reg.gauge("serve.inflight", inflight_now, m.inflight_peak.load(Ordering::Relaxed));
    let hist = lock_recover(&m.service_us_hist);
    let last = hist.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    reg.hist("serve.service_us_log2", hist[..last].to_vec());
    drop(hist);
    reg.counter("serve.metric_streams", m.metric_streams.load(Ordering::Relaxed));
    let per = lock_recover(&m.digest_us_hists);
    reg.counter("serve.hist_digests_evicted", per.evicted);
    for (digest, h) in per.hists.iter() {
        let last = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        reg.hist(
            &format!("serve.digest.{digest:016x}.service_us_log2"),
            h.buckets[..last].to_vec(),
        );
    }
    reg
}

fn metrics_body(shared: &Shared) -> String {
    let host = JsonValue::obj()
        .field("uptime_seconds", shared.started.elapsed().as_secs_f64())
        .field("peak_rss_bytes", hostprof::peak_rss_bytes())
        .build();
    let mut text = dresar_bench::json_doc("dresar-serve")
        .field("metrics", snapshot(shared).to_json())
        .field("host", host)
        .build()
        .dump();
    text.push('\n');
    text
}

fn healthz_body(shared: &Shared) -> String {
    let mut text = JsonValue::obj()
        .field("ok", true)
        .field("tool", "dresar-serve")
        .field("shutting_down", shared.shutting_down.load(Ordering::SeqCst))
        .build()
        .dump();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_hists_evict_least_recently_updated_at_the_cap() {
        let mut d = DigestHists::default();
        for digest in 0..MAX_DIGEST_HISTS as u64 {
            d.record(digest, 0);
        }
        assert_eq!(d.hists.len(), MAX_DIGEST_HISTS);
        assert_eq!(d.evicted, 0);
        // Touch digest 0 so digest 1 becomes the coldest, then overflow.
        d.record(0, 1);
        d.record(10_000, 0);
        assert_eq!(d.hists.len(), MAX_DIGEST_HISTS, "cap holds");
        assert_eq!(d.evicted, 1);
        assert!(d.hists.contains_key(&0), "recently touched digest survives");
        assert!(!d.hists.contains_key(&1), "coldest digest was evicted");
        assert!(d.hists.contains_key(&10_000), "new digest gets a histogram, not a silent drop");
    }

    #[test]
    fn digest_hists_at_the_cap_keep_counting_known_digests() {
        let mut d = DigestHists::default();
        for digest in 0..MAX_DIGEST_HISTS as u64 {
            d.record(digest, 0);
        }
        d.record(3, 2);
        assert_eq!(d.evicted, 0, "existing digest never evicts");
        assert_eq!(d.hists[&3].buckets[2], 1);
    }

    fn bare_shared() -> Shared {
        Shared {
            pool: ServicePool::start(SweepRunner::with_threads(1), 1, false),
            cache: Mutex::new(ResultCache::new(4)),
            store: None,
            inflight: Mutex::new(FastMap::default()),
            metrics: ServeMetrics::default(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            max_deadline: DEFAULT_MAX_DEADLINE,
            chaos: None,
            last_flight: Mutex::new(None),
        }
    }

    #[test]
    fn eviction_count_reaches_the_metrics_registry() {
        // The snapshot wiring: evictions surface as the
        // `serve.hist_digests_evicted` counter.
        let shared = bare_shared();
        for digest in 0..(MAX_DIGEST_HISTS as u64 + 5) {
            record_service_time(&shared, digest, Duration::from_micros(digest + 1));
        }
        let reg = snapshot(&shared);
        assert_eq!(reg.get("serve.hist_digests_evicted"), Some(&MetricValue::Counter(5)));
        let digests = reg.iter().filter(|(n, _)| n.starts_with("serve.digest.")).count();
        assert_eq!(digests, MAX_DIGEST_HISTS);
        shared.pool.drain();
    }

    #[test]
    fn robustness_counters_render_in_both_expositions() {
        let shared = bare_shared();
        shared.metrics.worker_panics.fetch_add(2, Ordering::Relaxed);
        shared.metrics.deadline_expired.fetch_add(3, Ordering::Relaxed);
        let reg = snapshot(&shared);
        // JSON exposition: present as plain counters.
        assert_eq!(reg.get("serve.worker_panics"), Some(&MetricValue::Counter(2)));
        assert_eq!(reg.get("serve.deadline_expired"), Some(&MetricValue::Counter(3)));
        assert_eq!(reg.get("serve.store_hits"), Some(&MetricValue::Counter(0)));
        assert_eq!(reg.get("serve.store_corrupt"), Some(&MetricValue::Counter(0)));
        // Prometheus exposition: dotted names flatten to underscores with
        // TYPE lines.
        let prom = reg.to_prometheus();
        for line in [
            "# TYPE serve_worker_panics counter\nserve_worker_panics 2\n",
            "# TYPE serve_deadline_expired counter\nserve_deadline_expired 3\n",
            "# TYPE serve_store_hits counter\nserve_store_hits 0\n",
            "# TYPE serve_store_corrupt counter\nserve_store_corrupt 0\n",
            "# TYPE serve_store_write_errors counter\nserve_store_write_errors 0\n",
        ] {
            assert!(prom.contains(line), "missing {line:?} in:\n{prom}");
        }
        shared.pool.drain();
    }

    #[test]
    fn store_tier_counters_flow_from_a_real_store() {
        let dir = std::env::temp_dir().join(format!("dresar-serve-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut shared = bare_shared();
        let mut store = ResultStore::open(&dir).unwrap();
        store.save(11, "body").unwrap();
        store.load(11).unwrap();
        shared.store = Some(Mutex::new(store));
        let reg = snapshot(&shared);
        assert_eq!(reg.get("serve.store_hits"), Some(&MetricValue::Counter(1)));
        assert_eq!(
            reg.get("serve.store_entries"),
            Some(&MetricValue::Gauge { current: 1, peak: 1 })
        );
        shared.pool.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn effective_deadline_clamps_to_the_server_cap() {
        let cap = Duration::from_secs(10);
        let none = RunSpec::default();
        assert_eq!(effective_deadline_ms(&none, cap), 10_000, "no spec deadline: whole cap");
        let tight = RunSpec { deadline_ms: Some(250), ..RunSpec::default() };
        assert_eq!(effective_deadline_ms(&tight, cap), 250);
        let greedy = RunSpec { deadline_ms: Some(3_600_000), ..RunSpec::default() };
        assert_eq!(effective_deadline_ms(&greedy, cap), 10_000, "greedy ask capped");
        let zero = RunSpec { deadline_ms: Some(0), ..RunSpec::default() };
        assert_eq!(effective_deadline_ms(&zero, cap), 1, "zero clamps up, not to forever");
    }
}
