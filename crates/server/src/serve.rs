//! The `dresar-serve` server: accept loop, request routing, and the three
//! serving mechanisms — content-addressed caching, in-flight coalescing,
//! and bounded admission.
//!
//! A `POST /run` request travels:
//!
//! 1. **Validate** — before touching any shared state; malformed requests
//!    cost one parse, never a queue slot.
//! 2. **Cache** — the spec's canonical digest indexes the bounded LRU
//!    [`ResultCache`]. A hit serves the stored body; determinism makes it
//!    byte-identical to a fresh run.
//! 3. **Coalesce** — misses consult the in-flight table. If an execution
//!    for the same digest is already queued or running, the request
//!    *attaches* to it (one engine execution, N responses) instead of
//!    re-running. The table entry is created before the job is submitted,
//!    under the same lock admission runs under, so there is no window in
//!    which two leaders can start for one digest.
//! 4. **Admit** — new digests are submitted to the bounded
//!    [`ServicePool`]. A full queue sheds the request with a structured
//!    429 `overloaded` error — published to the in-flight entry too, so
//!    any follower that attached in the same instant also gets the error
//!    instead of waiting forever.
//!
//! `GET /metrics` exposes the serving counters (`serve.cache_hits`,
//! `serve.coalesced`, `serve.shed`, `serve.queue_depth`, ...) as a
//! [`MetricsRegistry`] document plus a host section (uptime, peak RSS) in
//! the `hostprof` spirit: host numbers are informational and never
//! deterministic. `GET /metrics/stream` pushes the same registry as
//! chunked server-sent events at a configurable interval, each frame
//! carrying the counter deltas since the previous one (what
//! `dresar_client --watch` renders). `GET /healthz` answers liveness;
//! `POST /shutdown` triggers a graceful drain (stop admissions, finish
//! queued work, join workers).

use crate::cache::ResultCache;
use crate::error::ServeError;
use crate::http::{
    read_request, write_response, write_response_with, write_sse_end, write_sse_event,
    write_sse_head, Request,
};
use crate::run::{validate, ExecOutput, ValidatedSpec};
use dresar_bench::sweep::{ServicePool, SubmitError, SweepRunner};
use dresar_obs::{hostprof, log2_bucket, MetricValue, MetricsRegistry};
use dresar_types::{FastMap, FromJson, JsonValue, RunSpec, ToJson};
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Number of log2 buckets in the service-time histogram (microseconds).
const SERVICE_HIST_BUCKETS: usize = 40;

/// Cap on distinct per-digest latency histograms kept in `/metrics`;
/// at the cap a new digest evicts the least-recently-updated histogram
/// (counted by `serve.hist_digests_evicted`), so a hot digest arriving
/// late still gets a histogram while the registry stays bounded against
/// digest churn.
const MAX_DIGEST_HISTS: usize = 64;

/// Default `GET /metrics/stream` frame interval when the query string does
/// not set `interval_ms`.
const STREAM_DEFAULT_INTERVAL_MS: u64 = 1000;

/// The `pid` server request spans use in merged Perfetto documents —
/// far from the simulator's pids 0..2, so the serving timeline renders as
/// its own process.
const PID_SERVER: u32 = 100;

/// How long a request waits for its (possibly coalesced) execution before
/// reporting an internal timeout. Generous: tier-1 runs tiny workloads in
/// debug builds.
const RESULT_WAIT_TIMEOUT: Duration = Duration::from_secs(600);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded admission queue depth; submissions beyond it are shed.
    pub queue_depth: usize,
    /// Engine worker threads; 0 sizes by [`SweepRunner::from_env`]
    /// (`DRESAR_SWEEP_THREADS`, else one per core).
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_entries: usize,
    /// Start with the engine workers paused (requests queue and coalesce
    /// but nothing executes until [`Server::resume_workers`]). Tests use
    /// this to make concurrency assertions deterministic.
    pub start_paused: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { queue_depth: 64, workers: 0, cache_entries: 128, start_paused: false }
    }
}

/// A finished execution as published to waiting requests: the shared body
/// plus the phase timings every attached request reports.
#[derive(Debug, Clone)]
struct RunOutcome {
    body: Arc<String>,
    /// Microseconds the job waited in the admission queue.
    queue_us: u64,
    /// Microseconds the engine execution (and serialization) took.
    exec_us: u64,
}

/// One pending result that any number of requests await.
#[derive(Debug)]
struct Flight<T> {
    result: Mutex<Option<Result<T, ServeError>>>,
    ready: Condvar,
}

impl<T> Default for Flight<T> {
    fn default() -> Self {
        Flight { result: Mutex::new(None), ready: Condvar::new() }
    }
}

impl<T: Clone> Flight<T> {
    fn publish(&self, result: Result<T, ServeError>) {
        *self.result.lock().expect("in-flight result poisoned") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<T, ServeError> {
        let mut slot = self.result.lock().expect("in-flight result poisoned");
        let deadline = Instant::now() + RESULT_WAIT_TIMEOUT;
        while slot.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ServeError::Internal("timed out waiting for execution".into()));
            }
            let (guard, _) = self.ready.wait_timeout(slot, left).expect("in-flight poisoned");
            slot = guard;
        }
        slot.as_ref().expect("checked above").clone()
    }
}

/// One in-flight coalesced execution that same-digest requests share.
type InFlight = Flight<RunOutcome>;

/// Serving counters, all monotone and lock-free on the request path.
#[derive(Debug)]
struct ServeMetrics {
    requests: AtomicU64,
    run_requests: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    executions: AtomicU64,
    errors: AtomicU64,
    inflight_peak: AtomicU64,
    /// `GET /metrics/stream` connections accepted.
    metric_streams: AtomicU64,
    service_us_hist: Mutex<[u64; SERVICE_HIST_BUCKETS]>,
    /// Per-digest service-time histograms (bounded at [`MAX_DIGEST_HISTS`]
    /// with least-recently-updated eviction).
    digest_us_hists: Mutex<DigestHists>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            requests: AtomicU64::new(0),
            run_requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            inflight_peak: AtomicU64::new(0),
            metric_streams: AtomicU64::new(0),
            service_us_hist: Mutex::new([0; SERVICE_HIST_BUCKETS]),
            digest_us_hists: Mutex::new(DigestHists::default()),
        }
    }
}

/// One digest's service-time histogram plus its recency stamp.
#[derive(Debug)]
struct DigestHist {
    buckets: [u64; SERVICE_HIST_BUCKETS],
    last_touch: u64,
}

/// Bounded per-digest service-time histograms. `BTreeMap` keeps `/metrics`
/// emission sorted by digest; the logical clock orders evictions.
#[derive(Debug, Default)]
struct DigestHists {
    clock: u64,
    /// Histograms dropped to admit newer digests at the cap.
    evicted: u64,
    hists: BTreeMap<u64, DigestHist>,
}

impl DigestHists {
    /// Records one observation. At [`MAX_DIGEST_HISTS`] a new digest
    /// evicts the least-recently-updated histogram instead of being
    /// silently dropped, so late-arriving hot digests are still tracked.
    fn record(&mut self, digest: u64, bucket: usize) {
        self.clock += 1;
        if !self.hists.contains_key(&digest) && self.hists.len() >= MAX_DIGEST_HISTS {
            let coldest = self
                .hists
                .iter()
                .min_by_key(|(_, h)| h.last_touch)
                .map(|(&d, _)| d)
                .expect("map is nonempty at the cap");
            self.hists.remove(&coldest);
            self.evicted += 1;
        }
        let h = self
            .hists
            .entry(digest)
            .or_insert(DigestHist { buckets: [0; SERVICE_HIST_BUCKETS], last_touch: 0 });
        h.buckets[bucket] += 1;
        h.last_touch = self.clock;
    }
}

struct Shared {
    pool: ServicePool,
    cache: Mutex<ResultCache>,
    inflight: Mutex<FastMap<u64, Arc<InFlight>>>,
    metrics: ServeMetrics,
    shutting_down: AtomicBool,
    started: Instant,
    /// Most recent flight-recorder dump deposited by an anomalous run,
    /// served verbatim by `GET /debug/flight`.
    last_flight: Mutex<Option<Arc<String>>>,
}

/// A running `dresar-serve` instance. Construct with [`Server::start`];
/// stop with [`Server::shutdown`] (graceful drain) or by `POST /shutdown`
/// plus [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn start(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Nonblocking accept + short sleep: lets the acceptor observe the
        // shutdown flag without platform-specific signal machinery.
        listener.set_nonblocking(true)?;
        let runner = if cfg.workers == 0 {
            SweepRunner::from_env()
        } else {
            SweepRunner::with_threads(cfg.workers)
        };
        let shared = Arc::new(Shared {
            pool: ServicePool::start(runner, cfg.queue_depth, cfg.start_paused),
            cache: Mutex::new(ResultCache::new(cfg.cache_entries)),
            inflight: Mutex::new(FastMap::default()),
            metrics: ServeMetrics::default(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            last_flight: Mutex::new(None),
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &shared, &conns))
        };
        Ok(Server { shared, addr: local, acceptor: Some(acceptor), conns })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Releases engine workers started paused (see
    /// [`ServerConfig::start_paused`]).
    pub fn resume_workers(&self) {
        self.shared.pool.resume();
    }

    /// A point-in-time snapshot of the serving metrics (same registry the
    /// `/metrics` endpoint serves).
    pub fn metrics(&self) -> MetricsRegistry {
        snapshot(&self.shared)
    }

    /// Graceful shutdown: stop accepting, drain queued executions, join
    /// every thread. Idempotent with a prior `POST /shutdown`.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.join_inner();
    }

    /// Blocks until the server shuts down (via [`Server::shutdown`] from
    /// another handle is impossible — `self` is owned — so in practice:
    /// until a client `POST /shutdown` arrives), then drains.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor panicked");
        }
        // New connections are no longer accepted; finish the ones in
        // flight (their queued executions run to completion in drain).
        self.shared.pool.drain();
        let handles: Vec<_> =
            std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for h in handles {
            h.join().expect("connection handler panicked");
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || handle_conn(stream, &shared));
                let mut reg = conns.lock().expect("conn registry poisoned");
                // Opportunistically reap finished handlers so the registry
                // does not grow with total connections served.
                reg.retain(|h| !h.is_finished());
                reg.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One routed response: status, content type, extra headers, body.
struct Reply {
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply { status, content_type: "application/json", headers: Vec::new(), body }
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut stream, e.status(), &e.body());
            return;
        }
    };
    // The streaming route writes the socket itself (chunked SSE frames);
    // everything else goes through the Content-Length reply path.
    if request.method == "GET" && request.route().0 == "/metrics/stream" {
        serve_metrics_stream(&mut stream, &request, shared);
        return;
    }
    match route(&request, shared) {
        Ok(reply) => {
            let _ = write_response_with(
                &mut stream,
                reply.status,
                reply.content_type,
                &reply.headers,
                &reply.body,
            );
        }
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut stream, e.status(), &e.body());
        }
    }
}

fn route(request: &Request, shared: &Arc<Shared>) -> Result<Reply, ServeError> {
    let (path, query) = request.route();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Ok(Reply::json(200, healthz_body(shared))),
        ("GET", "/metrics") => {
            // Content negotiation: Prometheus text exposition on
            // `?format=prom` or an Accept preferring text/plain; the
            // JSON document otherwise.
            let wants_prom = query.split('&').any(|kv| kv == "format=prom")
                || request.header("accept").is_some_and(|a| a.contains("text/plain"));
            if wants_prom {
                Ok(Reply {
                    status: 200,
                    content_type: "text/plain; version=0.0.4",
                    headers: Vec::new(),
                    body: snapshot(shared).to_prometheus(),
                })
            } else {
                Ok(Reply::json(200, metrics_body(shared)))
            }
        }
        ("GET", "/debug/flight") => {
            let dump = shared.last_flight.lock().expect("flight slot poisoned").clone();
            match dump {
                Some(body) => Ok(Reply::json(200, (*body).clone())),
                None => Err(ServeError::FlightUnavailable),
            }
        }
        ("POST", "/run") => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return Err(ServeError::ShuttingDown);
            }
            if let Some(trace_id) = request.header("x-dresar-trace") {
                let trace_id = trace_id.to_string();
                return serve_run_traced(&request.body, &trace_id, shared);
            }
            let t0 = Instant::now();
            let out = serve_run(&request.body, shared);
            out.map(|(served, digest)| {
                record_service_time(shared, digest, t0.elapsed());
                let mut reply = Reply::json(200, served.body);
                reply.headers = match served.source {
                    RunSource::Cache => vec![("X-Dresar-Cache", "hit".to_string())],
                    RunSource::Executed { queue_us, exec_us } => vec![
                        ("X-Dresar-Cache", "miss".to_string()),
                        ("X-Dresar-Queue-Us", queue_us.to_string()),
                        ("X-Dresar-Exec-Us", exec_us.to_string()),
                    ],
                };
                reply
            })
        }
        ("POST", "/shutdown") => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            Ok(Reply::json(200, "{\"draining\":true}\n".to_string()))
        }
        ("GET" | "POST", _) => {
            Err(ServeError::NotFound(format!("no route for '{}'", request.path)))
        }
        (m, _) => Err(ServeError::MethodNotAllowed(format!("method '{m}' not supported"))),
    }
}

/// Where a `/run` body came from, with phase timings when it was executed
/// (coalesced followers report the shared execution's timings).
enum RunSource {
    Cache,
    Executed {
        /// Microseconds the execution waited in the admission queue.
        queue_us: u64,
        /// Microseconds the engine run and serialization took.
        exec_us: u64,
    },
}

struct ServedRun {
    body: String,
    source: RunSource,
}

/// The `/run` pipeline: parse, validate, cache, coalesce, admit, wait.
fn serve_run(body: &str, shared: &Arc<Shared>) -> Result<(ServedRun, u64), ServeError> {
    shared.metrics.run_requests.fetch_add(1, Ordering::Relaxed);
    let spec = parse_spec(body)?;
    let validated = validate(&spec)?;
    let digest = spec.digest();

    if let Some(cached) = shared.cache.lock().expect("cache poisoned").get(digest) {
        shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((ServedRun { body: (*cached).clone(), source: RunSource::Cache }, digest));
    }

    let flight = attach_or_lead(digest, validated, shared)?;
    let outcome = flight.wait()?;
    Ok((
        ServedRun {
            body: (*outcome.body).clone(),
            source: RunSource::Executed { queue_us: outcome.queue_us, exec_us: outcome.exec_us },
        },
        digest,
    ))
}

/// Joins the in-flight execution for `digest`, creating and admitting it
/// if this request is the first (the "leader"). Holding the in-flight lock
/// across admission closes both races: two leaders for one digest, and a
/// follower attaching to an entry that was shed between insert and submit.
fn attach_or_lead(
    digest: u64,
    validated: ValidatedSpec,
    shared: &Arc<Shared>,
) -> Result<Arc<InFlight>, ServeError> {
    let mut inflight = shared.inflight.lock().expect("in-flight table poisoned");
    if let Some(existing) = inflight.get(&digest) {
        shared.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(existing));
    }
    let flight = Arc::new(InFlight::default());
    inflight.insert(digest, Arc::clone(&flight));
    let peak = inflight.len() as u64;
    shared.metrics.inflight_peak.fetch_max(peak, Ordering::Relaxed);

    let job = {
        let shared = Arc::clone(shared);
        let flight = Arc::clone(&flight);
        let submitted = Instant::now();
        Box::new(move || {
            let queue_us = us(submitted.elapsed());
            shared.metrics.executions.fetch_add(1, Ordering::Relaxed);
            let t_exec = Instant::now();
            let result = validated.execute_full(false);
            let exec_us = us(t_exec.elapsed());
            let result = result.map(|out| {
                deposit_flight(&shared, out.flight.as_deref());
                RunOutcome { body: Arc::new(out.body), queue_us, exec_us }
            });
            if let Ok(outcome) = &result {
                shared
                    .cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(digest, Arc::clone(&outcome.body));
            }
            // Unregister before publishing: a request arriving after this
            // point must hit the cache (or start a fresh run), never attach
            // to a completed flight.
            shared.inflight.lock().expect("in-flight table poisoned").remove(&digest);
            flight.publish(result);
        })
    };
    match shared.pool.try_submit(job) {
        Ok(()) => Ok(flight),
        Err(submit_err) => {
            inflight.remove(&digest);
            let err = match submit_err {
                SubmitError::QueueFull { queue_depth } => ServeError::Overloaded { queue_depth },
                SubmitError::ShuttingDown => ServeError::ShuttingDown,
            };
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            // Any follower that attached before this lock was taken gets
            // the same structured error instead of waiting forever.
            flight.publish(Err(err.clone()));
            Err(err)
        }
    }
}

/// The traced `/run` pipeline (`X-Dresar-Trace` header). Admission runs
/// the same phases — parse/validate, cache lookup, bounded queue — but the
/// execution is instrumented and never shared: the cache verdict is
/// recorded yet bypassed and the run does not register in the in-flight
/// table, because the merged-trace response is request-specific. The body
/// is one Chrome-trace/Perfetto document: server request spans (pid
/// [`PID_SERVER`]) plus the simulator's causal spans, linked by the trace
/// id and spec digest carried in every server span's args.
fn serve_run_traced(body: &str, trace_id: &str, shared: &Arc<Shared>) -> Result<Reply, ServeError> {
    let t0 = Instant::now();
    shared.metrics.run_requests.fetch_add(1, Ordering::Relaxed);
    let spec = parse_spec(body)?;
    let validated = validate(&spec)?;
    let digest = spec.digest();
    let digest_hex = spec.digest_hex();
    let admit_end = us(t0.elapsed());

    let cache_hit = shared.cache.lock().expect("cache poisoned").get(digest).is_some();
    let cache_end = us(t0.elapsed());

    // Real queue wait: the instrumented run goes through the same bounded
    // admission as every other execution.
    let flight: Arc<Flight<(ExecOutput, u64, u64)>> = Arc::default();
    let submit_off = us(t0.elapsed());
    let job = {
        let shared = Arc::clone(shared);
        let flight = Arc::clone(&flight);
        let submitted = Instant::now();
        Box::new(move || {
            let queue_us = us(submitted.elapsed());
            shared.metrics.executions.fetch_add(1, Ordering::Relaxed);
            let t_exec = Instant::now();
            let result = validated.execute_full(true);
            let exec_us = us(t_exec.elapsed());
            let result = result.map(|out| {
                deposit_flight(&shared, out.flight.as_deref());
                (out, queue_us, exec_us)
            });
            flight.publish(result);
        })
    };
    if let Err(submit_err) = shared.pool.try_submit(job) {
        shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
        return Err(match submit_err {
            SubmitError::QueueFull { queue_depth } => ServeError::Overloaded { queue_depth },
            SubmitError::ShuttingDown => ServeError::ShuttingDown,
        });
    }
    let (out, queue_us, exec_us) = flight.wait()?;

    let ser_off = us(t0.elapsed());
    let sim_events = out.trace.as_deref().map(trace_inner).unwrap_or_default();
    let serialize_us = us(t0.elapsed()).saturating_sub(ser_off);

    let tid_json = JsonValue::Str(trace_id.to_string()).dump();
    let span_args = format!("\"trace_id\":{tid_json},\"digest\":\"{digest_hex}\"");
    let mut events: Vec<String> = vec![
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_SERVER},\
             \"args\":{{\"name\":\"dresar-serve\"}}}}"
        ),
        format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_SERVER},\"tid\":1,\
             \"args\":{{\"name\":\"request\"}}}}"
        ),
    ];
    let phases: [(&str, u64, u64); 5] = [
        ("admission", 0, admit_end),
        ("cache_lookup", admit_end, cache_end.saturating_sub(admit_end)),
        ("queue_wait", submit_off, queue_us),
        ("execute", submit_off + queue_us, exec_us),
        ("serialize", ser_off, serialize_us),
    ];
    for (name, ts, dur) in phases {
        events.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":{PID_SERVER},\
             \"tid\":1,\"ts\":{ts},\"dur\":{dur},\"args\":{{{span_args}}}}}"
        ));
    }
    let phase_json = JsonValue::obj()
        .field("admission_us", admit_end)
        .field("cache_lookup_us", cache_end.saturating_sub(admit_end))
        .field("queue_wait_us", queue_us)
        .field("execute_us", exec_us)
        .field("serialize_us", serialize_us)
        .build();
    let meta = JsonValue::obj()
        .field("tool", "dresar-serve")
        .field("trace_id", trace_id)
        .field("digest", digest_hex.as_str())
        .field("cache_hit_bypassed", cache_hit)
        .field("sim_trace", out.trace.is_some())
        .field("phases_us", phase_json)
        .build();

    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&events.join(",\n"));
    if !sim_events.is_empty() {
        doc.push_str(",\n");
        doc.push_str(sim_events);
    }
    doc.push_str("\n],\n\"dresar\":");
    doc.push_str(&meta.dump());
    doc.push_str("}\n");

    record_service_time(shared, digest, t0.elapsed());
    Ok(Reply {
        status: 200,
        content_type: "application/json",
        headers: vec![
            ("X-Dresar-Trace", trace_id.to_string()),
            ("X-Dresar-Queue-Us", queue_us.to_string()),
            ("X-Dresar-Exec-Us", exec_us.to_string()),
        ],
        body: doc,
    })
}

/// `GET /metrics/stream`: pushes windowed metric snapshots as chunked
/// server-sent events until the client disconnects, the server drains, or
/// the requested frame count is reached.
///
/// Query parameters: `frames=N` bounds the stream to N events (0 or absent
/// streams until shutdown/disconnect); `interval_ms=M` sets the frame
/// interval (clamped to 10..60000, default
/// [`STREAM_DEFAULT_INTERVAL_MS`]).
///
/// Each event's `data:` line is one compact JSON object: `seq`, host
/// `uptime_seconds`, the full cumulative `metrics` registry, and `window`
/// — the counter deltas since the previous frame (first frame: since the
/// counters were zero), which is what makes the stream a rate view rather
/// than a monotone ramp.
fn serve_metrics_stream(stream: &mut TcpStream, request: &Request, shared: &Arc<Shared>) {
    let (_, query) = request.route();
    let mut frames = 0u64;
    let mut interval_ms = STREAM_DEFAULT_INTERVAL_MS;
    for kv in query.split('&') {
        if let Some((k, v)) = kv.split_once('=') {
            match k {
                "frames" => frames = v.parse().unwrap_or(frames),
                "interval_ms" => interval_ms = v.parse().unwrap_or(interval_ms),
                _ => {}
            }
        }
    }
    let interval = Duration::from_millis(interval_ms.clamp(10, 60_000));
    if write_sse_head(stream).is_err() {
        return;
    }
    shared.metrics.metric_streams.fetch_add(1, Ordering::Relaxed);
    let mut prev: Option<MetricsRegistry> = None;
    let mut seq = 0u64;
    loop {
        let snap = snapshot(shared);
        let mut window = JsonValue::obj();
        for (name, v) in snap.iter() {
            if let MetricValue::Counter(c) = v {
                let before = match prev.as_ref().and_then(|p| p.get(name)) {
                    Some(MetricValue::Counter(b)) => *b,
                    _ => 0,
                };
                window = window.field(name, c.saturating_sub(before));
            }
        }
        let payload = JsonValue::obj()
            .field("seq", seq)
            .field("uptime_seconds", shared.started.elapsed().as_secs_f64())
            .field("interval_ms", interval.as_millis() as u64)
            .field("metrics", snap.to_json())
            .field("window", window.build())
            .build()
            .dump();
        if write_sse_event(stream, &payload).is_err() {
            return; // client hung up mid-stream; nothing to terminate
        }
        prev = Some(snap);
        seq += 1;
        if (frames != 0 && seq >= frames) || shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        // Sleep in short steps so a drain is observed promptly even at
        // slow frame intervals.
        let wake = Instant::now() + interval;
        while Instant::now() < wake && !shared.shutting_down.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10).min(interval));
        }
    }
    let _ = write_sse_end(stream);
}

/// The event lines of a Tracer document (strips the enclosing JSON array
/// brackets so the events splice into a larger `traceEvents` array).
fn trace_inner(doc: &str) -> &str {
    let inner = doc.strip_prefix("[\n").unwrap_or(doc);
    let inner = inner.strip_suffix("\n]\n").unwrap_or(inner);
    inner.trim_matches('\n')
}

fn parse_spec(body: &str) -> Result<RunSpec, ServeError> {
    let json = JsonValue::parse(body)
        .map_err(|e| ServeError::BadJson(format!("request body is not JSON: {e}")))?;
    RunSpec::from_json(&json).map_err(|e| {
        if e.msg.starts_with("unknown field") {
            ServeError::UnknownField(e.msg)
        } else {
            ServeError::BadField(e.msg)
        }
    })
}

fn us(elapsed: Duration) -> u64 {
    elapsed.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Deposits an anomalous run's flight dump into the `/debug/flight` slot.
fn deposit_flight(shared: &Shared, flight: Option<&str>) {
    if let Some(dump) = flight {
        *shared.last_flight.lock().expect("flight slot poisoned") =
            Some(Arc::new(dump.to_string()));
    }
}

fn record_service_time(shared: &Shared, digest: u64, elapsed: Duration) {
    let bucket = log2_bucket(us(elapsed), SERVICE_HIST_BUCKETS);
    shared.metrics.service_us_hist.lock().expect("service hist poisoned")[bucket] += 1;
    shared.metrics.digest_us_hists.lock().expect("digest hists poisoned").record(digest, bucket);
}

/// Assembles the serving registry: every admission/coalescing/cache
/// counter plus the pool's queue gauges. Purely monotone counters and
/// gauges — host wall-clock lives in the separate `host` section.
fn snapshot(shared: &Shared) -> MetricsRegistry {
    let m = &shared.metrics;
    let mut reg = MetricsRegistry::new();
    reg.counter("serve.requests", m.requests.load(Ordering::Relaxed));
    reg.counter("serve.run_requests", m.run_requests.load(Ordering::Relaxed));
    reg.counter("serve.cache_hits", m.cache_hits.load(Ordering::Relaxed));
    reg.counter("serve.coalesced", m.coalesced.load(Ordering::Relaxed));
    reg.counter("serve.shed", m.shed.load(Ordering::Relaxed));
    reg.counter("serve.executions", m.executions.load(Ordering::Relaxed));
    reg.counter("serve.errors", m.errors.load(Ordering::Relaxed));
    {
        let cache = shared.cache.lock().expect("cache poisoned");
        let (hits, misses, evictions) = cache.stats();
        reg.counter("serve.cache_lookup_hits", hits);
        reg.counter("serve.cache_lookup_misses", misses);
        reg.counter("serve.cache_evictions", evictions);
        reg.gauge("serve.cache_entries", cache.len() as u64, cache.len() as u64);
    }
    let (depth, peak, scheduled) = shared.pool.depth();
    reg.gauge("serve.queue_depth", depth, peak);
    reg.counter("serve.scheduled", scheduled);
    let inflight_now = shared.inflight.lock().expect("in-flight table poisoned").len() as u64;
    reg.gauge("serve.inflight", inflight_now, m.inflight_peak.load(Ordering::Relaxed));
    let hist = m.service_us_hist.lock().expect("service hist poisoned");
    let last = hist.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    reg.hist("serve.service_us_log2", hist[..last].to_vec());
    drop(hist);
    reg.counter("serve.metric_streams", m.metric_streams.load(Ordering::Relaxed));
    let per = m.digest_us_hists.lock().expect("digest hists poisoned");
    reg.counter("serve.hist_digests_evicted", per.evicted);
    for (digest, h) in per.hists.iter() {
        let last = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        reg.hist(
            &format!("serve.digest.{digest:016x}.service_us_log2"),
            h.buckets[..last].to_vec(),
        );
    }
    reg
}

fn metrics_body(shared: &Shared) -> String {
    let host = JsonValue::obj()
        .field("uptime_seconds", shared.started.elapsed().as_secs_f64())
        .field("peak_rss_bytes", hostprof::peak_rss_bytes())
        .build();
    let mut text = dresar_bench::json_doc("dresar-serve")
        .field("metrics", snapshot(shared).to_json())
        .field("host", host)
        .build()
        .dump();
    text.push('\n');
    text
}

fn healthz_body(shared: &Shared) -> String {
    let mut text = JsonValue::obj()
        .field("ok", true)
        .field("tool", "dresar-serve")
        .field("shutting_down", shared.shutting_down.load(Ordering::SeqCst))
        .build()
        .dump();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_hists_evict_least_recently_updated_at_the_cap() {
        let mut d = DigestHists::default();
        for digest in 0..MAX_DIGEST_HISTS as u64 {
            d.record(digest, 0);
        }
        assert_eq!(d.hists.len(), MAX_DIGEST_HISTS);
        assert_eq!(d.evicted, 0);
        // Touch digest 0 so digest 1 becomes the coldest, then overflow.
        d.record(0, 1);
        d.record(10_000, 0);
        assert_eq!(d.hists.len(), MAX_DIGEST_HISTS, "cap holds");
        assert_eq!(d.evicted, 1);
        assert!(d.hists.contains_key(&0), "recently touched digest survives");
        assert!(!d.hists.contains_key(&1), "coldest digest was evicted");
        assert!(d.hists.contains_key(&10_000), "new digest gets a histogram, not a silent drop");
    }

    #[test]
    fn digest_hists_at_the_cap_keep_counting_known_digests() {
        let mut d = DigestHists::default();
        for digest in 0..MAX_DIGEST_HISTS as u64 {
            d.record(digest, 0);
        }
        d.record(3, 2);
        assert_eq!(d.evicted, 0, "existing digest never evicts");
        assert_eq!(d.hists[&3].buckets[2], 1);
    }

    #[test]
    fn eviction_count_reaches_the_metrics_registry() {
        // The snapshot wiring: evictions surface as the
        // `serve.hist_digests_evicted` counter.
        let shared = Shared {
            pool: ServicePool::start(SweepRunner::with_threads(1), 1, false),
            cache: Mutex::new(ResultCache::new(4)),
            inflight: Mutex::new(FastMap::default()),
            metrics: ServeMetrics::default(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            last_flight: Mutex::new(None),
        };
        for digest in 0..(MAX_DIGEST_HISTS as u64 + 5) {
            record_service_time(&shared, digest, Duration::from_micros(digest + 1));
        }
        let reg = snapshot(&shared);
        assert_eq!(reg.get("serve.hist_digests_evicted"), Some(&MetricValue::Counter(5)));
        let digests = reg.iter().filter(|(n, _)| n.starts_with("serve.digest.")).count();
        assert_eq!(digests, MAX_DIGEST_HISTS);
        shared.pool.drain();
    }
}
