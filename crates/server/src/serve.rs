//! The `dresar-serve` server: accept loop, request routing, and the three
//! serving mechanisms — content-addressed caching, in-flight coalescing,
//! and bounded admission.
//!
//! A `POST /run` request travels:
//!
//! 1. **Validate** — before touching any shared state; malformed requests
//!    cost one parse, never a queue slot.
//! 2. **Cache** — the spec's canonical digest indexes the bounded LRU
//!    [`ResultCache`]. A hit serves the stored body; determinism makes it
//!    byte-identical to a fresh run.
//! 3. **Coalesce** — misses consult the in-flight table. If an execution
//!    for the same digest is already queued or running, the request
//!    *attaches* to it (one engine execution, N responses) instead of
//!    re-running. The table entry is created before the job is submitted,
//!    under the same lock admission runs under, so there is no window in
//!    which two leaders can start for one digest.
//! 4. **Admit** — new digests are submitted to the bounded
//!    [`ServicePool`]. A full queue sheds the request with a structured
//!    429 `overloaded` error — published to the in-flight entry too, so
//!    any follower that attached in the same instant also gets the error
//!    instead of waiting forever.
//!
//! `GET /metrics` exposes the serving counters (`serve.cache_hits`,
//! `serve.coalesced`, `serve.shed`, `serve.queue_depth`, ...) as a
//! [`MetricsRegistry`] document plus a host section (uptime, peak RSS) in
//! the `hostprof` spirit: host numbers are informational and never
//! deterministic. `GET /healthz` answers liveness; `POST /shutdown`
//! triggers a graceful drain (stop admissions, finish queued work, join
//! workers).

use crate::cache::ResultCache;
use crate::error::ServeError;
use crate::http::{read_request, write_response, Request};
use crate::run::{validate, ValidatedSpec};
use dresar_bench::sweep::{ServicePool, SubmitError, SweepRunner};
use dresar_obs::{hostprof, log2_bucket, MetricsRegistry};
use dresar_types::{FastMap, FromJson, JsonValue, RunSpec, ToJson};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Number of log2 buckets in the service-time histogram (microseconds).
const SERVICE_HIST_BUCKETS: usize = 40;

/// How long a request waits for its (possibly coalesced) execution before
/// reporting an internal timeout. Generous: tier-1 runs tiny workloads in
/// debug builds.
const RESULT_WAIT_TIMEOUT: Duration = Duration::from_secs(600);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded admission queue depth; submissions beyond it are shed.
    pub queue_depth: usize,
    /// Engine worker threads; 0 sizes by [`SweepRunner::from_env`]
    /// (`DRESAR_SWEEP_THREADS`, else one per core).
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_entries: usize,
    /// Start with the engine workers paused (requests queue and coalesce
    /// but nothing executes until [`Server::resume_workers`]). Tests use
    /// this to make concurrency assertions deterministic.
    pub start_paused: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { queue_depth: 64, workers: 0, cache_entries: 128, start_paused: false }
    }
}

/// One in-flight execution that any number of same-digest requests await.
#[derive(Debug, Default)]
struct InFlight {
    result: Mutex<Option<Result<Arc<String>, ServeError>>>,
    ready: Condvar,
}

impl InFlight {
    fn publish(&self, result: Result<Arc<String>, ServeError>) {
        *self.result.lock().expect("in-flight result poisoned") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Arc<String>, ServeError> {
        let mut slot = self.result.lock().expect("in-flight result poisoned");
        let deadline = Instant::now() + RESULT_WAIT_TIMEOUT;
        while slot.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ServeError::Internal("timed out waiting for execution".into()));
            }
            let (guard, _) = self.ready.wait_timeout(slot, left).expect("in-flight poisoned");
            slot = guard;
        }
        slot.as_ref().expect("checked above").clone()
    }
}

/// Serving counters, all monotone and lock-free on the request path.
#[derive(Debug)]
struct ServeMetrics {
    requests: AtomicU64,
    run_requests: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    executions: AtomicU64,
    errors: AtomicU64,
    inflight_peak: AtomicU64,
    service_us_hist: Mutex<[u64; SERVICE_HIST_BUCKETS]>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            requests: AtomicU64::new(0),
            run_requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            inflight_peak: AtomicU64::new(0),
            service_us_hist: Mutex::new([0; SERVICE_HIST_BUCKETS]),
        }
    }
}

struct Shared {
    pool: ServicePool,
    cache: Mutex<ResultCache>,
    inflight: Mutex<FastMap<u64, Arc<InFlight>>>,
    metrics: ServeMetrics,
    shutting_down: AtomicBool,
    started: Instant,
}

/// A running `dresar-serve` instance. Construct with [`Server::start`];
/// stop with [`Server::shutdown`] (graceful drain) or by `POST /shutdown`
/// plus [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn start(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Nonblocking accept + short sleep: lets the acceptor observe the
        // shutdown flag without platform-specific signal machinery.
        listener.set_nonblocking(true)?;
        let runner = if cfg.workers == 0 {
            SweepRunner::from_env()
        } else {
            SweepRunner::with_threads(cfg.workers)
        };
        let shared = Arc::new(Shared {
            pool: ServicePool::start(runner, cfg.queue_depth, cfg.start_paused),
            cache: Mutex::new(ResultCache::new(cfg.cache_entries)),
            inflight: Mutex::new(FastMap::default()),
            metrics: ServeMetrics::default(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &shared, &conns))
        };
        Ok(Server { shared, addr: local, acceptor: Some(acceptor), conns })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Releases engine workers started paused (see
    /// [`ServerConfig::start_paused`]).
    pub fn resume_workers(&self) {
        self.shared.pool.resume();
    }

    /// A point-in-time snapshot of the serving metrics (same registry the
    /// `/metrics` endpoint serves).
    pub fn metrics(&self) -> MetricsRegistry {
        snapshot(&self.shared)
    }

    /// Graceful shutdown: stop accepting, drain queued executions, join
    /// every thread. Idempotent with a prior `POST /shutdown`.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.join_inner();
    }

    /// Blocks until the server shuts down (via [`Server::shutdown`] from
    /// another handle is impossible — `self` is owned — so in practice:
    /// until a client `POST /shutdown` arrives), then drains.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor panicked");
        }
        // New connections are no longer accepted; finish the ones in
        // flight (their queued executions run to completion in drain).
        self.shared.pool.drain();
        let handles: Vec<_> =
            std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for h in handles {
            h.join().expect("connection handler panicked");
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || handle_conn(stream, &shared));
                let mut reg = conns.lock().expect("conn registry poisoned");
                // Opportunistically reap finished handlers so the registry
                // does not grow with total connections served.
                reg.retain(|h| !h.is_finished());
                reg.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut stream, e.status(), &e.body());
            return;
        }
    };
    let outcome = route(&request, shared);
    match outcome {
        Ok((status, body)) => {
            let _ = write_response(&mut stream, status, &body);
        }
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut stream, e.status(), &e.body());
        }
    }
}

fn route(request: &Request, shared: &Arc<Shared>) -> Result<(u16, String), ServeError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Ok((200, healthz_body(shared))),
        ("GET", "/metrics") => Ok((200, metrics_body(shared))),
        ("POST", "/run") => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return Err(ServeError::ShuttingDown);
            }
            let t0 = Instant::now();
            let out = serve_run(&request.body, shared);
            record_service_time(shared, t0.elapsed());
            out.map(|body| (200, body))
        }
        ("POST", "/shutdown") => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            Ok((200, "{\"draining\":true}\n".to_string()))
        }
        ("GET" | "POST", _) => {
            Err(ServeError::NotFound(format!("no route for '{}'", request.path)))
        }
        (m, _) => Err(ServeError::MethodNotAllowed(format!("method '{m}' not supported"))),
    }
}

/// The `/run` pipeline: parse, validate, cache, coalesce, admit, wait.
fn serve_run(body: &str, shared: &Arc<Shared>) -> Result<String, ServeError> {
    shared.metrics.run_requests.fetch_add(1, Ordering::Relaxed);
    let spec = parse_spec(body)?;
    let validated = validate(&spec)?;
    let digest = spec.digest();

    if let Some(cached) = shared.cache.lock().expect("cache poisoned").get(digest) {
        shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((*cached).clone());
    }

    let flight = attach_or_lead(digest, validated, shared)?;
    flight.wait().map(|arc| (*arc).clone())
}

/// Joins the in-flight execution for `digest`, creating and admitting it
/// if this request is the first (the "leader"). Holding the in-flight lock
/// across admission closes both races: two leaders for one digest, and a
/// follower attaching to an entry that was shed between insert and submit.
fn attach_or_lead(
    digest: u64,
    validated: ValidatedSpec,
    shared: &Arc<Shared>,
) -> Result<Arc<InFlight>, ServeError> {
    let mut inflight = shared.inflight.lock().expect("in-flight table poisoned");
    if let Some(existing) = inflight.get(&digest) {
        shared.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(existing));
    }
    let flight = Arc::new(InFlight::default());
    inflight.insert(digest, Arc::clone(&flight));
    let peak = inflight.len() as u64;
    shared.metrics.inflight_peak.fetch_max(peak, Ordering::Relaxed);

    let job = {
        let shared = Arc::clone(shared);
        let flight = Arc::clone(&flight);
        Box::new(move || {
            shared.metrics.executions.fetch_add(1, Ordering::Relaxed);
            let result = validated.execute().map(Arc::new);
            if let Ok(body) = &result {
                shared.cache.lock().expect("cache poisoned").insert(digest, Arc::clone(body));
            }
            // Unregister before publishing: a request arriving after this
            // point must hit the cache (or start a fresh run), never attach
            // to a completed flight.
            shared.inflight.lock().expect("in-flight table poisoned").remove(&digest);
            flight.publish(result);
        })
    };
    match shared.pool.try_submit(job) {
        Ok(()) => Ok(flight),
        Err(submit_err) => {
            inflight.remove(&digest);
            let err = match submit_err {
                SubmitError::QueueFull { queue_depth } => ServeError::Overloaded { queue_depth },
                SubmitError::ShuttingDown => ServeError::ShuttingDown,
            };
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            // Any follower that attached before this lock was taken gets
            // the same structured error instead of waiting forever.
            flight.publish(Err(err.clone()));
            Err(err)
        }
    }
}

fn parse_spec(body: &str) -> Result<RunSpec, ServeError> {
    let json = JsonValue::parse(body)
        .map_err(|e| ServeError::BadJson(format!("request body is not JSON: {e}")))?;
    RunSpec::from_json(&json).map_err(|e| {
        if e.msg.starts_with("unknown field") {
            ServeError::UnknownField(e.msg)
        } else {
            ServeError::BadField(e.msg)
        }
    })
}

fn record_service_time(shared: &Shared, elapsed: Duration) {
    let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
    let mut hist = shared.metrics.service_us_hist.lock().expect("service hist poisoned");
    hist[log2_bucket(us, SERVICE_HIST_BUCKETS)] += 1;
}

/// Assembles the serving registry: every admission/coalescing/cache
/// counter plus the pool's queue gauges. Purely monotone counters and
/// gauges — host wall-clock lives in the separate `host` section.
fn snapshot(shared: &Shared) -> MetricsRegistry {
    let m = &shared.metrics;
    let mut reg = MetricsRegistry::new();
    reg.counter("serve.requests", m.requests.load(Ordering::Relaxed));
    reg.counter("serve.run_requests", m.run_requests.load(Ordering::Relaxed));
    reg.counter("serve.cache_hits", m.cache_hits.load(Ordering::Relaxed));
    reg.counter("serve.coalesced", m.coalesced.load(Ordering::Relaxed));
    reg.counter("serve.shed", m.shed.load(Ordering::Relaxed));
    reg.counter("serve.executions", m.executions.load(Ordering::Relaxed));
    reg.counter("serve.errors", m.errors.load(Ordering::Relaxed));
    {
        let cache = shared.cache.lock().expect("cache poisoned");
        let (hits, misses, evictions) = cache.stats();
        reg.counter("serve.cache_lookup_hits", hits);
        reg.counter("serve.cache_lookup_misses", misses);
        reg.counter("serve.cache_evictions", evictions);
        reg.gauge("serve.cache_entries", cache.len() as u64, cache.len() as u64);
    }
    let (depth, peak, scheduled) = shared.pool.depth();
    reg.gauge("serve.queue_depth", depth, peak);
    reg.counter("serve.scheduled", scheduled);
    let inflight_now = shared.inflight.lock().expect("in-flight table poisoned").len() as u64;
    reg.gauge("serve.inflight", inflight_now, m.inflight_peak.load(Ordering::Relaxed));
    let hist = m.service_us_hist.lock().expect("service hist poisoned");
    let last = hist.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    reg.hist("serve.service_us_log2", hist[..last].to_vec());
    reg
}

fn metrics_body(shared: &Shared) -> String {
    let host = JsonValue::obj()
        .field("uptime_seconds", shared.started.elapsed().as_secs_f64())
        .field("peak_rss_bytes", hostprof::peak_rss_bytes())
        .build();
    let mut text = dresar_bench::json_doc("dresar-serve")
        .field("metrics", snapshot(shared).to_json())
        .field("host", host)
        .build()
        .dump();
    text.push('\n');
    text
}

fn healthz_body(shared: &Shared) -> String {
    let mut text = JsonValue::obj()
        .field("ok", true)
        .field("tool", "dresar-serve")
        .field("shutting_down", shared.shutting_down.load(Ordering::SeqCst))
        .build()
        .dump();
    text.push('\n');
    text
}
