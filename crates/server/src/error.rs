//! Structured, machine-readable service errors.
//!
//! Every failure mode a client can trigger maps to a distinct stable
//! `code` string (and an HTTP status), so load generators and operators can
//! classify failures without parsing prose. The JSON body shape is fixed:
//!
//! ```json
//! {"schema_version":2,"tool":"dresar-serve",
//!  "error":{"code":"bad_sd_size","status":400,"detail":"..."}}
//! ```
//!
//! This extends the PR 3 philosophy of surfacing `SimError`s instead of
//! crashing to the service boundary: a malformed request, an out-of-range
//! configuration or an overloaded queue each produce a structured document,
//! never a connection drop or a hang.

use dresar_types::{JsonValue, ToJson};

/// One classified service error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request body is not parseable JSON.
    BadJson(String),
    /// The run spec names a field the server does not know (likely a typo
    /// that would otherwise silently fall back to a default — and silently
    /// split the cache once the field is learned).
    UnknownField(String),
    /// A known field has the wrong type or a malformed value.
    BadField(String),
    /// Unknown workload label.
    BadWorkload(String),
    /// Unknown scale preset.
    BadScale(String),
    /// Node count the topology cannot realize.
    BadTopology(String),
    /// Switch-directory geometry that fails validation.
    BadSdSize(String),
    /// Malformed fault-plan spec.
    BadFaults(String),
    /// A fault plan on a trace-driven workload (no message system to
    /// inject into).
    FaultsUnsupported(String),
    /// The connection closed before `Content-Length` bytes arrived.
    TruncatedBody {
        /// Bytes promised by the `Content-Length` header.
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// Malformed HTTP framing (bad request line, missing headers, ...).
    BadRequest(String),
    /// Body larger than the server accepts.
    BodyTooLarge(usize),
    /// No route matches the request path.
    NotFound(String),
    /// The path exists but not for this method.
    MethodNotAllowed(String),
    /// The bounded admission queue is full: the request was shed.
    Overloaded {
        /// The queue bound that was hit.
        queue_depth: usize,
    },
    /// `GET /debug/flight` before any anomalous run deposited a dump.
    FlightUnavailable,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The simulation failed internally (reported, never a crash).
    Internal(String),
    /// The engine execution panicked. The panic was contained by its
    /// worker (the pool keeps serving); this request reports the failure
    /// structurally, with the digest so operators can reproduce it.
    JobPanicked {
        /// Hex digest of the spec whose execution panicked.
        digest: String,
        /// The stringified panic payload.
        message: String,
    },
    /// The request's compute deadline passed before a result was ready
    /// (either expired while still queued — enforced at dequeue, without
    /// burning a worker — or while waiting on a coalesced execution).
    DeadlineExceeded {
        /// The effective deadline in milliseconds (after the server cap).
        deadline_ms: u64,
        /// Where the deadline expired: `"queued"` or `"waiting"`.
        at: &'static str,
    },
}

impl ServeError {
    /// The stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadJson(_) => "bad_json",
            ServeError::UnknownField(_) => "unknown_field",
            ServeError::BadField(_) => "bad_field",
            ServeError::BadWorkload(_) => "bad_workload",
            ServeError::BadScale(_) => "bad_scale",
            ServeError::BadTopology(_) => "bad_topology",
            ServeError::BadSdSize(_) => "bad_sd_size",
            ServeError::BadFaults(_) => "bad_faults",
            ServeError::FaultsUnsupported(_) => "faults_unsupported",
            ServeError::TruncatedBody { .. } => "truncated_body",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::BodyTooLarge(_) => "body_too_large",
            ServeError::NotFound(_) => "not_found",
            ServeError::MethodNotAllowed(_) => "method_not_allowed",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::FlightUnavailable => "no_flight_dump",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Internal(_) => "internal",
            ServeError::JobPanicked { .. } => "internal_panic",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }

    /// The HTTP status the error is served with.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::NotFound(_) | ServeError::FlightUnavailable => 404,
            ServeError::MethodNotAllowed(_) => 405,
            ServeError::BodyTooLarge(_) => 413,
            ServeError::Overloaded { .. } => 429,
            ServeError::ShuttingDown | ServeError::DeadlineExceeded { .. } => 503,
            ServeError::Internal(_) | ServeError::JobPanicked { .. } => 500,
            _ => 400,
        }
    }

    /// `Retry-After` seconds for retryable failures: transient conditions
    /// (a shed request, a draining server, an expired deadline) advertise
    /// when trying again is reasonable; permanent failures return `None`
    /// and get no header.
    pub fn retry_after(&self) -> Option<u64> {
        match self {
            ServeError::Overloaded { .. }
            | ServeError::ShuttingDown
            | ServeError::DeadlineExceeded { .. } => Some(1),
            _ => None,
        }
    }

    /// Human-readable detail line.
    pub fn detail(&self) -> String {
        match self {
            ServeError::BadJson(d)
            | ServeError::UnknownField(d)
            | ServeError::BadField(d)
            | ServeError::BadWorkload(d)
            | ServeError::BadScale(d)
            | ServeError::BadTopology(d)
            | ServeError::BadSdSize(d)
            | ServeError::BadFaults(d)
            | ServeError::FaultsUnsupported(d)
            | ServeError::BadRequest(d)
            | ServeError::NotFound(d)
            | ServeError::MethodNotAllowed(d)
            | ServeError::Internal(d) => d.clone(),
            ServeError::TruncatedBody { expected, got } => {
                format!("body truncated: Content-Length {expected} but only {got} bytes arrived")
            }
            ServeError::BodyTooLarge(limit) => {
                format!("request body exceeds the {limit}-byte limit")
            }
            ServeError::Overloaded { queue_depth } => {
                format!("admission queue full (bound {queue_depth}); request shed, retry later")
            }
            ServeError::FlightUnavailable => {
                "no flight-recorder dump recorded yet (no anomalous run has completed)".to_string()
            }
            ServeError::ShuttingDown => "server is draining for shutdown".to_string(),
            ServeError::JobPanicked { digest, message } => {
                format!("execution for digest {digest} panicked (worker contained it): {message}")
            }
            ServeError::DeadlineExceeded { deadline_ms, at } => {
                format!("compute deadline of {deadline_ms} ms expired while {at}")
            }
        }
    }

    /// The complete JSON error document this error is served as.
    pub fn body(&self) -> String {
        let mut text = dresar_bench::json_doc("dresar-serve")
            .field(
                "error",
                JsonValue::obj()
                    .field("code", self.code())
                    .field("status", self.status())
                    .field("detail", self.detail().as_str())
                    .build(),
            )
            .build()
            .dump();
        text.push('\n');
        text
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code(), self.detail())
    }
}

impl std::error::Error for ServeError {}

impl ToJson for ServeError {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("code", self.code())
            .field("status", self.status())
            .field("detail", self.detail().as_str())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_error_code_is_distinct() {
        let all = [
            ServeError::BadJson(String::new()),
            ServeError::UnknownField(String::new()),
            ServeError::BadField(String::new()),
            ServeError::BadWorkload(String::new()),
            ServeError::BadScale(String::new()),
            ServeError::BadTopology(String::new()),
            ServeError::BadSdSize(String::new()),
            ServeError::BadFaults(String::new()),
            ServeError::FaultsUnsupported(String::new()),
            ServeError::TruncatedBody { expected: 1, got: 0 },
            ServeError::BadRequest(String::new()),
            ServeError::BodyTooLarge(0),
            ServeError::NotFound(String::new()),
            ServeError::MethodNotAllowed(String::new()),
            ServeError::Overloaded { queue_depth: 1 },
            ServeError::FlightUnavailable,
            ServeError::ShuttingDown,
            ServeError::Internal(String::new()),
            ServeError::JobPanicked { digest: String::new(), message: String::new() },
            ServeError::DeadlineExceeded { deadline_ms: 1, at: "queued" },
        ];
        let mut codes: Vec<&str> = all.iter().map(ServeError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "error codes must be pairwise distinct");
    }

    #[test]
    fn retryable_errors_advertise_retry_after() {
        assert_eq!(ServeError::Overloaded { queue_depth: 4 }.retry_after(), Some(1));
        assert_eq!(ServeError::ShuttingDown.retry_after(), Some(1));
        assert_eq!(
            ServeError::DeadlineExceeded { deadline_ms: 10, at: "queued" }.retry_after(),
            Some(1)
        );
        assert_eq!(ServeError::BadJson(String::new()).retry_after(), None);
        assert_eq!(
            ServeError::JobPanicked { digest: String::new(), message: String::new() }.retry_after(),
            None,
            "a deterministic panic will panic again; advertising a retry would be a lie"
        );
    }

    #[test]
    fn error_body_is_machine_readable() {
        let body = ServeError::Overloaded { queue_depth: 8 }.body();
        let doc = JsonValue::parse(&body).expect("error body parses");
        let err = doc.get("error").expect("has error object");
        assert_eq!(err.get("code").and_then(JsonValue::as_str), Some("overloaded"));
        assert_eq!(err.get("status").and_then(JsonValue::as_u64), Some(429));
        assert_eq!(
            doc.get("schema_version").and_then(JsonValue::as_u64),
            Some(dresar_types::SCHEMA_VERSION as u64)
        );
    }
}
