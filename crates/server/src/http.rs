//! Hand-rolled HTTP/1.1 framing over `std::net` streams.
//!
//! The service speaks the smallest useful subset of HTTP/1.1: one request
//! per connection (`Connection: close` on every response), `Content-Length`
//! bodies only, JSON in both directions. The single exception is the
//! chunked `text/event-stream` path ([`write_sse_head`] /
//! [`write_sse_event`]) backing `GET /metrics/stream`. Matching the
//! workspace's
//! hand-rolled JSON layer, this keeps the server dependency-free and the
//! framing fully auditable; load generators, `curl` and browsers all speak
//! it.
//!
//! Malformed framing never drops a connection silently: every parse
//! failure maps to a [`ServeError`] the caller serves as a structured JSON
//! error document, including the truncated-body case (a client that
//! promises `Content-Length: n` and closes early gets a `truncated_body`
//! error, not a hang — reads are capped by [`READ_TIMEOUT`]).

use crate::error::ServeError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted header block, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 256 * 1024;
/// Socket read timeout: bounds how long a stalled client can hold a
/// connection thread while the server waits for promised bytes.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// Request path including any query string, e.g. `/run`.
    pub path: String,
    /// Header fields in arrival order, names as sent (values trimmed).
    pub headers: Vec<(String, String)>,
    /// Decoded body (empty when the request carried none).
    pub body: String,
}

impl Request {
    /// First header with the given name, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// The path with any query string stripped, and the query itself.
    pub fn route(&self) -> (&str, &str) {
        match self.path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (self.path.as_str(), ""),
        }
    }
}

/// Reads and parses one HTTP/1.1 request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ServeError> {
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ServeError::BadRequest(format!(
                "header block exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let mut chunk = [0u8; 4096];
        let n = stream
            .read(&mut chunk)
            .map_err(|e| ServeError::BadRequest(format!("read failed: {e}")))?;
        if n == 0 {
            if buf.is_empty() {
                return Err(ServeError::BadRequest("empty request".into()));
            }
            return Err(ServeError::BadRequest("connection closed mid-header".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ServeError::BadRequest("header block is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(ServeError::BadRequest(format!("malformed request line '{request_line}'")))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::BadRequest(format!("unsupported protocol '{version}'")));
    }
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    ServeError::BadRequest(format!("bad Content-Length '{}'", value.trim()))
                })?;
            }
            headers.push((name.to_string(), value.trim().to_string()));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ServeError::BodyTooLarge(MAX_BODY_BYTES));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream
            .read(&mut chunk)
            .map_err(|_| ServeError::TruncatedBody { expected: content_length, got: body.len() })?;
        if n == 0 {
            return Err(ServeError::TruncatedBody { expected: content_length, got: body.len() });
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("request body is not UTF-8".into()))?;
    Ok(Request { method, path, headers, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one JSON response and flushes. Every response closes the
/// connection (`Connection: close`), which is also what makes the client's
/// read-to-EOF framing sound.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_with(stream, status, "application/json", &[], body)
}

/// [`write_response`] with an explicit content type and extra header
/// fields (each written verbatim as `Name: value`).
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Starts a chunked `text/event-stream` response: the one place the server
/// departs from `Content-Length` framing. Each subsequent
/// [`write_sse_event`] is one HTTP/1.1 chunk carrying one SSE event;
/// [`write_sse_end`] sends the terminal zero-length chunk. The connection
/// still closes afterwards (`Connection: close`), so a client reading to
/// EOF after the terminator stays sound.
pub fn write_sse_head(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
          Transfer-Encoding: chunked\r\nCache-Control: no-store\r\n\
          Connection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Writes one SSE event (`data: <payload>\n\n`) as a single HTTP chunk and
/// flushes, so watchers see each frame as soon as it is produced. The
/// payload must not contain newlines (the callers send compact JSON).
pub fn write_sse_event(stream: &mut TcpStream, data: &str) -> std::io::Result<()> {
    let body = format!("data: {data}\n\n");
    stream.write_all(format!("{:x}\r\n", body.len()).as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked SSE response (zero-length chunk).
pub fn write_sse_end(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Canonical reason phrases for the statuses the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs the request parser against raw bytes pushed through a real
    /// socket pair (half-closed after writing, like a misbehaving client).
    fn parse_raw(raw: &[u8]) -> Result<Request, ServeError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            // Hold the socket open until the parser is done with it.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let out = read_request(&mut stream);
        let _ = write_response(&mut stream, 200, "{}");
        // Close our end so the writer's read-to-EOF returns before join.
        drop(stream);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_raw(
            b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 18\r\n\r\n{\"workload\":\"FFT\"}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, "{\"workload\":\"FFT\"}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn truncated_body_is_a_distinct_error() {
        let err =
            parse_raw(b"POST /run HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"wor").unwrap_err();
        assert_eq!(err.code(), "truncated_body");
        assert_eq!(err, ServeError::TruncatedBody { expected: 100, got: 5 });
    }

    #[test]
    fn malformed_framing_is_rejected_with_bad_request() {
        assert_eq!(parse_raw(b"NONSENSE\r\n\r\n").unwrap_err().code(), "bad_request");
        assert_eq!(parse_raw(b"GET / SPDY/9\r\n\r\n").unwrap_err().code(), "bad_request");
        assert_eq!(
            parse_raw(b"POST /run HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err().code(),
            "bad_request"
        );
    }

    #[test]
    fn headers_are_captured_and_matched_case_insensitively() {
        let req = parse_raw(
            b"POST /run HTTP/1.1\r\nX-Dresar-Trace: abc123\r\nContent-Length: 2\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(req.header("x-dresar-trace"), Some("abc123"));
        assert_eq!(req.header("X-DRESAR-TRACE"), Some("abc123"));
        assert_eq!(req.header("x-missing"), None);
    }

    #[test]
    fn route_splits_path_and_query() {
        let req = parse_raw(b"GET /metrics?format=prom HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.route(), ("/metrics", "format=prom"));
        let bare = parse_raw(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(bare.route(), ("/metrics", ""));
    }

    #[test]
    fn oversized_bodies_are_refused() {
        let raw = format!("POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = parse_raw(raw.as_bytes()).unwrap_err();
        assert_eq!(err.code(), "body_too_large");
        assert_eq!(err.status(), 413);
    }
}
