//! `dresar-server` — a concurrent simulation service over the DReSAR
//! engines.
//!
//! The workspace's simulators are deterministic batch programs; this crate
//! puts a serving boundary in front of them so a run becomes a `POST /run`
//! request instead of a process launch. Three mechanisms make the service
//! efficient under concurrent load, each leaning on determinism:
//!
//! - **Content-addressed caching** ([`cache`]): a run request canonicalizes
//!   to a [`dresar_types::RunSpec`] digest; equal specs produce
//!   byte-identical reports, so a bounded LRU of finished bodies serves
//!   repeats without re-simulating — and a cache hit is provably
//!   indistinguishable from a re-run.
//! - **Request coalescing** ([`serve`]): concurrent requests for the same
//!   digest attach to one in-flight execution; N clients cost one engine
//!   run and all N receive byte-identical bodies.
//! - **Bounded admission** ([`serve`] via
//!   [`dresar_bench::sweep::ServicePool`]): a fixed-depth queue sheds
//!   excess load with structured 429 `overloaded` errors instead of
//!   accepting unbounded work, and drains gracefully on shutdown.
//!
//! The HTTP layer ([`http`]) is a hand-rolled HTTP/1.1 subset over
//! `std::net` — dependency-free, matching the workspace's hand-rolled JSON.
//! [`client`] is the matching client and load generator; [`error`] defines
//! the machine-readable error vocabulary; [`run`] maps validated specs onto
//! the execution-driven and trace-driven simulators.
//!
//! Quickstart (also see `examples/serve_quickstart.rs` and the README):
//!
//! ```no_run
//! use dresar_server::serve::{Server, ServerConfig};
//!
//! let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr().to_string();
//! let resp = dresar_server::client::post_run(
//!     &addr,
//!     r#"{"workload":"FFT","scale":"tiny","nodes":16,"seed":7}"#,
//! )
//! .unwrap();
//! assert_eq!(resp.status, 200);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod error;
pub mod http;
pub mod run;
pub mod serve;
pub mod store;

pub use cache::ResultCache;
pub use chaos::{ServeChaos, ServeFaultPlan};
pub use client::{
    http_request, post_run, post_run_retry, run_load, HttpResponse, LoadOptions, LoadReport,
    RetryPolicy,
};
pub use error::ServeError;
pub use run::{validate, ValidatedSpec};
pub use serve::{Server, ServerConfig};
pub use store::{ResultStore, StoreError};
