//! Seeded serve-tier fault injection: the serving counterpart of the
//! simulator's `dresar_faults::FaultPlan`.
//!
//! PR 3 proved the *simulated* system degrades gracefully under seeded
//! chaos (scrubs, storms, disabled switch directories). This module points
//! the same discipline at the serving layer itself: a [`ServeFaultPlan`]
//! deterministically injects worker panics, store I/O failures, store read
//! corruption, and slow jobs, so `tests/serve_chaos.rs` can prove the
//! supervision, quarantine, and deadline machinery actually fires — with a
//! pinned seed, reproducibly.
//!
//! Arming is deliberately awkward in production paths: a plan only exists
//! if constructed explicitly ([`crate::ServerConfig`]`::chaos`), parsed
//! from a `--chaos` flag, or read from the `DRESAR_SERVE_CHAOS`
//! environment variable by the binary. The default for every config is
//! `None` — zero plan, zero overhead, zero injected faults.

use dresar_types::SmallRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What faults to inject into the serving path, and when.
///
/// Deterministic given the seed and the request order: `*_nth` keys fire on
/// exactly the Nth event (1-based, once), `*_ppm` keys fire with the given
/// probability per event in parts-per-million drawn from a [`SmallRng`]
/// seeded by `seed`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    /// Seed for the probabilistic (`*_ppm`) draws.
    pub seed: u64,
    /// Panic the Nth engine execution (1-based; 0 = never).
    pub panic_nth: u64,
    /// Panic each execution with this parts-per-million probability.
    pub panic_ppm: u32,
    /// Sleep this many milliseconds inside every execution (0 = none) —
    /// the slow-job fault that exercises queue-deadline expiry.
    pub slow_ms: u64,
    /// Fail the Nth store write with an injected I/O error (1-based).
    pub store_write_fail_nth: u64,
    /// Fail each store write with this parts-per-million probability.
    pub store_write_fail_ppm: u32,
    /// Corrupt the bytes of the Nth store read before verification
    /// (1-based) — must surface as a quarantine, never as served garbage.
    pub store_read_corrupt_nth: u64,
}

impl ServeFaultPlan {
    /// Parses `key=value` pairs separated by commas, e.g.
    /// `seed=7,panic_nth=1,slow_ms=50`.
    ///
    /// Keys: `seed`, `panic_nth`, `panic_ppm`, `slow_ms`,
    /// `store_write_fail_nth`, `store_write_fail_ppm`,
    /// `store_read_corrupt_nth`. Unset keys keep their defaults (off).
    pub fn parse(spec: &str) -> Result<ServeFaultPlan, String> {
        let mut plan = ServeFaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("serve chaos item '{part}' is not key=value"))?;
            let num = || -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("serve chaos {key}='{value}': not a number"))
            };
            match key {
                "seed" => plan.seed = num()?,
                "panic_nth" => plan.panic_nth = num()?,
                "panic_ppm" => plan.panic_ppm = num()? as u32,
                "slow_ms" => plan.slow_ms = num()?,
                "store_write_fail_nth" => plan.store_write_fail_nth = num()?,
                "store_write_fail_ppm" => plan.store_write_fail_ppm = num()? as u32,
                "store_read_corrupt_nth" => plan.store_read_corrupt_nth = num()?,
                other => return Err(format!("serve chaos: unknown key '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Whether this plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.panic_nth > 0
            || self.panic_ppm > 0
            || self.slow_ms > 0
            || self.store_write_fail_nth > 0
            || self.store_write_fail_ppm > 0
            || self.store_read_corrupt_nth > 0
    }
}

/// The armed, counting form of a [`ServeFaultPlan`]: owns the event
/// counters and the seeded RNG, and answers "does this event fault?" for
/// each injection point. One instance lives for the server's lifetime, so
/// `*_nth` means the Nth event since boot.
#[derive(Debug)]
pub struct ServeChaos {
    plan: ServeFaultPlan,
    execs: AtomicU64,
    store_writes: AtomicU64,
    store_reads: AtomicU64,
    rng: Mutex<SmallRng>,
}

impl ServeChaos {
    /// Arms `plan`. Callers gate on [`ServeFaultPlan::is_active`] if they
    /// want a no-plan fast path.
    pub fn arm(plan: ServeFaultPlan) -> ServeChaos {
        let rng = SmallRng::seed_from_u64(plan.seed);
        ServeChaos {
            plan,
            execs: AtomicU64::new(0),
            store_writes: AtomicU64::new(0),
            store_reads: AtomicU64::new(0),
            rng: Mutex::new(rng),
        }
    }

    fn ppm_draw(&self, ppm: u32) -> bool {
        if ppm == 0 {
            return false;
        }
        let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        rng.gen::<f64>() < f64::from(ppm) / 1_000_000.0
    }

    /// Called at the top of every engine execution. Sleeps `slow_ms` if
    /// configured, then reports whether this execution should panic.
    pub fn before_exec(&self) -> bool {
        let n = self.execs.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.slow_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.plan.slow_ms));
        }
        n == self.plan.panic_nth || self.ppm_draw(self.plan.panic_ppm)
    }

    /// Whether the current store write should fail with an injected error.
    pub fn fail_store_write(&self) -> bool {
        let n = self.store_writes.fetch_add(1, Ordering::Relaxed) + 1;
        n == self.plan.store_write_fail_nth || self.ppm_draw(self.plan.store_write_fail_ppm)
    }

    /// Whether the current store read's bytes should be corrupted before
    /// verification (exercising the quarantine path end to end).
    pub fn corrupt_store_read(&self) -> bool {
        let n = self.store_reads.fetch_add(1, Ordering::Relaxed) + 1;
        n == self.plan.store_read_corrupt_nth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_key() {
        let plan = ServeFaultPlan::parse(
            "seed=7, panic_nth=2, panic_ppm=100, slow_ms=5, \
             store_write_fail_nth=1, store_write_fail_ppm=3, store_read_corrupt_nth=4",
        )
        .unwrap();
        assert_eq!(
            plan,
            ServeFaultPlan {
                seed: 7,
                panic_nth: 2,
                panic_ppm: 100,
                slow_ms: 5,
                store_write_fail_nth: 1,
                store_write_fail_ppm: 3,
                store_read_corrupt_nth: 4,
            }
        );
        assert!(plan.is_active());
        assert!(!ServeFaultPlan::default().is_active());
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_numbers() {
        assert!(ServeFaultPlan::parse("frobnicate=1").is_err());
        assert!(ServeFaultPlan::parse("panic_nth=often").is_err());
        assert!(ServeFaultPlan::parse("panic_nth").is_err());
        assert_eq!(ServeFaultPlan::parse("").unwrap(), ServeFaultPlan::default());
    }

    #[test]
    fn nth_triggers_fire_exactly_once() {
        let chaos = ServeChaos::arm(ServeFaultPlan {
            panic_nth: 3,
            store_write_fail_nth: 2,
            store_read_corrupt_nth: 1,
            ..ServeFaultPlan::default()
        });
        let execs: Vec<bool> = (0..5).map(|_| chaos.before_exec()).collect();
        assert_eq!(execs, [false, false, true, false, false]);
        let writes: Vec<bool> = (0..4).map(|_| chaos.fail_store_write()).collect();
        assert_eq!(writes, [false, true, false, false]);
        let reads: Vec<bool> = (0..3).map(|_| chaos.corrupt_store_read()).collect();
        assert_eq!(reads, [true, false, false]);
    }

    #[test]
    fn ppm_draws_are_deterministic_for_a_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let chaos =
                ServeChaos::arm(ServeFaultPlan { seed, panic_ppm: 500_000, ..Default::default() });
            (0..32).map(|_| chaos.before_exec()).collect()
        };
        assert_eq!(draw(1009), draw(1009), "same seed, same fault schedule");
        assert_ne!(draw(1009), draw(7919), "different seeds diverge");
        let fired = draw(1009).iter().filter(|&&b| b).count();
        assert!(fired > 4 && fired < 28, "500000 ppm fires roughly half the time: {fired}");
    }
}
