//! `dresar_client` — load generator and admin client for `dresar-serve`.
//!
//! ```text
//! dresar_client [--addr HOST:PORT] [--requests N] [--concurrency N] [--json]
//! dresar_client [--addr HOST:PORT] --shutdown
//! ```
//!
//! Drives the default request mix (distinct + repeated specs, so the run
//! exercises executions, cache hits and coalescing together) and prints the
//! per-status counts plus p50/p95/p99 service times. `--json` emits the
//! machine-readable report document on stdout; `--shutdown` instead asks
//! the server to drain and exit.

use dresar_server::client::{default_mix, http_request, run_load, LoadOptions};
use dresar_types::ToJson;

fn main() {
    let mut addr = "127.0.0.1:8757".to_string();
    let mut opts = LoadOptions::default();
    let mut json = false;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--requests" => opts.total = parse_num(&take("--requests"), "--requests"),
            "--concurrency" => {
                opts.concurrency = parse_num(&take("--concurrency"), "--concurrency")
            }
            "--json" => json = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                println!(
                    "usage: dresar_client [--addr HOST:PORT] [--requests N] [--concurrency N] \
                     [--json] | --shutdown"
                );
                return;
            }
            other => {
                eprintln!("error: unknown flag '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    if shutdown {
        match http_request(&addr, "POST", "/shutdown", "") {
            Ok(resp) => eprintln!("shutdown requested: HTTP {}", resp.status),
            Err(e) => {
                eprintln!("error: shutdown request to {addr} failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let report = run_load(&addr, &default_mix(), &opts);
    if json {
        let doc = dresar_bench::json_doc("dresar-client")
            .field("addr", addr.as_str())
            .field("report", report.to_json())
            .build();
        println!("{}", doc.dump());
    } else {
        eprintln!(
            "{} requests ({} transport errors, {} cache hits) against {addr}",
            report.total, report.transport_errors, report.cache_hits
        );
        for (status, count) in &report.by_status {
            eprintln!("  HTTP {status}: {count}");
        }
        // End-to-end latency, then the server-reported split for fresh
        // executions: time spent waiting in the admission queue vs time
        // actually simulating. A queue-dominated profile means the server
        // needs more workers; an execute-dominated one means the specs are
        // simply expensive.
        let fmt = |v: Option<f64>| match v {
            Some(us) => format!("{us:.0} us"),
            None => "n/a".to_string(),
        };
        for p in [50.0, 95.0, 99.0] {
            eprintln!(
                "  p{p:.0}: {} (queue {}, execute {})",
                fmt(report.percentile_us(p)),
                fmt(report.queue_percentile_us(p)),
                fmt(report.exec_percentile_us(p))
            );
        }
    }
    if report.transport_errors > 0 {
        std::process::exit(1);
    }
}

fn parse_num(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} wants a non-negative integer, got '{value}'");
        std::process::exit(2);
    })
}
