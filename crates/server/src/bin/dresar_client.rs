//! `dresar_client` — load generator and admin client for `dresar-serve`.
//!
//! ```text
//! dresar_client [--addr HOST:PORT] [--requests N] [--concurrency N]
//!               [--retries N] [--backoff-ms M] [--retry-seed S] [--json]
//! dresar_client [--addr HOST:PORT] --watch [--frames N] [--interval-ms M]
//! dresar_client [--addr HOST:PORT] --shutdown
//! ```
//!
//! Drives the default request mix (distinct + repeated specs, so the run
//! exercises executions, cache hits and coalescing together) and prints the
//! per-status counts plus p50/p95/p99 service times. `--json` emits the
//! machine-readable report document on stdout; `--shutdown` instead asks
//! the server to drain and exit.
//!
//! `--retries` enables client-side retry of shed (429) and draining /
//! deadline (503) replies with capped exponential backoff and seeded
//! jitter; the server's `Retry-After` hint is honored as a floor.
//! `--backoff-ms` sets the first wait (doubling per retry, capped at 40x),
//! and `--retry-seed` pins the jitter schedule for reproducible runs. The
//! report then includes how many retries were absorbed and how many
//! requests gave up still shed.
//!
//! `--watch` subscribes to `GET /metrics/stream` and renders one line per
//! frame with the counters that moved inside that frame's window (`--json`
//! prints each frame's raw payload instead). `--frames 0` (the default)
//! watches until the server drains or the connection drops.

use dresar_server::client::{
    default_mix, http_request, run_load, stream_metrics, LoadOptions, RetryPolicy,
};
use dresar_types::{JsonValue, ToJson};

fn main() {
    let mut addr = "127.0.0.1:8757".to_string();
    let mut opts = LoadOptions::default();
    let mut json = false;
    let mut shutdown = false;
    let mut watch = false;
    let mut frames = 0usize;
    let mut interval_ms = 1000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--requests" => opts.total = parse_num(&take("--requests"), "--requests"),
            "--concurrency" => {
                opts.concurrency = parse_num(&take("--concurrency"), "--concurrency")
            }
            "--retries" => {
                let n = parse_num(&take("--retries"), "--retries");
                opts.retry.get_or_insert_with(RetryPolicy::default).max_retries = n as u32;
            }
            "--backoff-ms" => {
                let base = parse_num(&take("--backoff-ms"), "--backoff-ms").max(1) as u64;
                let policy = opts.retry.get_or_insert_with(RetryPolicy::default);
                policy.base_ms = base;
                policy.cap_ms = base.saturating_mul(40);
            }
            "--retry-seed" => {
                let seed = parse_num(&take("--retry-seed"), "--retry-seed") as u64;
                opts.retry.get_or_insert_with(RetryPolicy::default).seed = seed;
            }
            "--json" => json = true,
            "--shutdown" => shutdown = true,
            "--watch" => watch = true,
            "--frames" => frames = parse_num(&take("--frames"), "--frames"),
            "--interval-ms" => interval_ms = parse_num(&take("--interval-ms"), "--interval-ms"),
            "--help" | "-h" => {
                println!(
                    "usage: dresar_client [--addr HOST:PORT] [--requests N] [--concurrency N] \
                     [--retries N] [--backoff-ms M] [--retry-seed S] [--json] | \
                     --watch [--frames N] [--interval-ms M] | --shutdown"
                );
                return;
            }
            other => {
                eprintln!("error: unknown flag '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    if shutdown {
        match http_request(&addr, "POST", "/shutdown", "") {
            Ok(resp) => eprintln!("shutdown requested: HTTP {}", resp.status),
            Err(e) => {
                eprintln!("error: shutdown request to {addr} failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if watch {
        let query = format!("frames={frames}&interval_ms={interval_ms}");
        let outcome = stream_metrics(&addr, &query, |data| {
            if json {
                println!("{data}");
                return true;
            }
            render_frame(data);
            true
        });
        match outcome {
            Ok(n) => eprintln!("stream ended after {n} frames"),
            Err(e) => {
                eprintln!("error: metrics stream from {addr} failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let report = run_load(&addr, &default_mix(), &opts);
    if json {
        let doc = dresar_bench::json_doc("dresar-client")
            .field("addr", addr.as_str())
            .field("report", report.to_json())
            .build();
        println!("{}", doc.dump());
    } else {
        eprintln!(
            "{} requests ({} transport errors, {} cache hits) against {addr}",
            report.total, report.transport_errors, report.cache_hits
        );
        if opts.retry.is_some() {
            eprintln!(
                "  retries absorbed: {} (gave up still shed: {})",
                report.retries, report.give_ups
            );
        }
        for (status, count) in &report.by_status {
            eprintln!("  HTTP {status}: {count}");
        }
        // End-to-end latency, then the server-reported split for fresh
        // executions: time spent waiting in the admission queue vs time
        // actually simulating. A queue-dominated profile means the server
        // needs more workers; an execute-dominated one means the specs are
        // simply expensive.
        let fmt = |v: Option<f64>| match v {
            Some(us) => format!("{us:.0} us"),
            None => "n/a".to_string(),
        };
        for p in [50.0, 95.0, 99.0] {
            eprintln!(
                "  p{p:.0}: {} (queue {}, execute {})",
                fmt(report.percentile_us(p)),
                fmt(report.queue_percentile_us(p)),
                fmt(report.exec_percentile_us(p))
            );
        }
    }
    if report.transport_errors > 0 {
        std::process::exit(1);
    }
}

/// One human-readable line per stream frame: the sequence number, host
/// uptime, and every counter that moved inside this frame's window. Frames
/// where nothing moved print `(idle)` so the watcher still sees a
/// heartbeat.
fn render_frame(data: &str) {
    let frame = match JsonValue::parse(data) {
        Ok(v) => v,
        Err(_) => {
            eprintln!("unparseable frame: {data}");
            return;
        }
    };
    let seq = frame.get("seq").and_then(JsonValue::as_u64).unwrap_or(0);
    let uptime = frame.get("uptime_seconds").and_then(JsonValue::as_f64).unwrap_or(0.0);
    let mut moved = Vec::new();
    if let Some(JsonValue::Obj(fields)) = frame.get("window") {
        for (name, v) in fields {
            match v.as_u64() {
                Some(0) | None => {}
                Some(delta) => moved.push(format!("{name} +{delta}")),
            }
        }
    }
    if moved.is_empty() {
        eprintln!("frame {seq} @{uptime:.1}s (idle)");
    } else {
        eprintln!("frame {seq} @{uptime:.1}s {}", moved.join("  "));
    }
}

fn parse_num(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} wants a non-negative integer, got '{value}'");
        std::process::exit(2);
    })
}
