//! `dresar_serve` — run the DReSAR simulation service.
//!
//! ```text
//! dresar_serve [--addr HOST:PORT] [--queue-depth N] [--workers N] [--cache N]
//! ```
//!
//! Serves until a client sends `POST /shutdown`, then drains queued
//! executions and exits. Defaults: addr 127.0.0.1:8757, queue depth 64,
//! workers sized from `DRESAR_SWEEP_THREADS` (else one per core), cache of
//! 128 results.

use dresar_server::serve::{Server, ServerConfig};

fn main() {
    let mut addr = "127.0.0.1:8757".to_string();
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--queue-depth" => cfg.queue_depth = parse_num(&take("--queue-depth"), "--queue-depth"),
            "--workers" => cfg.workers = parse_num(&take("--workers"), "--workers"),
            "--cache" => cfg.cache_entries = parse_num(&take("--cache"), "--cache"),
            "--help" | "-h" => {
                println!(
                    "usage: dresar_serve [--addr HOST:PORT] [--queue-depth N] [--workers N] \
                     [--cache N]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown flag '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    let server = match Server::start(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("dresar-serve listening on {} (POST /shutdown to stop)", server.local_addr());
    server.join();
    eprintln!("dresar-serve drained and stopped");
}

fn parse_num(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} wants a non-negative integer, got '{value}'");
        std::process::exit(2);
    })
}
