//! `dresar_serve` — run the DReSAR simulation service.
//!
//! ```text
//! dresar_serve [--addr HOST:PORT] [--queue-depth N] [--workers N] [--cache N]
//!              [--store-dir PATH] [--max-deadline-ms N] [--chaos SPEC]
//! ```
//!
//! Serves until a client sends `POST /shutdown`, then drains queued
//! executions and exits. Defaults: addr 127.0.0.1:8757, queue depth 64,
//! workers sized from `DRESAR_SWEEP_THREADS` (else one per core), cache of
//! 128 results.
//!
//! `--store-dir` enables the durable result store: every fresh execution is
//! persisted under the directory (one content-addressed file per digest),
//! and a restarted server re-serves those digests byte-identically without
//! recomputing. `--max-deadline-ms` caps per-request `deadline_ms` values.
//! `--chaos` (or the `DRESAR_SERVE_CHAOS` environment variable) arms the
//! seeded fault-injection plan — a test harness, never for production.

use dresar_server::serve::{Server, ServerConfig};
use dresar_server::ServeFaultPlan;

fn main() {
    let mut addr = "127.0.0.1:8757".to_string();
    let mut cfg = ServerConfig::default();
    if let Ok(spec) = std::env::var("DRESAR_SERVE_CHAOS") {
        cfg.chaos = Some(parse_chaos(&spec));
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--queue-depth" => cfg.queue_depth = parse_num(&take("--queue-depth"), "--queue-depth"),
            "--workers" => cfg.workers = parse_num(&take("--workers"), "--workers"),
            "--cache" => cfg.cache_entries = parse_num(&take("--cache"), "--cache"),
            "--store-dir" => cfg.store_dir = Some(take("--store-dir").into()),
            "--max-deadline-ms" => {
                let ms = parse_num(&take("--max-deadline-ms"), "--max-deadline-ms");
                if ms == 0 {
                    eprintln!("error: --max-deadline-ms must be positive");
                    std::process::exit(2);
                }
                cfg.max_deadline = std::time::Duration::from_millis(ms as u64);
            }
            "--chaos" => cfg.chaos = Some(parse_chaos(&take("--chaos"))),
            "--help" | "-h" => {
                println!(
                    "usage: dresar_serve [--addr HOST:PORT] [--queue-depth N] [--workers N] \
                     [--cache N] [--store-dir PATH] [--max-deadline-ms N] [--chaos SPEC]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown flag '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    let server = match Server::start(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start on {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("dresar-serve listening on {} (POST /shutdown to stop)", server.local_addr());
    server.join();
    eprintln!("dresar-serve drained and stopped");
}

fn parse_chaos(spec: &str) -> ServeFaultPlan {
    match ServeFaultPlan::parse(spec) {
        Ok(plan) => {
            if plan.is_active() {
                eprintln!("dresar-serve: CHAOS ARMED ({spec}) — fault injection is live");
            }
            plan
        }
        Err(e) => {
            eprintln!("error: bad chaos spec '{spec}': {e}");
            std::process::exit(2);
        }
    }
}

fn parse_num(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} wants a non-negative integer, got '{value}'");
        std::process::exit(2);
    })
}
