//! # dresar-protocol
//!
//! The coherence-protocol *family* behind the dresar simulator: MSI (the
//! paper's protocol), MESI, MOESI and the directoryless-shared-LLC (DLS)
//! read baseline, all behind one transition-table interface — the
//! protocol-family construction of BlackParrot's BedRock coherence engines
//! (arXiv:2211.06390), sized down to this simulator's message vocabulary.
//!
//! The crate deliberately contains *no* simulation machinery. It answers
//! three questions the rest of the workspace used to hard-code:
//!
//! 1. **What may a cache line be?** [`ProtoState`] — the per-protocol
//!    line-state alphabet, generalizing the cache array's
//!    [`LineState`] (absence = INVALID) with the EXCLUSIVE and OWNED
//!    states of the larger protocols.
//! 2. **What happens next?** [`ProtocolSpec::transition`] — a *total*
//!    event × state table returning the next state and the action the node
//!    owes the outside world. Pairs a protocol has no rule for return a
//!    structured [`SimError::Protocol`], never a panic: chaos runs surface
//!    them as sim errors instead of aborting the process.
//! 3. **What is legal at quiescence?** [`holder_allowed`] — the
//!    per-protocol holder/directory compatibility rules the end-of-run
//!    coherence audit checks (single-owner differs under OWNED;
//!    holder-coverage differs under EXCLUSIVE and the DLS bypass).
//!
//! Which member of the family runs is named by
//! [`dresar_types::Protocol`], re-exported here; this crate maps the name
//! to semantics via [`spec`].

#![warn(missing_docs)]

use dresar_cache::LineState;
use dresar_faults::SimError;
pub use dresar_types::Protocol;

/// Per-protocol coherence state of one cache line, with INVALID explicit.
///
/// The cache arrays store only resident lines ([`LineState`]); this enum
/// adds the absent state so transition tables can be total functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoState {
    /// Not resident.
    Invalid,
    /// Read-only copy; memory (or the owner) is up to date.
    Shared,
    /// Sole clean copy (MESI/MOESI): may upgrade to MODIFIED silently.
    Exclusive,
    /// Dirty copy shared with readers (MOESI): this cache supplies reads.
    Owned,
    /// Exclusive dirty copy.
    Modified,
}

impl ProtoState {
    /// Every state, in increasing strength order.
    pub const ALL: [ProtoState; 5] = [
        ProtoState::Invalid,
        ProtoState::Shared,
        ProtoState::Exclusive,
        ProtoState::Owned,
        ProtoState::Modified,
    ];

    /// Lifts a cache-array probe result (absent = INVALID).
    pub fn from_line(line: Option<LineState>) -> ProtoState {
        match line {
            None => ProtoState::Invalid,
            Some(LineState::Shared) => ProtoState::Shared,
            Some(LineState::Exclusive) => ProtoState::Exclusive,
            Some(LineState::Owned) => ProtoState::Owned,
            Some(LineState::Modified) => ProtoState::Modified,
        }
    }

    /// Lowers back to the cache-array representation.
    pub fn to_line(self) -> Option<LineState> {
        match self {
            ProtoState::Invalid => None,
            ProtoState::Shared => Some(LineState::Shared),
            ProtoState::Exclusive => Some(LineState::Exclusive),
            ProtoState::Owned => Some(LineState::Owned),
            ProtoState::Modified => Some(LineState::Modified),
        }
    }

    /// Whether the line holds data newer than memory.
    pub fn is_dirty(self) -> bool {
        matches!(self, ProtoState::Modified | ProtoState::Owned)
    }

    /// Short label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ProtoState::Invalid => "I",
            ProtoState::Shared => "S",
            ProtoState::Exclusive => "E",
            ProtoState::Owned => "O",
            ProtoState::Modified => "M",
        }
    }
}

/// An event a cache line can experience.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoEvent {
    /// The local processor reads the line.
    LocalRead,
    /// The local processor writes the line.
    LocalWrite,
    /// Data arrives for a read miss; `exclusive` when the home granted the
    /// sole-copy E state (MESI/MOESI unshared fill rule).
    ReadFill {
        /// The home saw no other holder and granted EXCLUSIVE.
        exclusive: bool,
    },
    /// Data and ownership arrive for a write miss, or an upgrade is
    /// granted for a resident read-only copy.
    WriteFill,
    /// A forwarded cache-to-cache *read* request arrives (home- or
    /// switch-directory-generated).
    InterventionRead,
    /// A forwarded cache-to-cache *write* request arrives.
    InterventionWrite,
    /// The home orders this copy destroyed on behalf of a writer.
    Invalidate,
    /// Replacement evicts the line.
    Evict,
}

impl ProtoEvent {
    /// Every event (both fill flavors), for exhaustiveness sweeps.
    pub const ALL: [ProtoEvent; 9] = [
        ProtoEvent::LocalRead,
        ProtoEvent::LocalWrite,
        ProtoEvent::ReadFill { exclusive: false },
        ProtoEvent::ReadFill { exclusive: true },
        ProtoEvent::WriteFill,
        ProtoEvent::InterventionRead,
        ProtoEvent::InterventionWrite,
        ProtoEvent::Invalidate,
        ProtoEvent::Evict,
    ];
}

/// What a node owes the outside world after a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoAction {
    /// Nothing: the event completed locally.
    None,
    /// Miss: request the block (read or write flavor per the event).
    RequestFill,
    /// Resident but not writable: request ownership from the home.
    RequestUpgrade,
    /// EXCLUSIVE local write: upgrade silently, no directory transaction.
    SilentUpgrade,
    /// Serve a read intervention: send data to the requester and a
    /// copyback to memory, keeping a SHARED copy.
    SupplyShared,
    /// Serve a read intervention MOESI-style: send data to the requester,
    /// tell the home, but *retain* the dirty line as OWNED.
    SupplyRetain,
    /// Serve a write intervention: send data to the requester and
    /// surrender the copy.
    SupplyInvalidate,
    /// Cannot serve the intervention (stale hint or ownership raced
    /// away): negative-acknowledge the requester.
    Nak,
    /// Acknowledge an invalidation.
    Ack,
    /// Evict with a message to the home: dirty data, or the clean
    /// EXCLUSIVE replacement notice the home needs to stop forwarding
    /// interventions here.
    Writeback,
    /// Evict silently.
    Drop,
}

/// One row of the transition table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State after the event.
    pub next: ProtoState,
    /// Externally visible obligation.
    pub action: ProtoAction,
}

impl Transition {
    fn new(next: ProtoState, action: ProtoAction) -> Self {
        Transition { next, action }
    }
}

/// The behavior of one member of the protocol family.
///
/// Implementations are stateless value tables; the simulator holds one
/// `&'static dyn ProtocolSpec` per system and consults it wherever the MSI
/// rules used to be inlined.
pub trait ProtocolSpec: Sync {
    /// Which member this is.
    fn protocol(&self) -> Protocol;

    /// The states this protocol installs in caches (always includes
    /// SHARED and MODIFIED; never INVALID).
    fn states(&self) -> &'static [ProtoState];

    /// The state a read fill installs. `exclusive_grant` is the home's
    /// unshared-fill signal; protocols without an E state install SHARED
    /// regardless.
    fn read_fill_state(&self, exclusive_grant: bool) -> ProtoState {
        if exclusive_grant && self.protocol().exclusive_read_fill() {
            ProtoState::Exclusive
        } else {
            ProtoState::Shared
        }
    }

    /// Whether a holder in `state` serves a forwarded intervention (as
    /// opposed to NAKing it). `{M}` under MSI/DLS, `{M, E}` under MESI,
    /// `{M, E, O}` under MOESI.
    fn serves_intervention(&self, state: ProtoState) -> bool {
        match state {
            ProtoState::Modified => true,
            ProtoState::Exclusive => self.protocol().exclusive_read_fill(),
            ProtoState::Owned => self.protocol().owner_retains_on_read(),
            ProtoState::Invalid | ProtoState::Shared => false,
        }
    }

    /// The total event × state table. Every pair returns either a defined
    /// [`Transition`] or a structured [`SimError::Protocol`]; no pair may
    /// panic (the chaos suite drives arbitrary interleavings through it).
    fn transition(&self, state: ProtoState, event: ProtoEvent) -> Result<Transition, SimError>;
}

/// Shorthand for a table miss.
fn undefined(p: Protocol, state: ProtoState, event: ProtoEvent) -> SimError {
    SimError::Protocol {
        context: "proto_transition",
        detail: format!("{p} has no transition for state {} on {event:?}", state.label()),
    }
}

/// Transitions shared by every member of the family. Returns `None` for
/// the pairs where members differ (or that are undefined).
fn common_transition(state: ProtoState, event: ProtoEvent) -> Option<Transition> {
    use ProtoAction as A;
    use ProtoEvent as E;
    use ProtoState as S;
    let t = Transition::new;
    match (state, event) {
        // Local accesses.
        (S::Invalid, E::LocalRead | E::LocalWrite) => Some(t(S::Invalid, A::RequestFill)),
        (s, E::LocalRead) if s != S::Invalid => Some(t(s, A::None)),
        (S::Shared | S::Owned, E::LocalWrite) => Some(t(state, A::RequestUpgrade)),
        (S::Modified, E::LocalWrite) => Some(t(S::Modified, A::None)),
        (S::Exclusive, E::LocalWrite) => Some(t(S::Modified, A::SilentUpgrade)),
        // Fills. Non-exclusive read fills and write fills look the same
        // everywhere; the E-grant flavor is per-protocol.
        (S::Invalid, E::ReadFill { exclusive: false }) => Some(t(S::Shared, A::None)),
        (S::Invalid | S::Shared | S::Owned, E::WriteFill) => Some(t(S::Modified, A::None)),
        // Interventions a non-holder (or bare sharer) cannot serve: the
        // forwarding directory raced a state change; NAK for retry.
        (S::Invalid | S::Shared, E::InterventionRead | E::InterventionWrite) => {
            Some(t(state, A::Nak))
        }
        // Write interventions surrender the copy with the data.
        (S::Modified, E::InterventionWrite) => Some(t(S::Invalid, A::SupplyInvalidate)),
        // Invalidations are always obeyed, whatever was held — for OWNED
        // this is the MOESI write-round rule: the new writer's data
        // supersedes the owner's, so the dirty copy dies without a
        // writeback.
        (_, E::Invalidate) => Some(t(S::Invalid, A::Ack)),
        // Replacement.
        (S::Shared, E::Evict) => Some(t(S::Invalid, A::Drop)),
        (S::Modified | S::Owned | S::Exclusive, E::Evict) => Some(t(S::Invalid, A::Writeback)),
        _ => None,
    }
}

/// Table for protocols whose only dirty-supplier state is MODIFIED and
/// whose read fills are always SHARED (MSI, and DLS on the cache side).
fn two_state_transition(
    p: Protocol,
    state: ProtoState,
    event: ProtoEvent,
) -> Result<Transition, SimError> {
    use ProtoAction as A;
    use ProtoEvent as E;
    use ProtoState as S;
    // E and O are unreachable: every event from them is a table miss.
    if matches!(state, S::Exclusive | S::Owned) {
        return Err(undefined(p, state, event));
    }
    match (state, event) {
        (S::Modified, E::InterventionRead) => Ok(Transition::new(S::Shared, A::SupplyShared)),
        (S::Invalid, E::ReadFill { exclusive: true }) => Err(undefined(p, state, event)),
        _ => common_transition(state, event).ok_or_else(|| undefined(p, state, event)),
    }
}

/// The paper's MSI protocol.
pub struct Msi;
/// MESI: MSI plus the EXCLUSIVE clean-owner state.
pub struct Mesi;
/// MOESI: MESI plus the OWNED dirty-sharing state.
pub struct Moesi;
/// Directoryless-shared-LLC read baseline: MSI caches under a home that
/// serves reads to dirty blocks straight from memory.
pub struct Dls;

impl ProtocolSpec for Msi {
    fn protocol(&self) -> Protocol {
        Protocol::Msi
    }
    fn states(&self) -> &'static [ProtoState] {
        &[ProtoState::Shared, ProtoState::Modified]
    }
    fn transition(&self, state: ProtoState, event: ProtoEvent) -> Result<Transition, SimError> {
        two_state_transition(Protocol::Msi, state, event)
    }
}

impl ProtocolSpec for Dls {
    fn protocol(&self) -> Protocol {
        Protocol::Dls
    }
    fn states(&self) -> &'static [ProtoState] {
        &[ProtoState::Shared, ProtoState::Modified]
    }
    fn transition(&self, state: ProtoState, event: ProtoEvent) -> Result<Transition, SimError> {
        two_state_transition(Protocol::Dls, state, event)
    }
}

impl ProtocolSpec for Mesi {
    fn protocol(&self) -> Protocol {
        Protocol::Mesi
    }
    fn states(&self) -> &'static [ProtoState] {
        &[ProtoState::Shared, ProtoState::Exclusive, ProtoState::Modified]
    }
    fn transition(&self, state: ProtoState, event: ProtoEvent) -> Result<Transition, SimError> {
        use ProtoAction as A;
        use ProtoEvent as E;
        use ProtoState as S;
        if state == S::Owned {
            return Err(undefined(Protocol::Mesi, state, event));
        }
        match (state, event) {
            (S::Invalid, E::ReadFill { exclusive: true }) => {
                Ok(Transition::new(S::Exclusive, A::None))
            }
            (S::Modified, E::InterventionRead) => Ok(Transition::new(S::Shared, A::SupplyShared)),
            // A clean E holder serves reads too (it is the only copy) and
            // downgrades; memory is already current, so the copyback
            // carries no new data but still releases the home's
            // ownership record.
            (S::Exclusive, E::InterventionRead) => Ok(Transition::new(S::Shared, A::SupplyShared)),
            (S::Exclusive, E::InterventionWrite) => {
                Ok(Transition::new(S::Invalid, A::SupplyInvalidate))
            }
            // An E holder never *requests* a write fill — the silent
            // upgrade rule makes that transaction a livelock against the
            // home's ownership record.
            (S::Exclusive, E::WriteFill) => Err(undefined(Protocol::Mesi, state, event)),
            _ => common_transition(state, event)
                .ok_or_else(|| undefined(Protocol::Mesi, state, event)),
        }
    }
}

impl ProtocolSpec for Moesi {
    fn protocol(&self) -> Protocol {
        Protocol::Moesi
    }
    fn states(&self) -> &'static [ProtoState] {
        &[ProtoState::Shared, ProtoState::Exclusive, ProtoState::Owned, ProtoState::Modified]
    }
    fn transition(&self, state: ProtoState, event: ProtoEvent) -> Result<Transition, SimError> {
        use ProtoAction as A;
        use ProtoEvent as E;
        use ProtoState as S;
        match (state, event) {
            (S::Invalid, E::ReadFill { exclusive: true }) => {
                Ok(Transition::new(S::Exclusive, A::None))
            }
            // The owner-supplies rule: serving a read keeps the dirty line
            // and the supply duty, instead of laundering it through memory.
            (S::Modified, E::InterventionRead) => Ok(Transition::new(S::Owned, A::SupplyRetain)),
            (S::Owned, E::InterventionRead) => Ok(Transition::new(S::Owned, A::SupplyRetain)),
            (S::Owned, E::InterventionWrite) => {
                Ok(Transition::new(S::Invalid, A::SupplyInvalidate))
            }
            (S::Exclusive, E::InterventionRead) => Ok(Transition::new(S::Shared, A::SupplyShared)),
            (S::Exclusive, E::InterventionWrite) => {
                Ok(Transition::new(S::Invalid, A::SupplyInvalidate))
            }
            (S::Exclusive, E::WriteFill) => Err(undefined(Protocol::Moesi, state, event)),
            _ => common_transition(state, event)
                .ok_or_else(|| undefined(Protocol::Moesi, state, event)),
        }
    }
}

/// Maps the protocol name to its semantics.
pub fn spec(p: Protocol) -> &'static dyn ProtocolSpec {
    match p {
        Protocol::Msi => &Msi,
        Protocol::Mesi => &Mesi,
        Protocol::Moesi => &Moesi,
        Protocol::Dls => &Dls,
    }
}

/// What the home directory claims about one (block, holder) pair, as seen
/// by the end-of-run coherence audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomeClaim {
    /// The home believes nobody caches the block.
    Uncached,
    /// The home tracks the block as SHARED; the flag says whether this
    /// holder is in the sharer vector.
    SharedTracked(bool),
    /// The home books an exclusive owner; the flag says whether this
    /// holder is that owner.
    ModifiedBy(bool),
    /// The home books a MOESI owner plus sharers.
    OwnedBy {
        /// This holder is the recorded owner.
        is_owner: bool,
        /// This holder is in the sharer vector (owners count as tracked).
        tracked: bool,
    },
}

/// Whether a quiesced holder in `state` is compatible with what the home
/// claims, under protocol `p`. This is the per-protocol generalization of
/// the audit's old holder-coverage rule:
///
/// * MSI: SHARED holders must be tracked sharers, MODIFIED holders must be
///   the recorded owner.
/// * MESI: additionally, an EXCLUSIVE holder is legal exactly when the
///   home books it as owner (E is clean, so the directory cannot tell E
///   from M — by design).
/// * MOESI: additionally, OWNED holders must be the recorded owner of an
///   `OwnedBy` entry, whose sharers hold SHARED.
/// * DLS: SHARED holders may be *untracked* — the bypass serves readers
///   the directory never records; that staleness is the documented cost
///   of the baseline.
pub fn holder_allowed(p: Protocol, state: LineState, claim: HomeClaim) -> bool {
    match (state, claim) {
        (LineState::Shared, HomeClaim::SharedTracked(tracked)) => tracked || p.home_read_bypass(),
        (LineState::Shared, HomeClaim::OwnedBy { tracked, .. }) => tracked,
        // The DLS stale-shared caveat: a bypass-served copy outlives the
        // directory's knowledge of it under any home state.
        (LineState::Shared, HomeClaim::ModifiedBy(_) | HomeClaim::Uncached) => p.home_read_bypass(),
        (LineState::Modified, HomeClaim::ModifiedBy(is_owner)) => is_owner,
        (LineState::Exclusive, HomeClaim::ModifiedBy(is_owner)) => {
            is_owner && p.exclusive_read_fill()
        }
        (LineState::Owned, HomeClaim::OwnedBy { is_owner, .. }) => {
            is_owner && p.owner_retains_on_read()
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite exhaustiveness guard: every protocol, every state,
    /// every event — each pair must produce either a defined transition or
    /// a structured `SimError::Protocol`. The call itself must never
    /// panic; reaching the end of this test proves there is no
    /// `unreachable!()` in any dispatch path.
    #[test]
    fn every_state_event_pair_is_defined_or_a_structured_error() {
        for p in Protocol::ALL {
            let s = spec(p);
            assert_eq!(s.protocol(), p);
            for state in ProtoState::ALL {
                for event in ProtoEvent::ALL {
                    match s.transition(state, event) {
                        Ok(t) => {
                            // A defined transition must stay inside the
                            // protocol's installable alphabet.
                            assert!(
                                t.next == ProtoState::Invalid || s.states().contains(&t.next),
                                "{p}: {} --{event:?}--> {} leaves the alphabet",
                                state.label(),
                                t.next.label()
                            );
                        }
                        Err(SimError::Protocol { context, detail }) => {
                            assert_eq!(context, "proto_transition");
                            assert!(detail.contains(state.label()), "{p}: {detail}");
                        }
                        Err(other) => panic!("{p}: wrong error family: {other}"),
                    }
                }
            }
        }
    }

    /// States outside a protocol's alphabet define no transitions at all;
    /// states inside it define every event except the per-protocol
    /// explicit holes.
    #[test]
    fn alphabet_states_are_fully_defined() {
        for p in Protocol::ALL {
            let s = spec(p);
            for state in ProtoState::ALL {
                let in_alphabet = state == ProtoState::Invalid || s.states().contains(&state);
                for event in ProtoEvent::ALL {
                    let defined = s.transition(state, event).is_ok();
                    if !in_alphabet {
                        assert!(!defined, "{p}: unreachable state {} has a rule", state.label());
                        continue;
                    }
                    // The explicit holes: I never evicts; read fills only
                    // land on I (the simulator dedups duplicate replies
                    // before consulting the table) and only E-fill under
                    // MESI/MOESI; write fills never land on a line that is
                    // already writable — for E that is the silent-upgrade
                    // livelock rule, for M it would be a double grant.
                    let hole = match (state, event) {
                        (ProtoState::Invalid, ProtoEvent::Evict) => true,
                        (s, ProtoEvent::ReadFill { exclusive }) => {
                            s != ProtoState::Invalid || (exclusive && !p.exclusive_read_fill())
                        }
                        (ProtoState::Exclusive | ProtoState::Modified, ProtoEvent::WriteFill) => {
                            true
                        }
                        _ => false,
                    };
                    assert_eq!(
                        defined,
                        !hole,
                        "{p}: state {} event {event:?}: defined={defined}",
                        state.label()
                    );
                }
            }
        }
    }

    #[test]
    fn msi_matches_the_papers_hardwired_rules() {
        let s = spec(Protocol::Msi);
        assert_eq!(s.read_fill_state(true), ProtoState::Shared, "MSI has no E grant");
        assert_eq!(s.read_fill_state(false), ProtoState::Shared);
        assert!(s.serves_intervention(ProtoState::Modified));
        assert!(!s.serves_intervention(ProtoState::Shared));
        let t = s.transition(ProtoState::Modified, ProtoEvent::InterventionRead).unwrap();
        assert_eq!(t, Transition::new(ProtoState::Shared, ProtoAction::SupplyShared));
        let t = s.transition(ProtoState::Modified, ProtoEvent::InterventionWrite).unwrap();
        assert_eq!(t, Transition::new(ProtoState::Invalid, ProtoAction::SupplyInvalidate));
        let t = s.transition(ProtoState::Shared, ProtoEvent::LocalWrite).unwrap();
        assert_eq!(t.action, ProtoAction::RequestUpgrade);
    }

    #[test]
    fn mesi_grants_and_silently_upgrades_exclusive() {
        let s = spec(Protocol::Mesi);
        assert_eq!(s.read_fill_state(true), ProtoState::Exclusive);
        assert_eq!(s.read_fill_state(false), ProtoState::Shared);
        assert!(s.serves_intervention(ProtoState::Exclusive));
        assert!(!s.serves_intervention(ProtoState::Owned), "O is not MESI");
        let t = s.transition(ProtoState::Exclusive, ProtoEvent::LocalWrite).unwrap();
        assert_eq!(t, Transition::new(ProtoState::Modified, ProtoAction::SilentUpgrade));
        let t = s.transition(ProtoState::Exclusive, ProtoEvent::InterventionRead).unwrap();
        assert_eq!(t, Transition::new(ProtoState::Shared, ProtoAction::SupplyShared));
        let t = s.transition(ProtoState::Exclusive, ProtoEvent::Evict).unwrap();
        assert_eq!(t.action, ProtoAction::Writeback, "silent E drop would wedge the home");
        assert!(s.transition(ProtoState::Owned, ProtoEvent::LocalRead).is_err());
    }

    #[test]
    fn moesi_owner_retains_and_supplies() {
        let s = spec(Protocol::Moesi);
        let t = s.transition(ProtoState::Modified, ProtoEvent::InterventionRead).unwrap();
        assert_eq!(t, Transition::new(ProtoState::Owned, ProtoAction::SupplyRetain));
        let t = s.transition(ProtoState::Owned, ProtoEvent::InterventionRead).unwrap();
        assert_eq!(t, Transition::new(ProtoState::Owned, ProtoAction::SupplyRetain));
        assert!(s.serves_intervention(ProtoState::Owned));
        let t = s.transition(ProtoState::Owned, ProtoEvent::LocalWrite).unwrap();
        assert_eq!(t.action, ProtoAction::RequestUpgrade, "sharers must be invalidated first");
        // The write-round rule: an invalidated owner's data is superseded.
        let t = s.transition(ProtoState::Owned, ProtoEvent::Invalidate).unwrap();
        assert_eq!(t, Transition::new(ProtoState::Invalid, ProtoAction::Ack));
    }

    #[test]
    fn dls_keeps_msi_caches() {
        let s = spec(Protocol::Dls);
        assert_eq!(s.read_fill_state(true), ProtoState::Shared);
        assert!(!s.serves_intervention(ProtoState::Exclusive));
        assert!(s.transition(ProtoState::Exclusive, ProtoEvent::LocalRead).is_err());
        // Switch-directory interventions still reach DLS caches.
        let t = s.transition(ProtoState::Modified, ProtoEvent::InterventionRead).unwrap();
        assert_eq!(t.action, ProtoAction::SupplyShared);
    }

    #[test]
    fn state_round_trips_through_the_cache_representation() {
        for state in ProtoState::ALL {
            assert_eq!(ProtoState::from_line(state.to_line()), state);
            assert_eq!(
                state.is_dirty(),
                state.to_line().is_some_and(LineState::is_dirty),
                "{}",
                state.label()
            );
        }
    }

    #[test]
    fn holder_rules_differ_exactly_where_the_protocols_do() {
        use HomeClaim as C;
        // MSI: tracked sharers and the recorded owner only.
        assert!(holder_allowed(Protocol::Msi, LineState::Shared, C::SharedTracked(true)));
        assert!(!holder_allowed(Protocol::Msi, LineState::Shared, C::SharedTracked(false)));
        assert!(holder_allowed(Protocol::Msi, LineState::Modified, C::ModifiedBy(true)));
        assert!(!holder_allowed(Protocol::Msi, LineState::Modified, C::ModifiedBy(false)));
        assert!(!holder_allowed(Protocol::Msi, LineState::Exclusive, C::ModifiedBy(true)));
        // MESI: the owner record may cover a clean E holder.
        assert!(holder_allowed(Protocol::Mesi, LineState::Exclusive, C::ModifiedBy(true)));
        assert!(!holder_allowed(Protocol::Mesi, LineState::Exclusive, C::ModifiedBy(false)));
        assert!(!holder_allowed(
            Protocol::Mesi,
            LineState::Owned,
            C::OwnedBy { is_owner: true, tracked: true }
        ));
        // MOESI: O holders own OwnedBy entries; their sharers hold S.
        assert!(holder_allowed(
            Protocol::Moesi,
            LineState::Owned,
            C::OwnedBy { is_owner: true, tracked: true }
        ));
        assert!(!holder_allowed(
            Protocol::Moesi,
            LineState::Owned,
            C::OwnedBy { is_owner: false, tracked: true }
        ));
        assert!(holder_allowed(
            Protocol::Moesi,
            LineState::Shared,
            C::OwnedBy { is_owner: false, tracked: true }
        ));
        // DLS: untracked SHARED copies are the documented bypass cost.
        assert!(holder_allowed(Protocol::Dls, LineState::Shared, C::ModifiedBy(false)));
        assert!(holder_allowed(Protocol::Dls, LineState::Shared, C::SharedTracked(false)));
        assert!(holder_allowed(Protocol::Dls, LineState::Shared, C::Uncached));
        assert!(!holder_allowed(Protocol::Msi, LineState::Shared, C::Uncached));
        // Nobody lets a dirty holder go unrecorded.
        for p in Protocol::ALL {
            assert!(!holder_allowed(p, LineState::Modified, C::Uncached), "{p}");
            assert!(!holder_allowed(p, LineState::Owned, C::SharedTracked(true)), "{p}");
        }
    }
}
