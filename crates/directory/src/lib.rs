//! # dresar-directory
//!
//! The full-map home-node directory of the CC-NUMA machine (paper §3.2):
//! every block's home keeps a bit vector of sharers, or the pid of the one
//! owner holding the block Modified. The directory serializes conflicting
//! transactions per block with a bounded pending queue and supports the
//! paper's switch-directory extension — *marked* copyback/writeback messages
//! carrying extra sharer pids collected by switch directories, which the
//! home folds into the vector ("a minor modification in the directory
//! controller", §3.2).
//!
//! This crate is pure protocol logic with no timing: handlers return
//! [`home::DirAction`]s that the timed simulators (in `dresar` and
//! `dresar-trace-sim`) turn into messages with DRAM latency and controller
//! occupancy attached. Keeping the FSM pure makes it exhaustively testable.

#![warn(missing_docs)]

pub mod home;

pub use home::{
    Completion, DirAction, DirError, DirState, DirStats, HomeDirectory, QueuedReq, ReqKind,
};
